"""Fig 17: consecutive-attack interval CDF (~65 % < 10 s, ~80 % < 30 s)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig17_consecutive")


def bench_fig17_consecutive(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert float(measured["gaps <= 10 s"]) >= 0.55
    assert float(measured["gaps <= 30 s"]) >= 0.70
    assert measured["intra-family only"] == "true"
