"""Fig 8: weekly source shifts (existing-country affinity)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig8_shift")


def bench_fig8_shift(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    ratio = measured["existing:new ratio"]
    assert ratio == "inf" or float(ratio) >= 10.0
