"""Record or check a benchmark baseline (cold path or warm path).

The **cold path** (``--section cold``, baseline ``BENCH_coldpath.json``)
is everything that runs before the first analysis result: dataset
generation, the on-disk round trip, and the first experiment battery.
The **warm path** (``--section warm``, baseline ``BENCH_warmpath.json``)
is everything downstream of a loaded dataset: the derived-view builds,
the sweep-line scan kernels, and the experiment battery cold vs warm.
This script times each leg at one or more scales and either

* writes the measurements (plus a machine manifest) as a committed
  baseline::

      python benchmarks/record.py --out BENCH_coldpath.json
      python benchmarks/record.py --section warm --out BENCH_warmpath.json

* or re-measures and compares against a committed baseline, failing
  when any timing regressed beyond the tolerance factor (the CI
  bench-smoke step; machine variance is what the generous default
  tolerance absorbs)::

      python benchmarks/record.py --scales small \
          --check BENCH_coldpath.json --tolerance 3

Cold-path legs per scale:

* ``generate_jobs1`` / ``generate_jobs{N}`` — cold generation, serial
  vs the process-parallel shards (``repro.par``); the two datasets are
  asserted array-identical before either number is accepted;
* ``colstore_save`` / ``colstore_load_mmap`` / ``colstore_load_buffered``
  — the columnar binary store round trip (mmap opens lazily, the
  buffered load reads every byte and is the conservative comparison);
* ``jsonl_export`` / ``jsonl_ingest`` — the text round trip the
  colstore replaces on the cold path;
* ``table4_cold`` — the ARIMA prediction experiment on a fresh context;
* ``run_all_cold`` — the full battery on a fresh context.

Warm-path legs per scale (generation is untimed setup here):

* ``context_build`` — a fresh :class:`AnalysisContext` plus the
  participant CSR gather for every active family;
* ``collab_scan`` / ``chain_scan`` — the sweep-line collaboration and
  consecutive-chain kernels over the raw dataset;
* ``snapshot_dispersions`` — the batched hourly-snapshot dispersion
  kernel on the busiest family;
* ``prewarm_jobs1`` / ``prewarm_jobs{N}`` — :meth:`AnalysisContext.prewarm`
  on fresh contexts, serial vs the process pool; the seeded-view count
  is asserted identical before either number is accepted;
* ``run_all_cold`` / ``run_all_warm`` — the battery on a fresh context,
  then again on the now-warm one; the rendered outputs are asserted
  byte-identical.

The **scale-out path** (``--section scaleout``, baseline
``BENCH_scaleout.json``) measures the sharded map-reduce stack at 10x
the paper's volume: a synthetic attack table (5M rows at ``full``,
riding on a real generated world/registry base) is partitioned into
time shards on disk, every shard's mergeable views are built and timed
individually (after an untimed warmup build, so the first shard is not
billed the process warmup), and the merge that seeds the global context
is timed as the reduce leg.  The merged battery is asserted
byte-identical to the unsharded one at every scale before any number
is accepted.  Scale-out legs per scale:

* ``synthesize`` — building the synthetic attack table (untimed base
  generation aside, this is array work); one extra shard's worth of
  rows is held back for the append leg;
* ``partition_save`` / ``store_open`` — writing the sharded store and
  reopening it from the manifest;
* ``shard_build_total`` / ``shard_build_max`` — the map phase: the sum
  and the slowest of the per-shard view builds (their ratio is the
  scale-out headroom on a multi-core box; the full per-shard list is
  stored next to the timings);
* ``merge_views`` — the reduce phase: the memoized tree reduce over
  the per-shard partials plus the vectorised boundary stitch;
* ``merge_views_parallel`` — the same reduce re-run with the subtree
  memo cleared and ``jobs=4`` fanning out each tree level;
* ``run_all_merged`` / ``run_all_flat`` — the battery on the merged
  context vs a fresh unsharded context, asserted byte-identical;
* ``append_shard_build`` / ``remerge_after_append`` — the held-back
  shard is appended to the store and the merge re-run: only the O(log
  K) spine of the reduce tree recombines and only the new seams are
  stitched (the merge stats are stored under ``derived``, and the
  appended battery is asserted against the unsharded full table at
  ``small`` scale).

The **stream path** (``--section stream``, baseline ``BENCH_stream.json``)
measures the bounded-memory sketch layer against the exact streaming
path at scale-out volume (5M synthetic attacks at ``full``).  Before any
timing is accepted, the sketch answers are asserted against exact
numpy-computed truth under the documented contracts (``docs/STREAMING.md``)
and the sketch's resident memory is asserted flat between the first
quarter of the stream and the end — the fixed-memory ceiling the ISSUE's
acceptance criterion names.  Stream legs per scale:

* ``synthesize`` — the synthetic attack table (same builder as the
  scale-out section);
* ``sketch_append`` — folding every row into an
  :class:`repro.sketch.AttackStreamSummary` in batches via the
  vectorised array path (the sustained sketch append rate);
* ``exact_append`` — folding a capped prefix of real record objects
  into an exact :class:`repro.stream.StreamingDataset` (capped because
  exact mode is object-bound; the cap and measured resident bytes are
  recorded for the memory comparison);
* ``watch_sketch_session`` — a real ``WatchSession(sketch=True)`` fed
  the same capped prefix through ``fold`` (the CLI ``watch --sketch``
  code path).

Derived ratios (``generate_speedup``, ``load_speedup``, ``warm_speedup``,
``map_parallel_potential``, ``sketch_rows_per_sec``,
``exact_to_sketch_memory``) are stored next to the raw timings;
``docs/PERFORMANCE.md`` quotes them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # running from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.context import AnalysisContext
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.experiments.registry import run_all
from repro.experiments.table4_prediction import EXPERIMENT as TABLE4
from repro.io import colstore
from repro.io.ingest import dataset_from_records
from repro.io.jsonlio import export_attacks_jsonl, iter_attacks_jsonl

SCHEMA_VERSION = 1
SCALES = {"small": 0.02, "full": 1.0}
PARALLEL_JOBS = 4
PREWARM_JOBS = (1, 4)
DEFAULT_OUT = {
    "cold": "BENCH_coldpath.json",
    "warm": "BENCH_warmpath.json",
    "scaleout": "BENCH_scaleout.json",
    "stream": "BENCH_stream.json",
}
#: The scale-out section's ``full`` volume: ~10x the paper's 50,704
#: attacks, partitioned into SCALEOUT_SHARDS time shards.
SCALEOUT_ATTACKS = 5_000_000
SCALEOUT_SHARDS = 8
#: Exact mode materialises record objects, so the stream section caps
#: its exact-path comparison legs at this many rows; the sketch leg
#: always folds the full volume.
STREAM_EXACT_CAP = 200_000
#: Rows per append batch in the stream section (both modes).
STREAM_BATCH = 100_000


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return round(time.perf_counter() - t0, 4), out


def machine_manifest() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        # parallel legs ask for PARALLEL_JOBS workers but repro.par caps
        # at the CPU count; this is the worker count that actually ran,
        # so baseline readers can tell a capped (serialised) fan-out
        # from a real one.
        "effective_parallel_jobs": min(PARALLEL_JOBS, os.cpu_count() or 1),
    }


def measure_scale(name: str, scale: float, workdir: Path) -> dict:
    config = DatasetConfig(seed=7, scale=scale)
    print(f"[{name}] generate jobs=1 ...", flush=True)
    t_gen1, ds = _timed(lambda: generate_dataset(config, jobs=1))
    print(f"[{name}] generate jobs={PARALLEL_JOBS} ...", flush=True)
    t_genN, ds_par = _timed(lambda: generate_dataset(config, jobs=PARALLEL_JOBS))
    assert ds.attack_columns_equal(ds_par), "parallel generation diverged"

    npz = workdir / f"{name}.npz"
    t_save, _ = _timed(lambda: colstore.save_dataset_npz(ds, npz))
    t_mmap, _ = _timed(lambda: colstore.load_dataset_npz(npz))
    t_buffered, _ = _timed(lambda: colstore.load_dataset_npz(npz, mmap=False))

    jsonl = workdir / f"{name}.jsonl"
    t_export, _ = _timed(lambda: export_attacks_jsonl(ds, jsonl))
    t_ingest, ingested = _timed(
        lambda: dataset_from_records(iter_attacks_jsonl(jsonl), window=ds.window)
    )
    assert ingested.n_attacks == ds.n_attacks

    print(f"[{name}] experiments ...", flush=True)
    t_table4, _ = _timed(lambda: TABLE4.run(AnalysisContext(ds)))
    t_run_all, results = _timed(lambda: run_all(AnalysisContext(ds), jobs=1))

    timings = {
        "generate_jobs1": t_gen1,
        f"generate_jobs{PARALLEL_JOBS}": t_genN,
        "colstore_save": t_save,
        "colstore_load_mmap": t_mmap,
        "colstore_load_buffered": t_buffered,
        "jsonl_export": t_export,
        "jsonl_ingest": t_ingest,
        "table4_cold": t_table4,
        "run_all_cold": t_run_all,
    }
    derived = {
        "generate_speedup": round(t_gen1 / max(t_genN, 1e-9), 2),
        "load_speedup": round(t_ingest / max(t_buffered, 1e-9), 2),
    }
    entry = {
        "scale": scale,
        "n_attacks": int(ds.n_attacks),
        "n_experiments": len(results),
        "archive_bytes": npz.stat().st_size,
        "timings": timings,
        "derived": derived,
    }
    print(f"[{name}] {json.dumps(timings)}")
    print(f"[{name}] speedups: {json.dumps(derived)}")
    return entry


def measure_warm_scale(name: str, scale: float) -> dict:
    from repro.core.collaboration import (
        DURATION_WINDOW_SECONDS,
        START_WINDOW_SECONDS,
        _detect_collaborations,
    )
    from repro.core.consecutive import CHAIN_MARGIN_SECONDS, _detect_chains
    from repro.core.geolocation import snapshot_dispersions

    config = DatasetConfig(seed=7, scale=scale)
    print(f"[{name}] generate (untimed setup) ...", flush=True)
    ds = generate_dataset(config, jobs=1)

    def build_context() -> AnalysisContext:
        ctx = AnalysisContext(ds)
        for family in ds.active_families:
            ctx.family_participants(family)
        return ctx

    print(f"[{name}] warm-path kernels ...", flush=True)
    t_ctx, ctx = _timed(build_context)
    t_collab, events = _timed(
        lambda: _detect_collaborations(ds, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS)
    )
    t_chains, chains = _timed(lambda: _detect_chains(ds, CHAIN_MARGIN_SECONDS, 2))
    busiest = max(ds.active_families, key=lambda f: ctx.family_attacks(f).size)
    t_snap, _ = _timed(lambda: snapshot_dispersions(ctx, busiest))

    timings = {
        "context_build": t_ctx,
        "collab_scan": t_collab,
        "chain_scan": t_chains,
        "snapshot_dispersions": t_snap,
    }
    seeded: dict[int, int] = {}
    for n in PREWARM_JOBS:
        print(f"[{name}] prewarm jobs={n} ...", flush=True)
        timings[f"prewarm_jobs{n}"], seeded[n] = _timed(
            lambda n=n: AnalysisContext(ds).prewarm(jobs=n)
        )
    assert len(set(seeded.values())) == 1, "prewarm seeded count varies with jobs"

    print(f"[{name}] battery cold/warm ...", flush=True)
    battery_ctx = AnalysisContext(ds)
    timings["run_all_cold"], results = _timed(lambda: run_all(battery_ctx, jobs=1))
    timings["run_all_warm"], rerun = _timed(lambda: run_all(battery_ctx, jobs=1))
    assert [r.render() for r in results] == [r.render() for r in rerun], (
        "warm battery output diverged from cold"
    )

    derived = {
        "warm_speedup": round(
            timings["run_all_cold"] / max(timings["run_all_warm"], 1e-9), 2
        ),
        "prewarm_seeded_views": seeded[PREWARM_JOBS[0]],
    }
    entry = {
        "scale": scale,
        "n_attacks": int(ds.n_attacks),
        "n_experiments": len(results),
        "n_collaborations": len(events),
        "n_chains": len(chains),
        "timings": timings,
        "derived": derived,
    }
    print(f"[{name}] {json.dumps(timings)}")
    print(f"[{name}] derived: {json.dumps(derived)}")
    return entry


def _synthetic_scaleout_dataset(n_attacks: int):
    """A synthetic attack table at scale-out volume on a real tiny base.

    The world, registries, families and botnets come from a generated
    tiny dataset (so every joined view has real entities to resolve);
    the attack rows are synthesized directly as sorted columns — start
    times uniform over the observation window, families/botnets/targets
    drawn from the base's active sets, two participants per attack.
    Generating 5M attacks through the full simulation pipeline would
    dominate the benchmark; the map-reduce stack under test only sees
    columns either way.
    """
    import dataclasses

    import numpy as np

    base = generate_dataset(DatasetConfig.tiny(seed=7))
    rng = np.random.default_rng(1207)
    w = base.window

    start = np.sort(rng.uniform(float(w.start), float(w.end), n_attacks))
    duration = rng.exponential(1800.0, n_attacks) + 1.0
    family_ids = np.array(
        sorted(base.families.index(f) for f in base.active_families), dtype=np.int16
    )
    family_idx = rng.choice(family_ids, n_attacks)
    botnet_id = rng.choice(
        np.array([b.botnet_id for b in base.botnets], dtype=np.int32), n_attacks
    )
    order = np.lexsort((botnet_id, start))
    start, family_idx, botnet_id = start[order], family_idx[order], botnet_id[order]

    n_bots = base.bots.ip.size
    return dataclasses.replace(
        base,
        start=start,
        end=start + duration,
        family_idx=family_idx,
        botnet_id=botnet_id,
        protocol=rng.choice(np.unique(base.protocol), n_attacks),
        target_idx=rng.integers(
            0, base.victims.ip.size, n_attacks, dtype=np.int32
        ),
        magnitude=rng.integers(1, 10, n_attacks, dtype=np.int32),
        part_offsets=np.arange(0, 2 * n_attacks + 1, 2, dtype=np.int64),
        participants=rng.integers(0, n_bots, 2 * n_attacks, dtype=np.int64),
        truth_collab_group=np.full(n_attacks, -1, dtype=np.int32),
        truth_collab_kind=np.zeros(n_attacks, dtype=np.int8),
        truth_chain_id=np.full(n_attacks, -1, dtype=np.int32),
        truth_symmetric=np.zeros(n_attacks, dtype=bool),
        truth_residual_km=np.zeros(n_attacks, dtype=np.float64),
    )


def measure_scaleout_scale(name: str, scale: float, workdir: Path) -> dict:
    from repro.core.context import ShardedAnalysisContext

    n_rows = int(SCALEOUT_ATTACKS * scale)
    tail_rows = n_rows // SCALEOUT_SHARDS
    print(f"[{name}] synthesize {n_rows}+{tail_rows} attacks ...", flush=True)
    # One extra shard's worth of rows is synthesized up front and held
    # back: the incremental-remerge leg appends it after the headline
    # merge, exactly as a streaming spill would grow the store.
    t_synth, ds_all = _timed(lambda: _synthetic_scaleout_dataset(n_rows + tail_rows))
    ds = colstore._slice_dataset(ds_all, 0, n_rows)
    tail = colstore._slice_dataset(ds_all, n_rows, n_rows + tail_rows)

    store_dir = workdir / f"{name}-store"
    print(f"[{name}] partition into {SCALEOUT_SHARDS} shards ...", flush=True)
    t_save, _ = _timed(
        lambda: colstore.save_sharded_npz(ds, store_dir, shards=SCALEOUT_SHARDS)
    )
    t_open, store = _timed(lambda: colstore.ShardedDatasetStore(store_dir))

    # Warm the lazy imports, mmap pages and view machinery on a
    # throwaway context first: without this, shard 0's timing bills the
    # whole process warmup to the first task (2.19s vs ~0.14s at the
    # small scale) and the per-shard list misreads as build skew.
    warm = ShardedAnalysisContext(colstore.ShardedDatasetStore(store_dir))
    warm.build_shard(0)
    del warm

    sctx = ShardedAnalysisContext(store)
    per_shard = []
    for k in range(store.n_shards):
        t_k, _ = _timed(lambda k=k: sctx.build_shard(k))
        per_shard.append(t_k)
        print(f"[{name}] shard {k}: {t_k:.3f}s", flush=True)
    print(f"[{name}] merge ...", flush=True)
    t_merge, merged = _timed(sctx.merged)

    # Re-reduce with the level-synchronous fan-out (the subtree memo is
    # cleared so every pairwise combine really runs; on a multi-core
    # box each tree level's combines execute concurrently).
    sctx._merged = None
    sctx._finalized = None
    sctx._partials.clear()
    t_merge_par, merged = _timed(lambda: sctx.merged(jobs=PARALLEL_JOBS))

    timings = {
        "synthesize": t_synth,
        "partition_save": t_save,
        "store_open": t_open,
        "shard_build_total": round(sum(per_shard), 4),
        "shard_build_max": round(max(per_shard), 4),
        "merge_views": t_merge,
        "merge_views_parallel": t_merge_par,
    }

    # Parity gate: the merged battery must render byte-identical to the
    # unsharded one before any timing is accepted — at every scale.
    print(f"[{name}] parity battery (merged vs flat) ...", flush=True)
    timings["run_all_merged"], sharded_results = _timed(
        lambda: [r.render() for r in run_all(merged, jobs=1)]
    )
    timings["run_all_flat"], flat_results = _timed(
        lambda: [r.render() for r in run_all(AnalysisContext(ds), jobs=1)]
    )
    assert sharded_results == flat_results, "sharded battery output diverged"

    # Append one shard and re-merge: only the new seams are stitched
    # and only the O(log K) spine of the reduce tree recombines.
    print(f"[{name}] append {tail_rows} rows, incremental re-merge ...", flush=True)
    colstore.append_shard(store_dir, tail)
    assert sctx.refresh() == 1, "store refresh did not adopt the appended shard"
    t_append_build, _ = _timed(lambda: sctx.build_shard(sctx.n_shards - 1))
    t_remerge, remerged = _timed(sctx.merged)
    merge_stats = dict(sctx.last_merge_stats)
    assert merge_stats["mode"] == "incremental", merge_stats
    timings["append_shard_build"] = t_append_build
    timings["remerge_after_append"] = t_remerge
    if scale < 1.0:
        appended_results = [r.render() for r in run_all(remerged, jobs=1)]
        flat_all = [r.render() for r in run_all(AnalysisContext(ds_all), jobs=1)]
        assert appended_results == flat_all, "incremental re-merge output diverged"

    derived = {
        "map_parallel_potential": round(
            timings["shard_build_total"] / max(timings["shard_build_max"], 1e-9), 2
        ),
        "remerge_speedup": round(
            timings["merge_views"] / max(timings["remerge_after_append"], 1e-9), 2
        ),
        "merge_stats": merge_stats,
    }
    entry = {
        "scale": scale,
        "n_attacks": int(ds.n_attacks),
        "n_shards": SCALEOUT_SHARDS,
        "append_rows": tail_rows,
        "per_shard_build_seconds": per_shard,
        "timings": timings,
        "derived": derived,
    }
    print(f"[{name}] {json.dumps(timings)}")
    print(f"[{name}] derived: {json.dumps(derived)}")
    return entry


def measure_stream_scale(name: str, scale: float) -> dict:
    import itertools

    import numpy as np

    from repro.sketch import AttackStreamSummary
    from repro.stream import StreamingDataset, WatchSession

    n_rows = int(SCALEOUT_ATTACKS * scale)
    print(f"[{name}] synthesize {n_rows} attacks ...", flush=True)
    t_synth, ds = _timed(lambda: _synthetic_scaleout_dataset(n_rows))

    # Per-attack string/int arrays, gathered once (the stream layer does
    # the same gather per batch from record objects).
    family = np.asarray(ds.families, dtype=object)[ds.family_idx]
    codes = np.asarray([c.code for c in ds.world.countries], dtype=object)
    country = codes[np.asarray(ds.victims.country_idx)[ds.target_idx]]
    victim = np.asarray(ds.victims.ip)[ds.target_idx]
    start, end, botnet = np.asarray(ds.start), np.asarray(ds.end), ds.botnet_id

    print(f"[{name}] sketch append ({n_rows} rows) ...", flush=True)
    summary = AttackStreamSummary()
    quarter_bytes = 0

    def sketch_append() -> None:
        nonlocal quarter_bytes
        quarter_row = max(1, n_rows // 4)
        for lo in range(0, n_rows, STREAM_BATCH):
            hi = min(lo + STREAM_BATCH, n_rows)
            summary.update_arrays(
                start=start[lo:hi], end=end[lo:hi], family=family[lo:hi],
                country=country[lo:hi], victim=victim[lo:hi],
                botnet=botnet[lo:hi],
            )
            if quarter_bytes == 0 and hi >= quarter_row:
                quarter_bytes = summary.memory_bytes()

    t_sketch, _ = _timed(sketch_append)
    sketch_bytes = summary.memory_bytes()

    # The acceptance criterion: resident sketch memory is flat past the
    # first quarter of the stream (KLL may add a level — a few hundred
    # bytes of logarithmic headroom — hence the 1.25 slack, far below
    # the 4x an exact column would grow by).
    assert summary.n_records == n_rows
    assert sketch_bytes <= quarter_bytes * 1.25, (
        f"sketch memory grew {quarter_bytes} -> {sketch_bytes} bytes "
        "between the first quarter and the end of the stream"
    )

    # Accuracy gates against exact numpy truth, under docs/STREAMING.md
    # contracts — no timing is accepted unless these hold.
    est = summary.estimate()
    fams, fam_counts = np.unique(family, return_counts=True)
    slack = summary.cms_family.epsilon * summary.cms_family.total
    for fam, true in zip(fams.tolist(), fam_counts.tolist()):
        got = est["families"][fam]
        assert true <= got <= true + slack, (
            f"family {fam}: estimate {got} outside [{true}, {true + slack}]"
        )
    for key, column in (("botnets", botnet), ("victims", victim)):
        true = len(np.unique(column))
        got = est["distinct"][key]
        rse = summary.hll_botnets.relative_error
        assert abs(got - true) <= max(3 * rse * true, 3.0), (
            f"distinct {key}: estimate {got} vs true {true} beyond 3*rse"
        )
    durations = np.sort(end - start)
    for q in (0.1, 0.5, 0.9):
        value = summary.kll_duration.quantile(q)
        rank = np.searchsorted(durations, value, side="right") / durations.size
        assert abs(rank - q) <= summary.kll_duration.rank_error, (
            f"duration q={q}: estimate {value} has true rank {rank:.4f}"
        )

    cap = min(n_rows, STREAM_EXACT_CAP)
    print(f"[{name}] exact append (capped at {cap} rows) ...", flush=True)
    records = list(itertools.islice(ds.iter_attacks(), cap))
    exact = StreamingDataset()

    def exact_append() -> None:
        for lo in range(0, cap, STREAM_BATCH):
            exact.append_batch(records[lo:lo + STREAM_BATCH])

    t_exact, _ = _timed(exact_append)
    exact_bytes = exact.resident_bytes()

    print(f"[{name}] watch --sketch session ({cap} rows) ...", flush=True)
    session = WatchSession(os.devnull, sketch=True)

    def drive_session() -> None:
        for lo in range(0, cap, STREAM_BATCH):
            session.fold(records[lo:lo + STREAM_BATCH])

    t_watch, _ = _timed(drive_session)
    assert session.n_attacks == cap
    assert len(session.render()) > 0

    timings = {
        "synthesize": t_synth,
        "sketch_append": t_sketch,
        "exact_append": t_exact,
        "watch_sketch_session": t_watch,
    }
    derived = {
        "sketch_rows_per_sec": round(n_rows / max(t_sketch, 1e-9)),
        "exact_rows_per_sec": round(cap / max(t_exact, 1e-9)),
        # Memory the exact path spends per row the sketch path never
        # will: at full scale the exact side would be 25x its capped
        # figure while the sketch side stays at sketch_bytes.
        "exact_to_sketch_memory": round(exact_bytes / max(sketch_bytes, 1), 1),
    }
    entry = {
        "scale": scale,
        "n_attacks": n_rows,
        "memory": {
            "sketch_bytes_quarter": int(quarter_bytes),
            "sketch_bytes_end": int(sketch_bytes),
            "exact_rows_measured": int(cap),
            "exact_resident_bytes": int(exact_bytes),
        },
        "timings": timings,
        "derived": derived,
    }
    print(f"[{name}] {json.dumps(timings)}")
    print(f"[{name}] derived: {json.dumps(derived)}")
    return entry


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Timings that regressed beyond ``tolerance``x the baseline."""
    failures = []
    for name, entry in current.items():
        base = baseline.get("scales", {}).get(name)
        if base is None:
            continue
        for leg, seconds in entry["timings"].items():
            ref = base["timings"].get(leg)
            if ref is not None and seconds > ref * tolerance:
                failures.append(
                    f"{name}.{leg}: {seconds:.3f}s > {tolerance:.1f}x "
                    f"baseline {ref:.3f}s"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", choices=sorted(SCALES), default=sorted(SCALES),
        help="which scales to measure",
    )
    parser.add_argument(
        "--section", choices=sorted(DEFAULT_OUT), default="cold",
        help="which benchmark section to measure (cold or warm path)",
    )
    parser.add_argument("--out", default=None, help="write the baseline JSON here")
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against this committed baseline instead of recording",
    )
    parser.add_argument(
        "--tolerance", type=float, default=3.0,
        help="allowed slowdown factor in --check mode (absorbs machine variance)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the observability RunManifest here after measuring",
    )
    args = parser.parse_args(argv)

    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name in args.scales:
            if args.section == "warm":
                results[name] = measure_warm_scale(name, SCALES[name])
            elif args.section == "scaleout":
                results[name] = measure_scaleout_scale(name, SCALES[name], Path(tmp))
            elif args.section == "stream":
                results[name] = measure_stream_scale(name, SCALES[name])
            else:
                results[name] = measure_scale(name, SCALES[name], Path(tmp))

    if args.metrics:
        from repro.obs import RunManifest, registry

        RunManifest.collect(registry(), argv=["benchmarks/record.py", *sys.argv[1:]]).write(
            args.metrics
        )
        print(f"manifest written to {args.metrics}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check(baseline, results, args.tolerance)
        if failures:
            print(f"{args.section}-path regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"{args.section} path within {args.tolerance:.1f}x of {args.check}")
        return 0

    payload = {
        "schema": SCHEMA_VERSION,
        "section": args.section,
        "machine": machine_manifest(),
        "parallel_jobs": PARALLEL_JOBS,
        "scales": results,
    }
    out = Path(args.out or DEFAULT_OUT[args.section])
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
