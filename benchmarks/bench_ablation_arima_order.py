"""Ablation: fixed ARIMA(2,1,2) versus AIC-searched orders (DESIGN.md §5)."""

from repro.core.prediction import predict_family_dispersion


def bench_arima_fixed_order(benchmark, full_ds, report):
    forecast = benchmark.pedantic(
        predict_family_dispersion,
        args=(full_ds, "pandora"),
        kwargs={"order": (2, 1, 2)},
        rounds=1,
        iterations=1,
    )
    print(f"\nfixed (2,1,2): similarity={forecast.comparison.similarity:.3f}")
    assert forecast.comparison.similarity > 0.7


def bench_arima_auto_order(benchmark, full_ds):
    forecast = benchmark.pedantic(
        predict_family_dispersion,
        args=(full_ds, "pandora"),
        kwargs={"order": None},
        rounds=1,
        iterations=1,
    )
    print(
        f"\nauto order={forecast.order}: similarity={forecast.comparison.similarity:.3f}"
    )
    # The searched order should not be materially worse than the fixed one.
    assert forecast.comparison.similarity > 0.7
