"""Table V: country-level target statistics."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("table5_countries")


def bench_table5_countries(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    # Per-family top countries match the paper's Table V.
    assert measured["dirtjumper: top country"].startswith("US")
    assert measured["pandora: top country"].startswith("RU")
    assert measured["darkshell: top country"].startswith("CN")
    assert measured["colddeath: top country"].startswith("IN")
    assert measured["ddoser: top country"].startswith("MX")
    # Country counts are pinned by calibration.
    assert measured["dirtjumper: # target countries"] == "71"
