"""Ablation: signed-sum dispersion versus absolute-distance dispersion.

The paper's metric keeps the sign (east/west) so symmetric source
constellations cancel to ~0; summing absolute distances instead destroys
the symmetric/asymmetric distinction this benchmark demonstrates.
"""

import numpy as np

from repro.geo.haversine import geographic_center, haversine_km, signed_distances_km


def _both_metrics(ds, family):
    idx = ds.attacks_of(family)
    signed = np.empty(idx.size)
    absolute = np.empty(idx.size)
    for k, i in enumerate(idx):
        lats, lons = ds.participant_coords(int(i))
        center = geographic_center(lats, lons)
        signed[k] = abs(float(np.sum(signed_distances_km(lats, lons, *center))))
        absolute[k] = float(np.sum(haversine_km(lats, lons, *center)))
    return signed, absolute


def bench_sign_convention(benchmark, small_ds):
    signed, absolute = benchmark.pedantic(
        _both_metrics, args=(small_ds, "pandora"), rounds=1, iterations=1
    )
    frac_signed_zero = float(np.mean(signed < 100.0))
    frac_abs_zero = float(np.mean(absolute < 100.0))
    print(
        f"\nsigned: {frac_signed_zero:.0%} near zero; "
        f"absolute: {frac_abs_zero:.0%} near zero "
        f"(medians {np.median(signed):.0f} vs {np.median(absolute):.0f} km)"
    )
    # Only the signed convention exposes the symmetric mass.
    assert frac_signed_zero > 0.4
    assert frac_abs_zero < 0.05
    assert np.median(absolute) > 10 * np.median(signed)
