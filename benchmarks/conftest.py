"""Benchmark fixtures.

The full paper-scale dataset (50,704 attacks) is generated once and
cached on disk (``$REPRO_CACHE_DIR`` or ``.repro-cache``) — the first
benchmark session pays the ~2 minute generation cost, subsequent
sessions load in seconds.  Every table/figure benchmark prints its
paper-vs-measured rows so a benchmark run doubles as the reproduction
record.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.config import DatasetConfig
from repro.io.cache import load_or_generate


@pytest.fixture(scope="session", autouse=True)
def obs_populated():
    """Fail the session if the benchmarked paths stopped emitting metrics.

    Every benchmark exercises instrumented code (cache loads, view
    builds, experiment spans), so an empty registry at teardown means
    the observability hooks were silently lost — exactly the regression
    the overhead budget makes tempting.
    """
    from repro import obs

    yield
    reg = obs.registry()
    assert reg.names(), "benchmarks emitted no metrics: instrumentation lost?"
    assert any(
        name.startswith("cache.") or name.startswith("generate.")
        for name in reg.names()
    ), "dataset fixtures bypassed the instrumented cache/generate paths"


@pytest.fixture(scope="session")
def full_ds():
    """The paper-scale dataset (cached on disk).

    ``REPRO_BENCH_SCALE`` overrides the scale — the CI bench-smoke step
    sets it to 0.02 so the append/reuse paths run on every push without
    paying full-scale generation.
    """
    scale = os.environ.get("REPRO_BENCH_SCALE")
    if scale:
        config = DatasetConfig(seed=7, scale=float(scale))
    else:
        config = DatasetConfig.full(seed=7)
    return load_or_generate(config)


@pytest.fixture(scope="session")
def small_ds():
    """A ~1,000-attack dataset for ablation sweeps that regenerate."""
    return load_or_generate(DatasetConfig.small(seed=7))


@pytest.fixture(scope="session")
def report():
    """Printer for an experiment's rows beneath the benchmark output."""

    def _report(result) -> None:
        print()
        print(result.render())

    return _report
