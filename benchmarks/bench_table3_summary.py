"""Table III: workload summary (pinned totals at full scale)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("table3_summary")


def bench_table3_summary(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert measured["attackers / bot_ips"] == "310950"
    assert measured["victims / target_ips"] == "9026"
    assert measured["ddos_id"] == "50704"
    assert measured["botnet_id"] == "674"
    assert measured["attackers / countries"] == "186"
    assert measured["victims / countries"] == "84"
