"""Fig 14: organization-level target affinity (Pandora, Feb 2013)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig14_orgs")


def bench_fig14_orgs(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert measured["hotspots include RU"] == "true"
    infra = measured["attacks on hosting/cloud/DC/registrar/backbone"]
    assert float(infra.split("(")[1].rstrip("%)")) > 80
