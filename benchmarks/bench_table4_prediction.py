"""Table IV + Figs 12-13: ARIMA geolocation-distance prediction.

The heaviest benchmark: five ARIMA fits on series with thousands of
points plus rolling one-step forecasts.
"""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("table4_prediction")


def bench_table4_prediction(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    sims = {
        row.label.split(":")[0]: float(row.measured)
        for row in result.rows
        if "cosine similarity" in row.label
    }
    # Reproduction target: predictable series, similarity ~0.8+ for most
    # families (paper: 0.81-0.96).
    assert len(sims) >= 4
    assert sum(s >= 0.80 for s in sims.values()) >= len(sims) - 1
    assert all(s >= 0.55 for s in sims.values())
