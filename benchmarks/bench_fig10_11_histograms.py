"""Figs 10-11: asymmetric dispersion histograms (Pandora vs Blackenergy)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig10_11_histograms")


def bench_fig10_11_histograms(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    # Shape contract: Blackenergy disperses much farther than Pandora and
    # both are symmetric-dominant.
    assert float(measured["pandora: symmetric fraction"]) > 0.6
    assert float(measured["blackenergy: symmetric fraction"]) > 0.75
    be = float(measured["blackenergy: asymmetric mean (km)"])
    pa = float(measured["pandora: asymmetric mean (km)"])
    assert be > 3 * pa
