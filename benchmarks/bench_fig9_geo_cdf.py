"""Fig 9: geolocation-distance CDF per family."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig9_geo_cdf")


def bench_fig9_geo_cdf(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    # Paper reading: Dirtjumper and Pandora have > 40 % of values at ~0.
    assert float(measured["dirtjumper: fraction at ~0 km"]) > 0.40
    assert float(measured["pandora: fraction at ~0 km"]) > 0.40
