"""Fig 16: the Dirtjumper x Pandora joint campaign."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig16_pair")


def bench_fig16_pair(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert int(measured["collaboration events"]) >= 118
    assert int(measured["unique targets"]) >= 90
    dur_dj = float(measured["dirtjumper mean duration (s)"])
    dur_pa = float(measured["pandora mean duration (s)"])
    # Pandora's attacks run ~20 minutes longer (107 vs 88 min in the paper).
    assert 600 <= dur_pa - dur_dj <= 1800
