"""Fig 4: the shared 6-7 min / 20-40 min / 2-3 h interval modes."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig4_interval_clusters")


def bench_fig4_interval_clusters(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    share_row = [r for r in result.rows if r.label.startswith("families sharing")][0]
    with_modes, total = (int(x) for x in share_row.measured.split("/"))
    assert with_modes >= total - 2
