"""Derived-view reuse across two consecutive experiment batteries.

The point of the :class:`~repro.core.context.AnalysisContext` layer:
the first battery over a dataset pays for every derived view (grouped
attack indices, dispersion series, the collaboration and chain scans);
a second battery over the *same* context finds them all memoized and
should be orders of magnitude faster.  The benchmark runs both batteries
back to back and asserts the reuse actually happened — no view is built
twice, and the rendered output of the two batteries is identical.
"""

import time

from repro.core.context import AnalysisContext
from repro.experiments.registry import run_all


def bench_context_reuse(benchmark, full_ds):
    def two_batteries():
        ctx = AnalysisContext(full_ds)  # unshared: first battery starts cold
        t0 = time.perf_counter()
        first = run_all(ctx, jobs=1)
        cold = time.perf_counter() - t0
        views_after_first = ctx.n_views

        t0 = time.perf_counter()
        second = run_all(ctx, jobs=1)
        warm = time.perf_counter() - t0
        return first, second, views_after_first, ctx.n_views, cold, warm

    first, second, views_first, views_second, cold, warm = benchmark.pedantic(
        two_batteries, rounds=1, iterations=1
    )
    print(f"\ncold battery: {cold:.2f}s  warm battery: {warm:.3f}s  "
          f"views: {views_first}")
    # The second battery adds no views (everything was already derived)
    # and reproduces the first battery's output exactly.
    assert views_second == views_first
    assert [r.render() for r in first] == [r.render() for r in second]
    assert warm < cold / 10
