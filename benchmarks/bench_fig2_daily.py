"""Fig 2: daily attack distribution (mean ~243/day, max on 2012-08-30)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig2_daily")


def bench_fig2_daily(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert 230 <= float(measured["mean attacks per day"]) <= 260
    assert measured["max day"] == "2012-08-30"
    assert measured["max-day top family"] == "dirtjumper"
