"""Figs 6-7: attack-duration distribution (mean >> median, p80 ~ hours)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig7_durations")


def bench_fig7_durations(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    mean = float(measured["mean duration (s)"])
    median = float(measured["median duration (s)"])
    assert mean > 3 * median  # heavy right tail
    assert float(measured["share under 60 s"]) < 0.10
