"""Robustness: key reproduction statistics are stable across seeds.

The reproduction contract (DESIGN.md §4) should not hinge on one lucky
seed: this bench regenerates small datasets under different master seeds
and checks that the headline shapes (duration median, simultaneous mass,
HTTP dominance, Dirtjumper collaboration hub) hold for every one.
"""

import numpy as np

from repro.core.collaboration import collaboration_table, detect_collaborations
from repro.core.durations import duration_summary
from repro.core.overview import protocol_popularity
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.monitor.schemas import Protocol

SEEDS = (3, 17, 2024)


def bench_seed_stability(benchmark):
    def run():
        stats = []
        for seed in SEEDS:
            ds = generate_dataset(DatasetConfig(seed=seed, scale=0.01))
            d = duration_summary(ds)
            gaps = np.diff(ds.start)
            pop = protocol_popularity(ds)
            table = collaboration_table(ds, detect_collaborations(ds))
            hub = max(table, key=lambda f: table[f]["intra"])
            stats.append(
                {
                    "seed": seed,
                    "median_duration": d.stats.median,
                    "zero_gap": float(np.mean(gaps == 0)),
                    "http_dominant": pop[Protocol.HTTP] == max(pop.values()),
                    "hub": hub,
                }
            )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for row in stats:
        print(f"  seed {row['seed']:>5d}: median dur {row['median_duration']:>6.0f}s  "
              f"P(gap=0) {row['zero_gap']:.2f}  http={row['http_dominant']}  "
              f"hub={row['hub']}")
    for row in stats:
        assert 500 <= row["median_duration"] <= 6000
        assert row["http_dominant"]
        assert row["hub"] == "dirtjumper"
