"""Fig 3: attack-interval CDF and the simultaneous-attack split."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig3_intervals")


def bench_fig3_intervals(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=2, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    # Reproduction contract: large zero-gap mass in per-family intervals.
    assert float(measured["simultaneous fraction (per family, max)"]) >= 0.45
