"""The full experiment battery through one shared AnalysisContext.

Times ``run_all`` cold (fresh, unshared context — every derived view is
computed from scratch) at the paper scale.  This is the headline number
for the shared-view refactor: the 18 experiments used to re-derive the
collaboration scan, the chain scan and every per-family dispersion
series independently; now each is computed once per battery.
"""

from repro.core.context import AnalysisContext
from repro.experiments.registry import run_all


def bench_run_all_cold(benchmark, full_ds):
    results = benchmark.pedantic(
        lambda: run_all(AnalysisContext(full_ds), jobs=1), rounds=1, iterations=1
    )
    assert len(results) == 18
    assert results[0].experiment_id == "table2_protocols"
    assert results[-1].experiment_id == "fig18_chains"


def bench_run_all_parallel(benchmark, full_ds):
    results = benchmark.pedantic(
        lambda: run_all(AnalysisContext(full_ds), jobs=4), rounds=1, iterations=1
    )
    assert [r.experiment_id for r in results] == [
        r.experiment_id for r in run_all(AnalysisContext.of(full_ds), jobs=1)
    ]
