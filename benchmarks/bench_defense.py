"""Defense-extension benchmarks: the paper's insights as measurable policies."""

from repro.defense.attribution import labeling_sensitivity
from repro.defense.blacklist import CountryBlacklist
from repro.defense.detection import sweep_detection_windows
from repro.defense.provisioning import backtest_provisioning


def bench_country_blacklist(benchmark, small_ds):
    cutoff = small_ds.window.start + 0.5 * small_ds.window.duration

    def run():
        return CountryBlacklist().fit(small_ds, cutoff).evaluate(small_ds, cutoff)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncountry blacklist: {result.n_entries} countries cover "
          f"{result.coverage:.1%} of future participations")
    assert result.coverage > 0.9


def bench_detection_sweep(benchmark, small_ds):
    outcomes = benchmark.pedantic(
        sweep_detection_windows, args=(small_ds,), rounds=2, iterations=1
    )
    print()
    for o in outcomes:
        print(f"  detect in {o.time_to_detect / 60:>5.0f} min -> catches "
              f"{o.caught_fraction:.0%} of attacks, mitigates "
              f"{o.exposure_mitigated:.0%} of exposure")
    assert outcomes[0].caught_fraction > outcomes[-1].caught_fraction


def bench_provisioning_backtest(benchmark, small_ds):
    result = benchmark.pedantic(
        backtest_provisioning, args=(small_ds,), rounds=1, iterations=1
    )
    print(f"\nprovisioning: {result.hits}/{result.n_predictions} windows hit "
          f"(mean error {result.mean_abs_error / 3600:.1f} h)")
    assert result.n_predictions > 0


def bench_labeling_sensitivity(benchmark, small_ds):
    impacts = benchmark.pedantic(
        labeling_sensitivity, args=(small_ds,), rounds=1, iterations=1
    )
    print()
    for impact in impacts:
        print(f"  noise {impact.error_rate:.0%}: intra={impact.intra_events} "
              f"inter={impact.inter_events} (inter frac {impact.inter_fraction:.1%})")
    assert impacts[-1].inter_fraction >= impacts[0].inter_fraction
