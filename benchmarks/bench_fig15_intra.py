"""Fig 15: Dirtjumper intra-family collaborations (avg ~2.19 botnets)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig15_intra")


def bench_fig15_intra(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert int(measured["dirtjumper intra-family events"]) >= 700
    assert 2.0 <= float(measured["mean botnets per collaboration"]) <= 2.5
    assert float(measured["events with equal magnitudes ('same bar height')"].rstrip("%")) >= 80
