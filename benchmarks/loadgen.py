"""Load-generate against the analysis service and record `BENCH_serve.json`.

Drives a live ``repro.serve`` server over real HTTP with the workload a
multi-tenant deployment sees — batched ingest, then a mixed read load
(snapshot / full battery / single experiment) from concurrent client
threads — and records sustained queries/sec plus latency percentiles.
Before any number is accepted, the served battery is asserted
byte-identical to a local ``api.run_all`` over the same records (the
parity gate).

Three modes, mirroring ``benchmarks/record.py``:

* record a committed baseline::

      python benchmarks/loadgen.py --out BENCH_serve.json

* re-measure and compare against the baseline, failing when any latency
  leg regressed beyond the tolerance factor (the CI bench-smoke step)::

      python benchmarks/loadgen.py --scales small \\
          --check BENCH_serve.json --tolerance 5

* smoke-test the real CLI entry point end to end — spawn
  ``ddos-repro serve`` as a subprocess, ingest over the wire, diff the
  served battery against a local render (the CI service-smoke step)::

      python benchmarks/loadgen.py --smoke

Legs per scale (all latencies seconds; lower is better, which is what
lets the ``--check`` comparison reuse the record.py tolerance rule):

* ``ingest_total`` — wall time to POST the whole dataset in
  ``--batch-size`` batches with ``wait=1`` (each response arrives after
  the fold + prewarm, so this includes snapshot publication);
* ``first_battery_read`` — the first ``GET /v1/experiments`` of the
  final epoch: pays the one battery render that seeds the shared cache;
* ``query_p50`` / ``query_p90`` / ``query_p99`` — per-request latency
  percentiles over the mixed read phase;
* ``query_wall`` — wall time of the whole read phase
  (``--queries`` requests across ``--readers`` threads).

Derived (recorded next to the timings, not tolerance-checked):
``ingest_records_per_sec``, ``sustained_qps``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

try:
    import repro  # noqa: F401  (installed package)
except ImportError:  # running from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.serve.codec import record_to_json

SCHEMA_VERSION = 1
SCALES = {"small": 0.02, "full": 1.0}
DEFAULT_OUT = "BENCH_serve.json"
SMOKE_SCALE = 0.005

#: The mixed read workload: weights must sum to the cycle length.
#: Snapshot-heavy, battery reads amortised by the shared render cache.
READ_CYCLE = ("snapshot", "snapshot", "snapshot", "experiments", "experiment")


def _call(base: str, method: str, path: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=600) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def machine_manifest() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def measure_scale(
    name: str, scale: float, *, batch_size: int, queries: int, readers: int
) -> dict:
    config = DatasetConfig(seed=7, scale=scale)
    print(f"[{name}] generate (untimed setup) ...", flush=True)
    ds = generate_dataset(config, jobs=1)
    records = list(ds.iter_attacks())
    rows = [record_to_json(r) for r in records]
    batches = [rows[i:i + batch_size] for i in range(0, len(rows), batch_size)]

    with api.serve(port=0, queue_size=max(64, len(batches))) as server:
        base = server.url

        print(f"[{name}] ingest {len(rows)} records in {len(batches)} batches ...",
              flush=True)
        t0 = time.perf_counter()
        for batch in batches:
            status, body = _call(
                base, "POST", "/v1/ingest?tenant=bench", {"records": batch}
            )
            assert status == 200, (status, body)
        t_ingest = time.perf_counter() - t0
        final_epoch = body["epoch"]
        assert body["n_attacks"] == len(rows)

        print(f"[{name}] first battery read (epoch {final_epoch}) ...", flush=True)
        t0 = time.perf_counter()
        status, served = _call(
            base, "GET", f"/v1/experiments?tenant=bench&epoch={final_epoch}"
        )
        t_first_read = time.perf_counter() - t0
        assert status == 200, (status, served)

        # Parity gate: the served battery must be byte-identical to a
        # local replay of the same batches before any number is accepted.
        print(f"[{name}] parity gate ...", flush=True)
        stream = api.stream()
        for i in range(0, len(records), batch_size):
            stream.append_batch(records[i:i + batch_size])
        local = [
            (r.experiment_id, r.render()) for r in api.run_all(stream.context())
        ]
        assert [
            (e["id"], e["render"]) for e in served["experiments"]
        ] == local, "served battery diverged from the local render"

        exp_id = served["experiments"][0]["id"]
        paths = {
            "snapshot": "/v1/snapshot?tenant=bench",
            "experiments": f"/v1/experiments?tenant=bench&epoch={final_epoch}",
            "experiment": f"/v1/experiments/{exp_id}?tenant=bench",
        }

        print(f"[{name}] {queries} mixed reads across {readers} threads ...",
              flush=True)
        latencies: list[float] = []
        failures: list[tuple] = []
        lock = threading.Lock()
        counter = iter(range(queries))

        def read_loop() -> None:
            while True:
                with lock:
                    seq = next(counter, None)
                if seq is None:
                    return
                path = paths[READ_CYCLE[seq % len(READ_CYCLE)]]
                t_req = time.perf_counter()
                status, body = _call(base, "GET", path)
                elapsed = time.perf_counter() - t_req
                with lock:
                    if status != 200:
                        failures.append((path, status, body))
                    latencies.append(elapsed)

        threads = [threading.Thread(target=read_loop) for _ in range(readers)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        t_queries = time.perf_counter() - t0
        assert not failures, failures[:3]

    latencies.sort()
    timings = {
        "ingest_total": round(t_ingest, 4),
        "first_battery_read": round(t_first_read, 4),
        "query_p50": round(_percentile(latencies, 0.50), 5),
        "query_p90": round(_percentile(latencies, 0.90), 5),
        "query_p99": round(_percentile(latencies, 0.99), 5),
        "query_wall": round(t_queries, 4),
    }
    derived = {
        "ingest_records_per_sec": round(len(rows) / max(t_ingest, 1e-9), 1),
        "sustained_qps": round(queries / max(t_queries, 1e-9), 1),
    }
    entry = {
        "scale": scale,
        "n_attacks": len(rows),
        "n_batches": len(batches),
        "queries": queries,
        "readers": readers,
        "final_epoch": final_epoch,
        "timings": timings,
        "derived": derived,
    }
    print(f"[{name}] {json.dumps(timings)}")
    print(f"[{name}] derived: {json.dumps(derived)}")
    return entry


def smoke() -> int:
    """End-to-end CLI smoke: subprocess server, wire ingest, parity diff."""
    print(f"[smoke] generate scale={SMOKE_SCALE} ...", flush=True)
    ds = generate_dataset(DatasetConfig(seed=7, scale=SMOKE_SCALE), jobs=1)
    records = list(ds.iter_attacks())
    rows = [record_to_json(r) for r in records]

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--max-seconds", "300"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        base = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            print(f"[smoke] server: {line.rstrip()}", flush=True)
            if line.startswith("serving on "):
                base = line.split("serving on ", 1)[1].strip()
                break
        assert base, "server never announced its URL"

        half = len(rows) // 2
        for lo, hi in ((0, half), (half, len(rows))):
            status, body = _call(
                base, "POST", "/v1/ingest?tenant=smoke", {"records": rows[lo:hi]}
            )
            assert status == 200, (status, body)
        print(f"[smoke] ingested {body['n_attacks']} records "
              f"(epoch {body['epoch']})", flush=True)

        status, snap = _call(base, "GET", "/v1/snapshot?tenant=smoke")
        assert status == 200 and snap["n_attacks"] == len(rows), snap
        status, served = _call(base, "GET", "/v1/experiments?tenant=smoke")
        assert status == 200, (status, served)
        status, health = _call(base, "GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok", health
        status, metrics = _call(base, "GET", "/v1/metrics")
        assert status == 200 and "serve.requests" in metrics, sorted(metrics)

        stream = api.stream()
        stream.append_batch(records[:half])
        stream.append_batch(records[half:])
        local = [
            (r.experiment_id, r.render()) for r in api.run_all(stream.context())
        ]
        assert [
            (e["id"], e["render"]) for e in served["experiments"]
        ] == local, "served battery diverged from the local render"
        print(f"[smoke] parity OK: {len(local)} experiments byte-identical "
              "to the local battery", flush=True)
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=30)


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Timings that regressed beyond ``tolerance``x the baseline."""
    failures = []
    for name, entry in current.items():
        base = baseline.get("scales", {}).get(name)
        if base is None:
            continue
        for leg, seconds in entry["timings"].items():
            ref = base["timings"].get(leg)
            if ref is not None and seconds > ref * tolerance:
                failures.append(
                    f"{name}.{leg}: {seconds:.3f}s > {tolerance:.1f}x "
                    f"baseline {ref:.3f}s"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", nargs="+", choices=sorted(SCALES), default=sorted(SCALES),
        help="which scales to measure",
    )
    parser.add_argument("--out", default=None, help="write the baseline JSON here")
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against this committed baseline instead of recording",
    )
    parser.add_argument(
        "--tolerance", type=float, default=5.0,
        help="allowed slowdown factor in --check mode (absorbs machine variance)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="subprocess end-to-end smoke (ddos-repro serve + parity diff) and exit",
    )
    parser.add_argument(
        "--batch-size", type=int, default=500,
        help="records per ingest POST",
    )
    parser.add_argument(
        "--queries", type=int, default=400,
        help="mixed read requests per scale",
    )
    parser.add_argument(
        "--readers", type=int, default=4,
        help="concurrent reader threads",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    results = {}
    for name in args.scales:
        results[name] = measure_scale(
            name, SCALES[name],
            batch_size=args.batch_size,
            queries=args.queries,
            readers=args.readers,
        )

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check(baseline, results, args.tolerance)
        if failures:
            print("serve regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"serve path within {args.tolerance:.1f}x of {args.check}")
        return 0

    payload = {
        "schema": SCHEMA_VERSION,
        "section": "serve",
        "machine": machine_manifest(),
        "scales": results,
    }
    out = Path(args.out or DEFAULT_OUT)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
