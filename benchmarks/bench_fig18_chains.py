"""Fig 18: consecutive attacks over time (Ddoser's 22-attack chain)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig18_chains")


def bench_fig18_chains(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert int(measured["longest chain length"]) >= 20
    assert measured["longest chain family"] == "ddoser"
    assert measured["longest chain date"] == "2012-08-30"
    assert float(measured["longest chain duration (min)"]) > 18.0
