"""Throughput of the dataset generator and of the core analyses."""

from repro.core.geolocation import attack_dispersions
from repro.core.intervals import simultaneous_attacks
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset


def bench_generate_tiny(benchmark):
    ds = benchmark.pedantic(
        generate_dataset, args=(DatasetConfig.tiny(seed=5),), rounds=2, iterations=1
    )
    assert ds.n_attacks > 100


def bench_dispersion_analysis_full(benchmark, full_ds):
    """Vectorised dispersion over Dirtjumper's ~35k attacks (~2M bots)."""
    _times, values = benchmark.pedantic(
        attack_dispersions, args=(full_ds, "dirtjumper"), rounds=2, iterations=1
    )
    assert values.size == full_ds.attacks_of("dirtjumper").size


def bench_simultaneous_grouping_full(benchmark, full_ds):
    report = benchmark.pedantic(
        simultaneous_attacks, args=(full_ds,), rounds=2, iterations=1
    )
    assert report.single_family_events > 0
