"""Ablation: the 60-second segmentation rule (§II-D).

The paper picks 60 s because (1) fewer than 10 % of attacks are shorter
than a minute, and (2) a small threshold limits false merges.  This
sweep regenerates a small dataset under different thresholds and shows
how the verified-attack count and the collaboration counts move.
"""

import pytest

from repro.core.collaboration import detect_collaborations
from repro.datagen.config import DatasetConfig
from repro.monitor.segmentation import segment_pulses
from repro.monitor.schemas import AttackPulse, Protocol


def _pulses_from(ds):
    """Rebuild a raw pulse stream from a dataset (one pulse per attack)."""
    pulses = []
    for i in range(ds.n_attacks):
        pulses.append(
            AttackPulse(
                botnet_id=int(ds.botnet_id[i]),
                family=ds.family_name(int(ds.family_idx[i])),
                target_index=int(ds.target_idx[i]),
                start=float(ds.start[i]),
                end=float(ds.end[i]),
                protocol=Protocol(int(ds.protocol[i])),
                attack_tag=i,
            )
        )
    return pulses


@pytest.mark.parametrize("gap_seconds", [10.0, 30.0, 60.0, 300.0, 1800.0])
def bench_segmentation_threshold(benchmark, small_ds, gap_seconds):
    pulses = _pulses_from(small_ds)
    attacks = benchmark.pedantic(
        segment_pulses, args=(pulses, gap_seconds), rounds=2, iterations=1
    )
    merged = small_ds.n_attacks - len(attacks)
    print(
        f"\ngap={gap_seconds:>6.0f}s  attacks={len(attacks):>5d}  "
        f"merged={merged:>4d} ({merged / small_ds.n_attacks:.1%})"
    )
    # Monotonicity: larger thresholds can only merge more.
    assert len(attacks) <= small_ds.n_attacks
    if gap_seconds <= 60.0:
        # At or below the paper's threshold nothing merges: the dataset
        # was generated so the 60 s rule preserves every attack.
        assert len(attacks) == small_ds.n_attacks


def bench_segmentation_collab_false_positives(benchmark, small_ds):
    """Wider start windows inflate detected collaborations — the paper's
    argument for keeping the window tight."""

    def sweep():
        return {
            window: len(detect_collaborations(small_ds, start_window=window))
            for window in (30.0, 60.0, 300.0, 1800.0)
        }

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nstart-window -> detected collaborations:", counts)
    assert counts[30.0] <= counts[60.0] <= counts[300.0] <= counts[1800.0]
