"""Incremental append vs the cold rebuild it replaces.

The acceptance bar for the streaming layer's performance: appending a
1% batch to a warm full-scale :class:`StreamingDataset` — validation,
column append, and O(batch) carry of the incremental views — must be at
least 10× faster than the cold rebuild a user without the streaming
layer would run on every new batch: re-ingest the accumulated log
(``dataset_from_records``) and derive the views from scratch.  The
append does work proportional to the batch; the rebuild re-interns all
records and re-scans every column, so the gap widens with dataset size
(the assertion is therefore only enforced at full scale, where the
ratio is unambiguous; the CI smoke run at ``REPRO_BENCH_SCALE = 0.02``
just checks the path executes).
"""

import time

from repro.core.context import AnalysisContext
from repro.io.ingest import dataset_from_records
from repro.stream import StreamingDataset

#: Below this size the constant factors of a context rebuild dominate
#: and the 10× ratio is noise, not signal.
_ASSERT_MIN_ATTACKS = 20_000


def _touch_incremental_views(ctx: AnalysisContext) -> None:
    """Materialize the views the carry path maintains in O(batch)."""
    for family in ctx.dataset.families:
        ctx.family_attacks(family)
        ctx.family_starts(family)
        ctx.family_intervals(family)
        ctx.family_intervals(family, include_simultaneous=False)
        ctx.durations(family)
        ctx.family_target_country_counts(family)
        ctx.daily_distribution(family)
    ctx.attack_intervals()
    ctx.durations()
    ctx.target_country_idx()
    ctx.target_org_idx()
    ctx.target_country_counts()
    ctx.daily_distribution()
    ctx.protocol_popularity()
    ctx.protocol_breakdown()


def bench_stream_append(benchmark, full_ds):
    records = list(full_ds.iter_attacks())
    split = max(1, len(records) - len(records) // 100)  # last 1% is the batch
    warm, batch = records[:split], records[split:]

    def one_append():
        stream = StreamingDataset(window=full_ds.window)
        stream.append_batch(warm)
        _touch_incremental_views(stream.context())  # warm the snapshot

        t0 = time.perf_counter()
        stream.append_batch(batch)
        _touch_incremental_views(stream.context())
        incremental = time.perf_counter() - t0

        t0 = time.perf_counter()
        rebuilt = dataset_from_records(records, window=full_ds.window)
        cold_ctx = AnalysisContext(rebuilt)  # unshared: derives everything
        _touch_incremental_views(cold_ctx)
        cold = time.perf_counter() - t0
        return rebuilt.n_attacks, incremental, cold

    n_attacks, incremental, cold = benchmark.pedantic(
        one_append, rounds=1, iterations=1
    )
    speedup = cold / incremental if incremental > 0 else float("inf")
    print(f"\n{n_attacks} attacks; 1% append: {incremental * 1000:.1f}ms  "
          f"cold rebuild: {cold * 1000:.1f}ms  speedup: {speedup:.1f}x")
    if n_attacks >= _ASSERT_MIN_ATTACKS:
        assert speedup >= 10, (
            f"incremental append only {speedup:.1f}x faster than cold rebuild"
        )
