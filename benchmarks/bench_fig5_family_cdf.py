"""Fig 5: per-family interval CDFs (Aldibot spacing, zero-gap masses)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("fig5_family_cdf")


def bench_fig5_family_cdf(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert measured["aldibot: no intervals under 60 s"] == "true"
