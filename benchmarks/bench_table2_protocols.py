"""Table II + Fig 1: protocol preferences (exact at full scale)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("table2_protocols")


def bench_table2_protocols(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=3, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert measured["HTTP/dirtjumper"] == "34620"
    assert measured["dominant protocol (Fig 1)"] == "HTTP"
