"""Table VI: collaboration statistics (Dirtjumper hub, partner structure)."""

from repro.experiments.registry import get_experiment

EXPERIMENT = get_experiment("table6_collaboration")


def bench_table6_collaboration(benchmark, full_ds, report):
    result = benchmark.pedantic(EXPERIMENT.run, args=(full_ds,), rounds=1, iterations=1)
    report(result)
    measured = {row.label: row.measured for row in result.rows}
    assert measured["intra-family hub"] == "dirtjumper"
    assert measured["dirtjumper in every inter-family collab"] == "true"
    assert int(measured["dirtjumper: inter-family"]) >= 118
    assert int(measured["pandora: inter-family"]) >= 115
    assert int(measured["blackenergy: intra-family"]) <= 20  # near zero, as in the paper
