"""Defense planning: turn the characterizations into mitigation knobs.

The paper closes each section with "insights into defenses".  This
example operationalises three of them on a synthetic dataset:

1. **Detection window** (§III-C): 80 % of attacks end within ~4 hours, so
   a detector that needs longer than that misses most attacks — the
   script derives the window from the measured duration CDF.
2. **Next-attack scheduling** (§III-D / abstract finding 2): for targets
   under repeat attack, predict when the next attack starts and how much
   advance notice a defender gets.
3. **Blacklist pre-positioning** (§IV-A): given the source-country
   affinity, measure what fraction of next-week attacking bots an
   existing-countries blacklist would already cover.

Run::

    python examples/defense_planning.py [--scale 0.05]
"""

import argparse

import numpy as np

from repro import api
from repro.core.durations import duration_summary
from repro.core.prediction import predict_next_attack_time
from repro.core.shift import weekly_shift
from repro.simulation.clock import to_datetime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating dataset (scale={args.scale}) ...")
    ds = api.generate(scale=args.scale, seed=args.seed)

    print()
    print("=== 1. Detection window (Fig 7) ===")
    s = duration_summary(ds)
    print(f"80% of attacks end within {s.stats.p80 / 3600:.1f} h "
          f"(paper: ~3.9 h); median {s.stats.median / 60:.0f} min")
    print(f"=> an automatic pipeline must classify within "
          f"~{s.stats.median / 60:.0f} min to act on the median attack;")
    print("   manual/semi-automatic response arrives after the attack ends.")

    print()
    print("=== 2. Next-attack scheduling for hot targets ===")
    targets, counts = np.unique(ds.target_idx, return_counts=True)
    hot = targets[np.argsort(-counts)][:5]
    for target in hot:
        try:
            pred = predict_next_attack_time(ds, int(target))
        except ValueError:
            continue
        rec = ds.victims
        cc = ds.world.countries[int(rec.country_idx[target])].code
        print(f"  target #{int(target):>5d} ({cc}): {pred.n_attacks} attacks, "
              f"mean gap {pred.interval_mean / 3600:.1f} h -> next expected "
              f"{to_datetime(pred.predicted_next_at):%Y-%m-%d %H:%M} "
              f"(+/- {pred.interval_std / 3600:.1f} h)")
    print("=> repeat-attack intervals are structured enough to schedule "
          "scrubbing capacity ahead of time.")

    print()
    print("=== 3. Blacklist pre-positioning (Fig 8) ===")
    for family in ("dirtjumper", "pandora", "blackenergy"):
        if ds.attacks_of(family).size < 10:
            continue
        shift = weekly_shift(ds, family)
        covered = shift.total_existing
        total = covered + shift.total_new
        print(f"  {family:<12s} a known-countries blacklist covers "
              f"{covered / total:.2%} of weekly attacking bots")
    print("=> country-level disinfection priorities stay valid for weeks; "
          "only rare expansion bursts require updates.")


if __name__ == "__main__":
    main()
