"""Analyze *your own* attack logs with the characterization library.

The analyses are not tied to the synthetic generator: any log in the
paper's Table I schema can be ingested and characterized.  This script
demonstrates the full loop:

1. write a CSV in the DDoSattack schema (here: exported from a small
   synthetic dataset, standing in for a real monitoring export);
2. load it back with :func:`repro.api.load`, which sniffs the format and
   builds an attack-table-only dataset;
3. run the attack-level analyses: intervals, durations, campaigns,
   collaborations, chains.

Run::

    python examples/ingest_external_logs.py [--csv path/to/your.csv] [--scale 0.02]
"""

import argparse
import tempfile
from pathlib import Path

from repro import api
from repro.core.campaigns import campaign_summary, detect_campaigns
from repro.core.collaboration import detect_collaborations
from repro.core.consecutive import detect_chains
from repro.core.durations import duration_summary
from repro.core.intervals import interval_summary
from repro.core.sanity import check_no_spoofing
from repro.io.csvio import export_attacks_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", default=None, help="a DDoSattack-schema CSV to analyze")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="scale of the synthetic log when no --csv is given")
    args = parser.parse_args()

    if args.csv is None:
        # No log supplied: fabricate one so the example is self-contained.
        print("No --csv given; exporting a synthetic log to analyze ...")
        source = api.generate(scale=args.scale, seed=11)
        tmp = Path(tempfile.mkdtemp()) / "attacks.csv"
        export_attacks_csv(source, tmp)
        csv_path = tmp
    else:
        csv_path = Path(args.csv)

    print(f"Reading {csv_path} ...")
    ds = api.load(csv_path)
    print(f"ingested {ds.n_attacks} attacks, {ds.victims.n_targets} targets, "
          f"{len(ds.botnets)} botnets, {len(ds.families)} families")

    print()
    print("== sanity (§III-B) ==")
    evidence = check_no_spoofing(ds)
    print(f"connection-oriented share: {evidence.connection_oriented_fraction:.0%}  "
          f"source/victim overlap: {evidence.source_victim_overlap}  "
          f"spoofing plausible: {evidence.spoofing_plausible}")

    print()
    print("== intervals / durations ==")
    iv = interval_summary(ds)
    du = duration_summary(ds)
    print(f"simultaneous: {iv.simultaneous_fraction:.0%}, mean gap {iv.stats.mean:.0f}s, "
          f"longest {iv.longest_days:.1f} days")
    print(f"durations: median {du.stats.median:.0f}s, 80% < {du.stats.p80 / 3600:.1f}h")

    print()
    print("== structure ==")
    campaigns = detect_campaigns(ds)
    if campaigns:
        cs = campaign_summary(ds, campaigns)
        print(f"campaigns: {cs.n_campaigns} across {cs.n_targets_hit_repeatedly} targets, "
              f"mean {cs.mean_rounds:.1f} rounds, median span {cs.median_span_hours:.1f}h")
    events = detect_collaborations(ds)
    chains = detect_chains(ds)
    print(f"collaborations: {len(events)} "
          f"({sum(e.is_inter_family for e in events)} inter-family); "
          f"multistage chains: {len(chains)}")


if __name__ == "__main__":
    main()
