"""Quickstart: generate a dataset and run the headline characterizations.

Run from the repository root::

    python examples/quickstart.py [--scale 0.02] [--seed 7]

Generates a synthetic botnet-DDoS dataset (2 % of paper scale by
default), prints the paper's headline numbers (Tables II/III/V/VI and
the abstract statistics) and exports the three vendor schemas as CSV
into ``./quickstart-data``.
"""

import argparse
from pathlib import Path

from repro import api
from repro.core import report
from repro.io.csvio import export_attacks_csv, export_botlist_csv, export_botnetlist_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="quickstart-data")
    args = parser.parse_args()

    print(f"Generating dataset (scale={args.scale}, seed={args.seed}) ...")
    ds = api.generate(scale=args.scale, seed=args.seed)
    ctx = api.context(ds)

    print()
    print("=== Headline (abstract numbers) ===")
    print(report.render_headline(ctx))
    print()
    print("=== Protocol preferences (Table II / Fig 1) ===")
    print(report.render_protocol_table(ctx))
    print()
    print("=== Victim countries (Table V) ===")
    print(report.render_country_table(ctx))
    print()
    print("=== Collaborations (Table VI) ===")
    print(report.render_collaboration_table(ctx))

    out = Path(args.out)
    out.mkdir(exist_ok=True)
    n_attacks = export_attacks_csv(ds, out / "ddos_attacks.csv")
    n_bots = export_botlist_csv(ds, out / "botlist.csv", limit=5000)
    n_botnets = export_botnetlist_csv(ds, out / "botnetlist.csv")
    print()
    print(
        f"Exported {n_attacks} attacks, {n_bots} bots (capped), "
        f"{n_botnets} botnets to {out}/"
    )


if __name__ == "__main__":
    main()
