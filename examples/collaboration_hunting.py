"""Collaboration hunting: find botnets that gang up on targets.

Reproduces the paper's §V analyses on a synthetic dataset:

* concurrent collaborations — different botnets, same target, starts
  within 60 s, durations within half an hour (Table VI, Figs 15-16);
* multistage chains — back-to-back attacks on one target (Figs 17-18);

and, because the generator stages known collaborations, the script also
scores the detector against the ground truth (precision of the staged
events recovered).

Run::

    python examples/collaboration_hunting.py [--scale 0.05]
"""

import argparse

import numpy as np

from repro import api
from repro.core.collaboration import (
    collaboration_table,
    detect_collaborations,
    intra_family_stats,
    pair_analysis,
)
from repro.core.consecutive import chain_summary, detect_chains


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating dataset (scale={args.scale}) ...")
    ds = api.generate(scale=args.scale, seed=args.seed)

    print()
    print("=== Concurrent collaborations (Table VI) ===")
    events = detect_collaborations(ds)
    table = collaboration_table(ds, events)
    intra = sum(1 for e in events if not e.is_inter_family)
    inter = len(events) - intra
    print(f"detected: {intra} intra-family + {inter} inter-family events")
    for family in sorted(table, key=lambda f: -table[f]["intra"]):
        row = table[family]
        if row["intra"] or row["inter"]:
            print(f"  {family:<12s} intra={row['intra']:<5d} inter={row['inter']}")

    # Score against the staged ground truth.
    staged = {}
    for i in np.flatnonzero(ds.truth_collab_kind > 0):
        staged.setdefault(int(ds.truth_collab_group[i]), set()).add(int(i))
    staged = {g: m for g, m in staged.items() if len(m) >= 2}
    detected_sets = [set(e.attack_indices) for e in events]
    recovered = sum(
        1 for members in staged.values() if any(members <= d for d in detected_sets)
    )
    if staged:
        print(f"ground truth: {recovered}/{len(staged)} staged events recovered "
              f"({recovered / len(staged):.0%})")

    print()
    print("=== The Dirtjumper x Pandora campaign (Fig 16) ===")
    pa = pair_analysis(ds, "dirtjumper", "pandora", events)
    print(f"events: {pa.n_events}, targets: {pa.n_targets}, "
          f"countries: {pa.n_countries}, span: {pa.span_weeks:.1f} weeks")
    print(f"mean durations: dirtjumper {pa.mean_duration_a / 60:.0f} min vs "
          f"pandora {pa.mean_duration_b / 60:.0f} min")

    stats = intra_family_stats(ds, "dirtjumper", events)
    print()
    print("=== Dirtjumper intra-family structure (Fig 15) ===")
    print(f"events: {stats.n_events}, mean botnets/event: "
          f"{stats.mean_botnets_per_event:.2f} (paper: 2.19)")
    print(f"equal-magnitude events: {stats.equal_magnitude_fraction:.0%} "
          "(the 'same bar height' fingerprint of central coordination)")

    print()
    print("=== Multistage chains (Figs 17-18) ===")
    chains = detect_chains(ds)
    if chains:
        s = chain_summary(ds, chains)
        print(f"chains: {s.n_chains}, families: {', '.join(s.families)}")
        print(f"longest: {s.longest_chain_length} consecutive attacks by "
              f"{s.longest_chain_family} over {s.longest_chain_duration / 60:.0f} min")
        print(f"gap CDF: {s.under_10s_fraction:.0%} <= 10 s, "
              f"{s.under_30s_fraction:.0%} <= 30 s (paper: ~65 % / ~80 %)")
    else:
        print("no chains at this scale; try --scale 0.1")


if __name__ == "__main__":
    main()
