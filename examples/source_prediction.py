"""Source prediction: forecast where a family's firepower comes from.

Reproduces the paper's §IV-A workflow end to end:

1. compute each family's geolocation-distance series (signed Haversine
   dispersion of the bots behind every attack);
2. train an ARIMA model on the first half and roll one-step forecasts
   over the second half;
3. report the Table IV statistics (mean/std/cosine similarity) and the
   weekly source-country affinity that makes the forecast actionable.

Run::

    python examples/source_prediction.py [--family pandora] [--scale 0.05]
"""

import argparse

import numpy as np

from repro import api
from repro.core.geolocation import dispersion_profile
from repro.core.prediction import predict_family_dispersion
from repro.core.shift import weekly_shift


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="pandora")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating dataset (scale={args.scale}) ...")
    ds = api.generate(scale=args.scale, seed=args.seed)

    family = args.family
    profile = dispersion_profile(ds, family)
    print()
    print(f"=== {family}: source-geography profile (Figs 9-11) ===")
    print(f"attacks analysed:       {profile.n_attacks}")
    print(f"symmetric fraction:     {profile.symmetric_fraction:.1%}")
    print(f"asymmetric mean/std km: {profile.asymmetric_mean_km:.0f} / "
          f"{profile.asymmetric_std_km:.0f}")

    print()
    print(f"=== {family}: ARIMA forecast (Table IV / Figs 12-13) ===")
    try:
        forecast = predict_family_dispersion(ds, family)
    except ValueError as exc:
        print(f"cannot forecast: {exc}")
        print("try a larger --scale or a more active --family")
        return
    c = forecast.comparison
    print(f"ARIMA order:        {forecast.order}")
    print(f"train/test points:  {forecast.train.size}/{forecast.truth.size}")
    print(f"truth mean/std:     {c.truth_mean:.0f} / {c.truth_std:.0f} km")
    print(f"pred  mean/std:     {c.prediction_mean:.0f} / {c.prediction_std:.0f} km")
    print(f"cosine similarity:  {c.similarity:.3f}   (paper: 0.81-0.96)")
    print(f"median error rate:  {float(np.median(forecast.errors)):.2f}")

    print()
    print(f"=== {family}: weekly source shifts (Fig 8) ===")
    shift = weekly_shift(ds, family)
    print(f"active weeks:                {shift.weeks.size}")
    print(f"bots from known countries:   {shift.total_existing}")
    print(f"bots from new countries:     {shift.total_new}")
    ratio = shift.affinity_ratio
    print(f"affinity ratio:              "
          f"{'inf' if ratio == float('inf') else f'{ratio:.0f}'}:1")
    print()
    print("Defense insight: the footprint is sticky — pre-positioning "
          "filters on the known source countries covers nearly all "
          "future firepower, and the dispersion forecast flags when the "
          "constellation is about to change.")


if __name__ == "__main__":
    main()
