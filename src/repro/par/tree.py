"""Tree-structured parallel reduction with memoized subtree results.

:func:`tree_reduce` reshapes an associative fold over ``n`` leaves into
a balanced binary reduction: power-of-two-aligned subtrees combine
level-synchronously (every level's pending combines fan out over
:func:`repro.par.parallel_map`), and the leftover "mountain-range peaks"
fold left into the final value.  A serial left-fold touches all ``n``
leaves on every call; the aligned tree needs only ``~log2(n)`` levels of
parallel combines — and, because every aligned subtree keeps its range
under append (growing ``n`` never re-aligns an existing subtree), a
caller-supplied cache turns re-reduction after an append into an
O(log n) walk of the spine.

The caller supplies ``lookup``/``store`` hooks keyed by the half-open
leaf range ``(lo, hi)``; anything served by ``lookup`` short-circuits
that whole subtree.  Spine prefixes ``(0, hi)`` are stored too, so a
repeat reduce over unchanged leaves is a single lookup of ``(0, n)``.

The combine callable must be associative **and executed pairwise in
left-to-right range order** — the scheduler guarantees the second
operand's range always starts where the first ends, so combiners that
rely on shard adjacency (boundary gaps, edge stitching) stay correct.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from .pool import parallel_map

__all__ = ["TreeReduceStats", "tree_reduce"]


@dataclasses.dataclass
class TreeReduceStats:
    """What one :func:`tree_reduce` call actually did."""

    #: Parallel combine rounds executed (aligned levels plus, when any
    #: peak fold ran, one spine round).
    levels: int = 0
    #: Subtree results served by ``lookup`` instead of being recombined.
    reused: int = 0
    #: Pairwise combines executed.
    combined: int = 0


def _peaks(n: int) -> list[tuple[int, int]]:
    """Power-of-two-aligned decomposition of ``[0, n)`` (MMR peaks)."""
    peaks: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        size = 1
        while size * 2 <= n - lo and lo % (size * 2) == 0:
            size *= 2
        peaks.append((lo, lo + size))
        lo += size
    return peaks


def _combine_worker(payload, pair):
    combine, left, right = payload[0], pair[0], pair[1]
    return combine(left, right)


def tree_reduce(
    n: int,
    leaf: Callable[[int], Any],
    combine: Callable[[Any, Any], Any],
    *,
    jobs: int | None = 1,
    lookup: Callable[[int, int], Any] | None = None,
    store: Callable[[int, int, Any], None] | None = None,
    label: str = "tree_reduce",
) -> tuple[Any, TreeReduceStats]:
    """Reduce ``leaf(0) .. leaf(n-1)`` under ``combine``; see module doc.

    ``lookup(lo, hi)`` may return a cached subtree value (or ``None``);
    ``store(lo, hi, value)`` is called for every combined subtree and
    spine prefix (never for single leaves — the caller owns those).
    Returns ``(value, stats)``.  Raises ``ValueError`` when ``n == 0``.
    """
    if n <= 0:
        raise ValueError("tree_reduce needs at least one leaf")
    stats = TreeReduceStats()
    values: dict[tuple[int, int], Any] = {}

    def resolve(lo: int, hi: int) -> bool:
        """True when ``(lo, hi)`` is available without combining."""
        if (lo, hi) in values:
            return True
        if lookup is not None:
            hit = lookup(lo, hi)
            if hit is not None:
                values[(lo, hi)] = hit
                stats.reused += 1
                return True
        if hi - lo == 1:
            values[(lo, hi)] = leaf(lo)
            return True
        return False

    # Top-down: find the missing aligned subtrees under each peak, then
    # run their combines bottom-up, one parallel round per node size.
    # Nodes are (lo, mid, hi): aligned subtrees split at the midpoint,
    # spine prefixes at the peak boundary.
    pending_by_size: dict[int, list[tuple[int, int, int]]] = {}

    def need(lo: int, hi: int) -> None:
        if resolve(lo, hi):
            return
        mid = lo + (hi - lo) // 2
        need(lo, mid)
        need(mid, hi)
        pending_by_size.setdefault(hi - lo, []).append((lo, mid, hi))

    def run_round(nodes: list[tuple[int, int, int]]) -> None:
        pairs = [(values[(lo, mid)], values[(mid, hi)]) for lo, mid, hi in nodes]
        results = parallel_map(
            _combine_worker, pairs, jobs=jobs, payload=(combine,), label=label
        )
        stats.levels += 1
        stats.combined += len(nodes)
        for (lo, _mid, hi), value in zip(nodes, results):
            values[(lo, hi)] = value
            if store is not None:
                store(lo, hi, value)

    peaks = _peaks(n)
    # A repeat reduce over unchanged leaves is one spine-prefix lookup.
    if not resolve(0, n):
        for lo, hi in peaks:
            need(lo, hi)
        for size in sorted(pending_by_size):
            run_round(pending_by_size[size])

        # Fold the peaks left into the spine, memoizing every prefix.
        spine = [
            (0, acc_hi, hi)
            for (_lo, acc_hi), (lo, hi) in zip(peaks, peaks[1:])
            if not resolve(0, hi)
        ]
        for node in spine:
            run_round([node])
    return values[(0, n)], stats
