"""``repro.par``: process-parallel execution for the cold path.

See :mod:`repro.par.pool` for the execution model (fork-inherited
payloads, serial fallback, parent-side instrumentation).
"""

from .pool import default_jobs, fork_available, parallel_map, resolve_jobs
from .tree import TreeReduceStats, tree_reduce

__all__ = [
    "TreeReduceStats",
    "default_jobs",
    "fork_available",
    "parallel_map",
    "resolve_jobs",
    "tree_reduce",
]
