"""Process-parallel map with a fork-inherited payload and a serial fallback.

The cold path (generation, participant sampling, ARIMA order search)
fans out through :func:`parallel_map`.  The design keeps the hand-off
pickle-light:

* the shared read-only state (world, bot pools, planned columns) is
  published as a module-level ``_PAYLOAD`` global *before* the pool is
  created, so forked workers inherit it copy-on-write and nothing is
  serialised on the way in;
* each task ships only a small item (a family name, an index range) and
  each worker returns only its shard's result, which is the single
  pickle the fan-out pays for.

When ``jobs=1``, the platform has no ``fork`` start method, or there is
only one item, the same worker functions run in-process — callers never
branch on the execution mode, and results are bit-identical either way
because all randomness is keyed by name, never by worker identity.

Observability is recorded parent-side (worker registries die with the
workers): every fan-out counts its items in ``par.tasks{phase}`` and
records the resolved worker count in the ``par.jobs`` gauge, in serial
mode too, so instrumentation tests exercise one code path.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from ..obs import registry as _obs_registry

__all__ = ["default_jobs", "fork_available", "parallel_map", "resolve_jobs"]

#: Whether this process has already warned about a CPU-capped fan-out;
#: the counter keeps counting, the warning fires once.
_CAP_WARNED = False

#: Fork-inherited payload for the fan-out in flight.  Set by the parent
#: immediately before the executor is created, cleared after the map
#: completes; workers read it through :func:`_run_task`.
_PAYLOAD: Any = None

#: Upper bound for the default worker count: generation shards stop
#: scaling past the per-family decomposition, and laptops with many
#: efficiency cores regress beyond this.
_MAX_DEFAULT_JOBS = 8


def default_jobs() -> int:
    """The default worker count: ``os.cpu_count()`` capped at 8."""
    return max(1, min(_MAX_DEFAULT_JOBS, os.cpu_count() or 1))


def resolve_jobs(jobs: int | None) -> int:
    """Validate an explicit ``jobs`` value, or pick the default for ``None``."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _run_task(worker: Callable[[Any, Any], Any], index: int, item: Any) -> tuple[int, Any]:
    """Executed in a worker process: apply ``worker`` to the inherited payload."""
    return index, worker(_PAYLOAD, item)


def parallel_map(
    worker: Callable[[Any, Any], Any],
    items: Iterable[Any],
    *,
    jobs: int = 1,
    payload: Any = None,
    label: str | None = None,
) -> list[Any]:
    """``[worker(payload, item) for item in items]``, possibly across processes.

    ``worker`` must be a module-level function (it is sent to workers by
    reference); ``items`` should be small (names, index ranges) — bulk
    state belongs in ``payload``, which forked workers inherit without
    pickling.  Results come back in item order regardless of completion
    order, so a parallel map is a drop-in for the serial loop.
    """
    global _PAYLOAD, _CAP_WARNED
    seq: Sequence[Any] = list(items)
    n_jobs = jobs if fork_available() else 1
    # More workers than cores only measures fork/pickle overhead (the
    # committed cold-path baseline shows jobs=4 running 0.75x on a
    # single-core machine), so an explicit ``jobs`` is capped at the
    # CPU count — on a 1-CPU box every fan-out degrades to serial.
    cpu_cap = os.cpu_count() or 1
    capped = n_jobs > cpu_cap and len(seq) > cpu_cap
    n_jobs = min(n_jobs, cpu_cap)
    n_jobs = max(1, min(n_jobs, len(seq)))

    reg = _obs_registry()
    name = label or getattr(worker, "__name__", "task").lstrip("_")
    reg.counter("par.tasks", phase=name).inc(len(seq))
    reg.gauge("par.jobs").set(n_jobs)
    if capped:
        # Silent serialisation misled BENCH readers on the 1-core bench
        # machine; make the cap observable — a counter per capped
        # fan-out, a warning once per process.
        reg.counter("par.jobs_capped").inc()
        if not _CAP_WARNED:
            _CAP_WARNED = True
            warnings.warn(
                f"parallel_map requested jobs={jobs} but this machine has "
                f"{cpu_cap} CPU(s); running with jobs={n_jobs}. Timings "
                "recorded under higher jobs values measure the capped "
                "worker count (see effective_parallel_jobs in BENCH "
                "manifests).",
                RuntimeWarning,
                stacklevel=2,
            )

    _PAYLOAD = payload
    try:
        if n_jobs == 1:
            return [worker(payload, item) for item in seq]
        results: list[Any] = [None] * len(seq)
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=n_jobs, mp_context=ctx) as pool:
            futures = [pool.submit(_run_task, worker, i, item) for i, item in enumerate(seq)]
            for future in futures:
                index, value = future.result()
                results[index] = value
        return results
    finally:
        _PAYLOAD = None
