"""Dataset-generation configuration.

A dataset is a pure function of a :class:`DatasetConfig`: the same config
(including its seed) always regenerates the same dataset byte for byte.
``scale`` shrinks every count proportionally — tests and examples use
small scales; the benchmark harness uses the full-size configuration that
matches the paper's totals exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..botnet.family import FamilyProfile
from ..botnet.profiles import (
    INTER_FAMILY_COLLABS,
    MEGA_DAY,
    N_ATTACKER_COUNTRIES,
    N_VICTIM_COUNTRIES,
    default_profiles,
)
from ..simulation.clock import ObservationWindow

__all__ = ["DatasetConfig"]


@dataclass(frozen=True)
class DatasetConfig:
    """Everything the generator needs; see module docstring.

    >>> from repro import DatasetConfig
    >>> DatasetConfig.tiny().scale
    0.005
    >>> DatasetConfig(seed=11, scale=0.02).with_seed(12).seed
    12
    """

    seed: int = 7
    #: Proportional size of the dataset (1.0 = the paper's exact totals).
    scale: float = 1.0
    window: ObservationWindow = field(default_factory=ObservationWindow)
    #: Override the calibrated family profiles (already-scaled profiles
    #: are used verbatim; ``scale`` is not applied on top).
    profiles: dict[str, FamilyProfile] | None = None
    #: Fraction of each family's bots placed in its home countries.
    home_share: float = 0.90
    #: Probability that a long attack is logged as several pulses, which
    #: the monitor's 60 s segmentation must re-merge.
    pulse_split_prob: float = 0.25
    #: Segmentation threshold (§II-D); the ablation bench sweeps this.
    gap_seconds: float = 60.0
    n_attacker_countries: int = N_ATTACKER_COUNTRIES
    n_victim_countries: int = N_VICTIM_COUNTRIES

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not 0.0 < self.home_share <= 1.0:
            raise ValueError(f"home_share must be in (0, 1], got {self.home_share}")
        if not 0.0 <= self.pulse_split_prob <= 1.0:
            raise ValueError(f"pulse_split_prob out of [0, 1]: {self.pulse_split_prob}")
        if self.gap_seconds < 0:
            raise ValueError(f"gap_seconds must be non-negative: {self.gap_seconds}")
        if self.n_attacker_countries < 1 or self.n_victim_countries < 1:
            raise ValueError("country pool sizes must be positive")

    # -- resolution --------------------------------------------------------

    def resolved_profiles(self) -> dict[str, FamilyProfile]:
        """The family profiles actually used (scaled defaults unless overridden)."""
        if self.profiles is not None:
            return dict(self.profiles)
        profiles = default_profiles()
        if self.scale >= 1.0:
            return profiles
        return {name: prof.scaled(self.scale) for name, prof in profiles.items()}

    def resolved_inter_collabs(self) -> list[tuple[str, str, int]]:
        """Inter-family collaboration counts at this scale, restricted to
        family pairs that exist in the resolved profiles."""
        profiles = self.resolved_profiles()
        out = []
        for fam_a, fam_b, count in INTER_FAMILY_COLLABS:
            if fam_a not in profiles or fam_b not in profiles:
                continue
            if not (profiles[fam_a].active and profiles[fam_b].active):
                continue
            scaled = count if self.scale >= 1.0 else max(1, int(round(count * self.scale)))
            out.append((fam_a, fam_b, scaled))
        return out

    def resolved_mega(self) -> dict:
        """The 2012-08-30 surge spec at this scale (may be zero-size)."""
        mega = dict(MEGA_DAY)
        if self.scale < 1.0:
            mega["extra_attacks"] = int(round(mega["extra_attacks"] * self.scale))
        profiles = self.resolved_profiles()
        if mega["family"] not in profiles or not profiles[mega["family"]].active:
            mega["extra_attacks"] = 0
        return mega

    # -- presets -------------------------------------------------------------

    @classmethod
    def full(cls, seed: int = 7) -> "DatasetConfig":
        """The paper-scale dataset: 50,704 attacks, 310,950 bots."""
        return cls(seed=seed, scale=1.0)

    @classmethod
    def small(cls, seed: int = 7) -> "DatasetConfig":
        """~2 % scale: ~1,000 attacks; integration tests and examples."""
        return cls(seed=seed, scale=0.02)

    @classmethod
    def tiny(cls, seed: int = 7) -> "DatasetConfig":
        """~0.5 % scale: a few hundred attacks; fast unit tests."""
        return cls(seed=seed, scale=0.005)

    def with_seed(self, seed: int) -> "DatasetConfig":
        """The same configuration under a different master seed."""
        return replace(self, seed=seed)
