"""Dataset generation: configuration, victim placement, the generator."""

from .config import DatasetConfig
from .generator import GenerationError, generate_dataset
from .victims import TargetPool, build_victims, victim_country_pool

__all__ = [
    "DatasetConfig",
    "GenerationError",
    "generate_dataset",
    "TargetPool",
    "build_victims",
    "victim_country_pool",
]
