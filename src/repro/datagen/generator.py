"""End-to-end dataset generation.

``generate_dataset(config, jobs=N)`` runs the whole pipeline:

1. build the world, the IPv4 plan and the GeoIP service;
2. build botnet rosters (674 generations) and plan per-family bot pools
   (310,950 bots at full scale) against the shared address space;
3. build the victim registry (9,026 targets) and per-family target pools;
4. plan the inter-family collaborations, then fan one *shard* per family
   across the worker pool: each shard finishes its bot pool, plans the
   family's attacks (waves/sessions, staged collaborations, chains, the
   2012-08-30 surge), assigns protocols (exact Table II multisets) and
   targets (Table V country weights, full coverage of the victim
   registry), resolves (botnet, target) timing conflicts, and replays
   its attacks through the discrete-event monitor with the 60 s
   segmentation rule;
5. merge the shards deterministically (concatenate in family order,
   stable sort by start, renumber collaboration groups);
6. sample per-attack participants from the bot pools, fanned across the
   pool in index chunks;
7. assemble the columnar :class:`~repro.core.dataset.AttackDataset`.

Everything is driven by named seed streams — per-family streams for
planning and monitoring, a per-attack stream for participant sampling —
so a dataset is a pure function of its
:class:`~repro.datagen.config.DatasetConfig`: ``jobs`` only chooses how
the work is executed, never what is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import par
from ..botnet.bots import BotPool, BotPoolPlan
from ..botnet.cnc import BotnetRoster
from ..botnet.scheduler import CollabKind, FamilyScheduler, PlannedAttack
from ..core.dataset import AttackDataset, BotRegistry
from ..geo.ipam import IPAllocator, SequentialAssigner
from ..geo.mapping import GeoIPService
from ..geo.world import World
from ..monitor.collector import Collector
from ..monitor.labeling import FamilyLabeler
from ..monitor.schemas import AttackPulse, BotnetRecord, Protocol
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventKind
from ..simulation.rng import SeededStreams, derive_seed
from .config import DatasetConfig
from .victims import TargetPool, build_victims

__all__ = ["generate_dataset", "GenerationError"]


class GenerationError(RuntimeError):
    """Internal consistency failure during generation (a bug, not data)."""


def _attacker_country_pool(world: World, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``n`` countries by internet weight: the global bot tail pool."""
    order = sorted(world.countries, key=lambda c: -c.weight)[:n]
    idx = np.array([c.index for c in order], dtype=np.int64)
    w = np.array([c.weight for c in order], dtype=float)
    return idx, w


def _plan_inter_family(
    collabs: list[tuple[str, str, int]],
    profiles,
    pools: dict[str, TargetPool],
    rosters: dict[str, BotnetRoster],
    window: ObservationWindow,
    rng: np.random.Generator,
    next_group: int,
) -> tuple[list[PlannedAttack], int]:
    """Stage the inter-family concurrent collaborations (§V-A, Fig 16).

    Dirtjumper×Pandora ran from October to December 2012 against 96
    unique targets; each event pairs one attack from each family with
    near-identical magnitudes and durations differing by 10-28 minutes.
    Group ids are numbered locally from ``next_group``; the shard merge
    renumbers them after the total intra-family group count is known.
    """
    attacks: list[PlannedAttack] = []
    # Oct 1 / Dec 31 2012 as fractions of the paper window.
    season = (0.159, 0.599)
    for fam_a, fam_b, count in collabs:
        prof_a, prof_b = profiles[fam_a], profiles[fam_b]
        lo = max(prof_a.active_window[0], prof_b.active_window[0], season[0])
        hi = min(prof_a.active_window[1], prof_b.active_window[1], season[1])
        if hi <= lo:  # fall back to the plain activity overlap
            lo = max(prof_a.active_window[0], prof_b.active_window[0])
            hi = min(prof_a.active_window[1], prof_b.active_window[1])
            if hi <= lo:
                raise GenerationError(
                    f"{fam_a} and {fam_b} never active together; cannot stage collabs"
                )
        t0 = window.start + lo * window.duration
        span = (hi - lo) * window.duration

        pool_a = pools[fam_a]
        n_targets = max(1, min(int(round(count * 96.0 / 118.0)), pool_a.n_targets, count))
        target_sel = rng.choice(pool_a.target_indices.size, size=n_targets, replace=False)
        targets = pool_a.target_indices[target_sel]
        for e in range(count):
            # First cover every designated target once, then revisit.
            target = int(targets[e]) if e < n_targets else int(targets[rng.integers(0, n_targets)])
            base = t0 + rng.random() * span
            dur_a = float(rng.lognormal(np.log(4800.0), 0.4))
            dur_b = dur_a + float(rng.uniform(600.0, 1700.0))
            magnitude = int(max(4, round(rng.lognormal(np.log(40.0), 0.4))))
            bot_a = int(rosters[fam_a].pick(rng, base, k=1)[0])
            bot_b = int(rosters[fam_b].pick(rng, base, k=1)[0])
            sym = bool(rng.random() < 0.6)
            residual = 0.0 if sym else float(rng.lognormal(np.log(800.0), 0.5))
            for fam, bot, dur in ((fam_a, bot_a, dur_a), (fam_b, bot_b, dur_b)):
                attacks.append(
                    PlannedAttack(
                        start=base + float(rng.random() * 50.0),
                        duration=dur,
                        family=fam,
                        botnet_id=bot,
                        target_index=target,
                        magnitude=magnitude,
                        symmetric=sym,
                        residual_km=residual,
                        collab_group=next_group,
                        collab_kind=CollabKind.INTER,
                    )
                )
            next_group += 1
    return attacks, next_group


def _assign_protocols(
    name: str, attacks: list[PlannedAttack], profile, rng: np.random.Generator
) -> None:
    """Give every attack a protocol; exact Table II multiset per family."""
    counts = profile.protocol_counts
    multiset: list[Protocol] = []
    for proto in sorted(counts, key=lambda p: p.value):
        multiset.extend([proto] * counts[proto])
    if len(multiset) != len(attacks):
        raise GenerationError(
            f"{name}: planned {len(attacks)} attacks but protocol "
            f"multiset holds {len(multiset)}"
        )
    order = rng.permutation(len(multiset))
    for attack, pos in zip(attacks, order):
        attack.protocol = multiset[pos]


def _assign_targets(
    attacks: list[PlannedAttack], pool: TargetPool, rng: np.random.Generator
) -> None:
    """Fill in targets: staged structures first, then full pool coverage.

    Mega-day attacks (marked ``chain_id == -2``) round-robin over the
    designated Russian subnet; each chain and each intra-family collab
    group shares a single target; the remaining ("regular") attacks first
    cover every not-yet-attacked victim once, then draw country-weighted
    Zipf targets.
    """
    used: set[int] = set()
    regular: list[PlannedAttack] = []
    by_chain: dict[int, list[PlannedAttack]] = {}
    by_group: dict[int, list[PlannedAttack]] = {}
    mega: list[PlannedAttack] = []
    for attack in attacks:
        if attack.target_index >= 0:  # inter-family collabs arrive pre-assigned
            used.add(attack.target_index)
            continue
        if attack.chain_id == -2:
            mega.append(attack)
        elif attack.chain_id >= 0:
            by_chain.setdefault(attack.chain_id, []).append(attack)
        elif attack.collab_group >= 0:
            by_group.setdefault(attack.collab_group, []).append(attack)
        else:
            regular.append(attack)

    if mega:
        targets = pool.mega_targets if pool.mega_targets.size else pool.target_indices
        for i, attack in enumerate(mega):
            attack.target_index = int(targets[i % targets.size])
            used.add(attack.target_index)
    for members in by_chain.values():
        target = pool.sample_target(rng)
        for attack in members:
            attack.target_index = target
        used.add(target)
    for members in by_group.values():
        target = pool.sample_target(rng)
        for attack in members:
            attack.target_index = target
        used.add(target)

    uncovered = [int(t) for t in pool.target_indices if int(t) not in used]
    rng.shuffle(uncovered)
    rng.shuffle(regular)
    for attack in regular:
        if uncovered:
            attack.target_index = uncovered.pop()
        else:
            attack.target_index = pool.sample_target(rng)
    if uncovered:
        # Not enough regular attacks to cover the pool: hand leftovers to
        # staged attacks (overrides their shared-target property for the
        # overflow only; only reachable at extreme scale-down).
        overflow = mega + [a for ms in by_chain.values() for a in ms]
        for attack, target in zip(overflow, uncovered):
            attack.target_index = int(target)
        uncovered = uncovered[len(overflow):]
    for attack in attacks:
        if attack.target_index < 0:
            raise GenerationError(f"{attack.family}: unassigned target survived")


def _resolve_conflicts(
    attacks: list[PlannedAttack], window: ObservationWindow, rng: np.random.Generator
) -> None:
    """Ensure no two attacks share (botnet, target) within the 60 s rule.

    The segmentation stage merges same-botnet-same-target activity with
    gaps <= 60 s; planned attacks that would merge are pushed apart, so
    the verified-attack count stays exact.  Botnet ids are unique to one
    family, so per-family resolution partitions exactly like a global
    pass would.
    """
    groups: dict[tuple[int, int], list[PlannedAttack]] = {}
    for attack in attacks:
        groups.setdefault((attack.botnet_id, attack.target_index), []).append(attack)
    for members in groups.values():
        if len(members) < 2:
            continue
        members.sort(key=lambda a: a.start)
        prev_end = members[0].end
        for attack in members[1:]:
            min_start = prev_end + 61.0
            if attack.start < min_start:
                attack.start = min_start + float(rng.random() * 30.0)
            prev_end = max(prev_end, attack.end)


def _clamp_to_window(attacks: list[PlannedAttack], window: ObservationWindow) -> None:
    """Keep every attack's *start* inside the observation window.

    Runs before conflict resolution (which only ever pushes starts
    later, never earlier, so it cannot undo this).  An attack may end
    after the window closes — the monitoring service records the end
    time it eventually observes, exactly as the real collection did.
    """
    horizon = float(window.end - 1)
    for attack in attacks:
        if attack.start >= horizon:
            attack.start = horizon - 1.0
        if attack.start < window.start:
            attack.start = float(window.start)


def _emit_pulses(
    attacks: list[PlannedAttack],
    engine: SimulationEngine,
    rng: np.random.Generator,
    split_prob: float,
) -> None:
    """Schedule each planned attack as 1-3 raw pulses on the engine."""
    for tag, attack in enumerate(attacks):
        # Splitting carves short (<= 50 s) gaps strictly *inside* the
        # planned span, so the merged record reproduces the attack
        # exactly and never bleeds into a neighbouring attack.
        cuts: list[tuple[float, float]] = [(attack.start, attack.end)]
        if attack.duration > 300.0 and rng.random() < split_prob:
            n_cuts = 2 if (attack.duration > 900.0 and rng.random() < 0.5) else 1
            centers = np.sort(rng.uniform(0.25, 0.75, size=n_cuts)) * attack.duration
            if n_cuts == 1 or (centers[1] - centers[0]) > 110.0:
                gaps = rng.uniform(5.0, 50.0, size=n_cuts)
                cuts = []
                edge = attack.start
                for center, gap in zip(centers, gaps):
                    cuts.append((edge, attack.start + float(center - gap / 2.0)))
                    edge = attack.start + float(center + gap / 2.0)
                cuts.append((edge, attack.end))
        for lo, hi in cuts:
            pulse = AttackPulse(
                botnet_id=attack.botnet_id,
                family=attack.family,
                target_index=attack.target_index,
                start=lo,
                end=hi,
                protocol=attack.protocol,
                attack_tag=tag,
            )
            engine.schedule(lo, EventKind.ATTACK_PULSE, pulse)


# ---------------------------------------------------------------------------
# family shards (phase A): pool finish + planning + monitoring, per family
# ---------------------------------------------------------------------------


@dataclass
class _ShardPayload:
    """Read-only state every family shard needs (fork-inherited)."""

    seed: int
    window: ObservationWindow
    profiles: dict
    world: World
    geoip: GeoIPService
    rosters: dict[str, BotnetRoster]
    target_pools: dict[str, TargetPool]
    plans: dict[str, BotPoolPlan]
    inter_by_family: dict[str, list[PlannedAttack]]
    reserve: dict[str, int]
    mega: dict
    active: frozenset[str]
    pulse_split_prob: float
    gap_seconds: float


@dataclass
class _ShardResult:
    """One family's contribution: its finished pool and attack columns."""

    pool: BotPool
    n_groups: int = 0
    columns: dict[str, np.ndarray] | None = None


def _segment_columns(
    attacks: list[PlannedAttack], segments
) -> dict[str, np.ndarray]:
    """Per-family attack columns in segment (start-sorted) order.

    ``planned_magnitude`` is transient — participant sampling consumes
    it and replaces it with the realised sample size.  ``group`` holds
    family-local collaboration ids; the merge renumbers them.
    """
    n = len(segments)
    cols = {
        "start": np.empty(n),
        "end": np.empty(n),
        "botnet": np.empty(n, dtype=np.int32),
        "protocol": np.empty(n, dtype=np.int8),
        "target": np.empty(n, dtype=np.int32),
        "planned_magnitude": np.empty(n, dtype=np.int64),
        "group": np.empty(n, dtype=np.int32),
        "kind": np.empty(n, dtype=np.int8),
        "chain": np.empty(n, dtype=np.int32),
        "sym": np.empty(n, dtype=bool),
        "residual": np.empty(n, dtype=np.float64),
    }
    for i, seg in enumerate(segments):
        planned = attacks[seg.tags[0]]
        cols["start"][i] = seg.start
        cols["end"][i] = seg.end
        cols["botnet"][i] = seg.botnet_id
        cols["protocol"][i] = int(planned.protocol)
        cols["target"][i] = planned.target_index
        cols["planned_magnitude"][i] = planned.magnitude
        cols["group"][i] = planned.collab_group
        cols["kind"][i] = planned.collab_kind
        cols["chain"][i] = planned.chain_id if planned.chain_id >= 0 else -1
        cols["sym"][i] = planned.symmetric
        cols["residual"][i] = planned.residual_km
    return cols


def _family_shard(payload: _ShardPayload, name: str) -> _ShardResult:
    """Finish one family's bot pool and, if active, plan + monitor its attacks.

    All randomness comes from streams named after the family
    (``schedule.<name>``, ``protocols.<name>``, ``targets.<name>``,
    ``conflicts.<name>``, ``pulses.<name>``) plus the mid-state pool
    stream captured in the plan, so the result is independent of which
    process runs the shard or in what order.
    """
    profile = payload.profiles[name]
    window = payload.window
    streams = SeededStreams(payload.seed)
    roster = payload.rosters[name]
    pool = BotPool.finish(
        payload.plans[name], profile, payload.world, payload.geoip, window, roster.ids
    )
    if name not in payload.active:
        return _ShardResult(pool=pool)

    scheduler = FamilyScheduler(
        profile, window, roster,
        streams.stream(f"schedule.{name}"),
        reserve_for_inter=payload.reserve.get(name, 0),
        mega_extra=payload.mega["extra_attacks"] if name == payload.mega["family"] else 0,
    )
    plan, n_groups = scheduler.plan(0)
    attacks = plan.attacks
    attacks.extend(payload.inter_by_family.get(name, ()))

    _assign_protocols(name, attacks, profile, streams.stream(f"protocols.{name}"))
    _assign_targets(attacks, payload.target_pools[name], streams.stream(f"targets.{name}"))
    _clamp_to_window(attacks, window)
    _resolve_conflicts(attacks, window, streams.stream(f"conflicts.{name}"))

    # Monitoring round trip.  Segmentation groups by (botnet, target) and
    # botnets belong to exactly one family, so per-family replay produces
    # the same segments a global replay would.
    labeler = FamilyLabeler({int(bid): name for bid in roster.ids})
    engine = SimulationEngine(start_time=window.start)
    collector = Collector(labeler, gap_seconds=payload.gap_seconds)
    collector.attach(engine)
    _emit_pulses(attacks, engine, streams.stream(f"pulses.{name}"), payload.pulse_split_prob)
    engine.run()
    segments = collector.segment()

    if len(segments) != len(attacks):
        raise GenerationError(
            f"{name}: segmentation produced {len(segments)} attacks from "
            f"{len(attacks)} planned (conflict resolution failed)"
        )
    seen_tags: set[int] = set()
    for seg in segments:
        if len(seg.tags) != 1:
            raise GenerationError(f"{name}: segment merged distinct attacks: tags={seg.tags}")
        seen_tags.add(seg.tags[0])
    if len(seen_tags) != len(attacks):
        raise GenerationError(f"{name}: segmentation lost attacks")

    return _ShardResult(
        pool=pool, n_groups=n_groups, columns=_segment_columns(attacks, segments)
    )


# ---------------------------------------------------------------------------
# participant sampling (phase B): per-attack streams, chunked by index
# ---------------------------------------------------------------------------


@dataclass
class _ParticipantPayload:
    """Merged attack columns + finished pools (fork-inherited)."""

    seed: int
    pools: dict[str, BotPool]
    family_names: list[str]
    pool_offset: np.ndarray = field(repr=False, default=None)  # by global family idx
    family_idx: np.ndarray = field(repr=False, default=None)
    start: np.ndarray = field(repr=False, default=None)
    magnitude: np.ndarray = field(repr=False, default=None)
    symmetric: np.ndarray = field(repr=False, default=None)
    residual: np.ndarray = field(repr=False, default=None)


def _participant_chunk(
    payload: _ParticipantPayload, bounds: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Sample participants for attacks ``[lo, hi)`` of the merged order.

    Each attack gets its own generator derived from the config seed and
    its merged index, so the result is invariant to chunking and worker
    count.
    """
    lo, hi = bounds
    sizes = np.empty(hi - lo, dtype=np.int64)
    parts: list[np.ndarray] = []
    for i in range(lo, hi):
        fam = int(payload.family_idx[i])
        pool = payload.pools[payload.family_names[fam]]
        rng = np.random.default_rng(derive_seed(payload.seed, f"participants.{i}"))
        local = pool.sample_participants(
            rng, float(payload.start[i]), int(payload.magnitude[i]),
            bool(payload.symmetric[i]), float(payload.residual[i]),
        )
        parts.append(local + payload.pool_offset[fam])
        sizes[i - lo] = local.size
    merged = (
        np.concatenate(parts).astype(np.int64) if parts else np.zeros(0, dtype=np.int64)
    )
    return sizes, merged


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


def generate_dataset(config: DatasetConfig | None = None, jobs: int = 1) -> AttackDataset:
    """Generate the full synthetic dataset for ``config`` (see module docs).

    ``jobs`` controls how many worker processes run the family shards
    and participant chunks; the output is array-identical for every
    value (randomness is keyed by stream name and attack index, never by
    worker).  The run is observable: the whole build times under a
    ``generate`` stage span with one child phase per pipeline step
    (``world``, ``rosters``, ``victims``, ``pool_plans``, ``inter``,
    ``par.shards``, ``merge``, ``par.participants``, ``assemble``), and
    the attack count lands in the ``generate.attacks`` counter.

    >>> from repro import DatasetConfig, generate_dataset
    >>> ds = generate_dataset(DatasetConfig.tiny())
    >>> ds.n_attacks > 0
    True
    """
    reg = _obs_registry()
    with reg.span("generate"), reg.phases() as phase:
        ds = _generate(config, phase, jobs)
    reg.counter("generate.attacks").inc(ds.n_attacks)
    return ds


def _generate(config: DatasetConfig | None, phase, jobs: int = 1) -> AttackDataset:
    """The generation pipeline (``phase(name)`` marks the stage spans)."""
    if config is None:
        config = DatasetConfig()
    jobs = par.resolve_jobs(jobs)
    phase("world")
    streams = SeededStreams(config.seed)
    window = config.window
    profiles = config.resolved_profiles()
    family_names = list(profiles.keys())
    family_index = {name: i for i, name in enumerate(family_names)}
    active_names = [n for n in family_names if profiles[n].active]

    world = World.build(streams)
    allocator = IPAllocator(world, streams)
    geoip = GeoIPService(world, allocator)
    assigner = SequentialAssigner(allocator)
    attacker_idx, attacker_w = _attacker_country_pool(world, config.n_attacker_countries)

    # --- rosters -----------------------------------------------------------
    phase("rosters")
    rosters: dict[str, BotnetRoster] = {}
    next_botnet_id = 1
    for name in family_names:
        roster = BotnetRoster.build(
            profiles[name], world, assigner,
            streams.stream(f"roster.{name}"), window, next_botnet_id,
        )
        rosters[name] = roster
        next_botnet_id += roster.n_botnets

    # --- victims -----------------------------------------------------------
    phase("victims")
    mega = config.resolved_mega()
    victims, target_pools = build_victims(
        profiles, world, assigner, geoip, streams.stream("victims"),
        config.n_victim_countries, mega_family=mega["family"],
    )
    # build_victims numbers owners by active-family position; remap global.
    active_to_global = np.array([family_index[n] for n in active_names], dtype=np.int16)
    owned = victims.owner_family_idx >= 0
    victims.owner_family_idx[owned] = active_to_global[victims.owner_family_idx[owned]]

    # --- bot pool plans (shared address space stays parent-side) -----------
    phase("pool_plans")
    plans: dict[str, BotPoolPlan] = {}
    for name in family_names:
        plans[name] = BotPool.plan(
            profiles[name], world, assigner,
            streams.stream(f"bots.{name}"),
            attacker_idx, attacker_w, home_share=config.home_share,
        )

    # --- inter-family collaborations ---------------------------------------
    phase("inter")
    inter = config.resolved_inter_collabs()
    reserve: dict[str, int] = {}
    for fam_a, fam_b, count in inter:
        reserve[fam_a] = reserve.get(fam_a, 0) + count
        reserve[fam_b] = reserve.get(fam_b, 0) + count
    inter_attacks, _ = _plan_inter_family(
        inter, profiles, target_pools, rosters, window, streams.stream("inter"), 0
    )
    inter_by_family: dict[str, list[PlannedAttack]] = {}
    for attack in inter_attacks:
        inter_by_family.setdefault(attack.family, []).append(attack)

    # --- family shards -------------------------------------------------------
    phase("par.shards")
    shard_payload = _ShardPayload(
        seed=config.seed, window=window, profiles=profiles, world=world,
        geoip=geoip, rosters=rosters, target_pools=target_pools, plans=plans,
        inter_by_family=inter_by_family, reserve=reserve, mega=mega,
        active=frozenset(active_names), pulse_split_prob=config.pulse_split_prob,
        gap_seconds=config.gap_seconds,
    )
    shards = dict(zip(
        family_names,
        par.parallel_map(
            _family_shard, family_names, jobs=jobs,
            payload=shard_payload, label="shards",
        ),
    ))
    pools = {name: shards[name].pool for name in family_names}

    # --- merge ---------------------------------------------------------------
    phase("merge")
    # Intra-family collaboration groups are numbered locally from 0 in
    # each shard; lay them out family after family (in active order),
    # then the inter-family groups after all of them.
    total_intra = sum(shards[name].n_groups for name in active_names)
    merged: dict[str, list[np.ndarray]] = {}
    family_parts: list[np.ndarray] = []
    group_offset = 0
    for name in active_names:
        cols = shards[name].columns
        intra = cols["kind"] == int(CollabKind.INTRA)
        cols["group"][intra] += group_offset
        inter_mask = cols["kind"] == int(CollabKind.INTER)
        cols["group"][inter_mask] += total_intra
        group_offset += shards[name].n_groups
        for key, arr in cols.items():
            merged.setdefault(key, []).append(arr)
        family_parts.append(
            np.full(cols["start"].size, family_index[name], dtype=np.int16)
        )
    cols = {key: np.concatenate(arrs) for key, arrs in merged.items()}
    family_col = np.concatenate(family_parts)
    order = np.argsort(cols["start"], kind="stable")
    cols = {key: arr[order] for key, arr in cols.items()}
    family_col = family_col[order]
    n = family_col.size

    # --- participants --------------------------------------------------------
    phase("par.participants")
    pool_offset = np.zeros(len(family_names), dtype=np.int64)
    offset = 0
    for i, name in enumerate(family_names):
        pool_offset[i] = offset
        offset += pools[name].n_bots
    part_payload = _ParticipantPayload(
        seed=config.seed, pools=pools, family_names=family_names,
        pool_offset=pool_offset, family_idx=family_col, start=cols["start"],
        magnitude=cols["planned_magnitude"], symmetric=cols["sym"],
        residual=cols["residual"],
    )
    # Several chunks per worker even out the skew between heavyweight
    # and lightweight families; chunk boundaries never affect output.
    n_chunks = 1 if jobs == 1 else max(1, min(n, jobs * 4))
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    chunk_results = par.parallel_map(
        _participant_chunk,
        list(zip(bounds[:-1].tolist(), bounds[1:].tolist())),
        jobs=jobs, payload=part_payload, label="participants",
    )
    magnitude_col = (
        np.concatenate([sizes for sizes, _p in chunk_results])
        if chunk_results else np.zeros(0, dtype=np.int64)
    ).astype(np.int32)
    participants = (
        np.concatenate([p for _s, p in chunk_results])
        if chunk_results else np.zeros(0, dtype=np.int64)
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(magnitude_col, out=offsets[1:])

    # --- registries ------------------------------------------------------------
    phase("assemble")
    bots = BotRegistry(
        ip=np.concatenate([pools[n].ip for n in family_names]),
        lat=np.concatenate([pools[n].lat for n in family_names]),
        lon=np.concatenate([pools[n].lon for n in family_names]),
        country_idx=np.concatenate([pools[n].country_idx for n in family_names]),
        city_idx=np.concatenate([pools[n].city_idx for n in family_names]),
        org_idx=np.concatenate([pools[n].org_idx for n in family_names]),
        asn=np.concatenate([pools[n].asn for n in family_names]),
        family_idx=np.concatenate(
            [np.full(pools[n].n_bots, family_index[n], dtype=np.int16) for n in family_names]
        ),
        botnet_id=np.concatenate([pools[n].botnet_id for n in family_names]),
        recruit_ts=np.concatenate([pools[n].recruit_ts for n in family_names]),
    )
    botnet_records = [
        BotnetRecord(
            botnet_id=int(rosters[name].ids[j]),
            family=name,
            controller_ip=int(rosters[name].controller_ip[j]),
            first_seen=float(rosters[name].first_seen[j]),
            last_seen=float(rosters[name].last_seen[j]),
        )
        for name in family_names
        for j in range(rosters[name].n_botnets)
    ]

    return AttackDataset(
        window=window,
        world=world,
        families=family_names,
        active_families=active_names,
        bots=bots,
        victims=victims,
        botnets=botnet_records,
        start=cols["start"],
        end=cols["end"],
        family_idx=family_col,
        botnet_id=cols["botnet"],
        protocol=cols["protocol"],
        target_idx=cols["target"],
        magnitude=magnitude_col,
        part_offsets=offsets,
        participants=participants,
        truth_collab_group=cols["group"],
        truth_collab_kind=cols["kind"],
        truth_chain_id=cols["chain"],
        truth_symmetric=cols["sym"],
        truth_residual_km=cols["residual"],
    )
