"""End-to-end dataset generation.

``generate_dataset(config)`` runs the whole pipeline:

1. build the world, the IPv4 plan and the GeoIP service;
2. build botnet rosters (674 generations) and per-family bot pools
   (310,950 bots at full scale);
3. build the victim registry (9,026 targets) and per-family target pools;
4. plan every family's attacks (waves/sessions, staged collaborations,
   chains, the 2012-08-30 surge) plus the inter-family collaborations;
5. assign protocols (exact Table II multisets) and targets (Table V
   country weights, full coverage of the victim registry);
6. resolve (botnet, target) timing conflicts so the 60 s segmentation
   rule cannot merge distinct attacks;
7. sample per-attack participants from the bot pools;
8. emit raw pulses through the discrete-event engine into the monitoring
   collector, segment them with the 60 s rule, and verify the round trip;
9. assemble the columnar :class:`~repro.core.dataset.AttackDataset`.

Everything is driven by named seed streams, so a dataset is a pure
function of its :class:`~repro.datagen.config.DatasetConfig`.
"""

from __future__ import annotations

import numpy as np

from ..botnet.bots import BotPool
from ..botnet.cnc import BotnetRoster
from ..botnet.scheduler import CollabKind, FamilyScheduler, PlannedAttack
from ..core.dataset import AttackDataset, BotRegistry
from ..geo.ipam import IPAllocator, SequentialAssigner
from ..geo.mapping import GeoIPService
from ..geo.world import World
from ..monitor.collector import Collector
from ..monitor.labeling import FamilyLabeler
from ..monitor.schemas import AttackPulse, BotnetRecord, Protocol
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventKind
from ..simulation.rng import SeededStreams
from .config import DatasetConfig
from .victims import TargetPool, build_victims

__all__ = ["generate_dataset", "GenerationError"]


class GenerationError(RuntimeError):
    """Internal consistency failure during generation (a bug, not data)."""


def _attacker_country_pool(world: World, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``n`` countries by internet weight: the global bot tail pool."""
    order = sorted(world.countries, key=lambda c: -c.weight)[:n]
    idx = np.array([c.index for c in order], dtype=np.int64)
    w = np.array([c.weight for c in order], dtype=float)
    return idx, w


def _plan_inter_family(
    collabs: list[tuple[str, str, int]],
    profiles,
    pools: dict[str, TargetPool],
    rosters: dict[str, BotnetRoster],
    window: ObservationWindow,
    rng: np.random.Generator,
    next_group: int,
) -> tuple[list[PlannedAttack], int]:
    """Stage the inter-family concurrent collaborations (§V-A, Fig 16).

    Dirtjumper×Pandora ran from October to December 2012 against 96
    unique targets; each event pairs one attack from each family with
    near-identical magnitudes and durations differing by 10-28 minutes.
    """
    attacks: list[PlannedAttack] = []
    # Oct 1 / Dec 31 2012 as fractions of the paper window.
    season = (0.159, 0.599)
    for fam_a, fam_b, count in collabs:
        prof_a, prof_b = profiles[fam_a], profiles[fam_b]
        lo = max(prof_a.active_window[0], prof_b.active_window[0], season[0])
        hi = min(prof_a.active_window[1], prof_b.active_window[1], season[1])
        if hi <= lo:  # fall back to the plain activity overlap
            lo = max(prof_a.active_window[0], prof_b.active_window[0])
            hi = min(prof_a.active_window[1], prof_b.active_window[1])
            if hi <= lo:
                raise GenerationError(
                    f"{fam_a} and {fam_b} never active together; cannot stage collabs"
                )
        t0 = window.start + lo * window.duration
        span = (hi - lo) * window.duration

        pool_a = pools[fam_a]
        n_targets = max(1, min(int(round(count * 96.0 / 118.0)), pool_a.n_targets, count))
        target_sel = rng.choice(pool_a.target_indices.size, size=n_targets, replace=False)
        targets = pool_a.target_indices[target_sel]
        for e in range(count):
            # First cover every designated target once, then revisit.
            target = int(targets[e]) if e < n_targets else int(targets[rng.integers(0, n_targets)])
            base = t0 + rng.random() * span
            dur_a = float(rng.lognormal(np.log(4800.0), 0.4))
            dur_b = dur_a + float(rng.uniform(600.0, 1700.0))
            magnitude = int(max(4, round(rng.lognormal(np.log(40.0), 0.4))))
            bot_a = int(rosters[fam_a].pick(rng, base, k=1)[0])
            bot_b = int(rosters[fam_b].pick(rng, base, k=1)[0])
            sym = bool(rng.random() < 0.6)
            residual = 0.0 if sym else float(rng.lognormal(np.log(800.0), 0.5))
            for fam, bot, dur in ((fam_a, bot_a, dur_a), (fam_b, bot_b, dur_b)):
                attacks.append(
                    PlannedAttack(
                        start=base + float(rng.random() * 50.0),
                        duration=dur,
                        family=fam,
                        botnet_id=bot,
                        target_index=target,
                        magnitude=magnitude,
                        symmetric=sym,
                        residual_km=residual,
                        collab_group=next_group,
                        collab_kind=CollabKind.INTER,
                    )
                )
            next_group += 1
    return attacks, next_group


def _assign_protocols(per_family: dict[str, list[PlannedAttack]], profiles, streams) -> None:
    """Give every attack a protocol; exact Table II multiset per family."""
    for name, attacks in per_family.items():
        counts = profiles[name].protocol_counts
        multiset: list[Protocol] = []
        for proto in sorted(counts, key=lambda p: p.value):
            multiset.extend([proto] * counts[proto])
        if len(multiset) != len(attacks):
            raise GenerationError(
                f"{name}: planned {len(attacks)} attacks but protocol "
                f"multiset holds {len(multiset)}"
            )
        rng = streams.stream(f"protocols.{name}")
        order = rng.permutation(len(multiset))
        for attack, pos in zip(attacks, order):
            attack.protocol = multiset[pos]


def _assign_targets(
    attacks: list[PlannedAttack], pool: TargetPool, rng: np.random.Generator
) -> None:
    """Fill in targets: staged structures first, then full pool coverage.

    Mega-day attacks (marked ``chain_id == -2``) round-robin over the
    designated Russian subnet; each chain and each intra-family collab
    group shares a single target; the remaining ("regular") attacks first
    cover every not-yet-attacked victim once, then draw country-weighted
    Zipf targets.
    """
    used: set[int] = set()
    regular: list[PlannedAttack] = []
    by_chain: dict[int, list[PlannedAttack]] = {}
    by_group: dict[int, list[PlannedAttack]] = {}
    mega: list[PlannedAttack] = []
    for attack in attacks:
        if attack.target_index >= 0:  # inter-family collabs arrive pre-assigned
            used.add(attack.target_index)
            continue
        if attack.chain_id == -2:
            mega.append(attack)
        elif attack.chain_id >= 0:
            by_chain.setdefault(attack.chain_id, []).append(attack)
        elif attack.collab_group >= 0:
            by_group.setdefault(attack.collab_group, []).append(attack)
        else:
            regular.append(attack)

    if mega:
        targets = pool.mega_targets if pool.mega_targets.size else pool.target_indices
        for i, attack in enumerate(mega):
            attack.target_index = int(targets[i % targets.size])
            used.add(attack.target_index)
    for members in by_chain.values():
        target = pool.sample_target(rng)
        for attack in members:
            attack.target_index = target
        used.add(target)
    for members in by_group.values():
        target = pool.sample_target(rng)
        for attack in members:
            attack.target_index = target
        used.add(target)

    uncovered = [int(t) for t in pool.target_indices if int(t) not in used]
    rng.shuffle(uncovered)
    rng.shuffle(regular)
    for attack in regular:
        if uncovered:
            attack.target_index = uncovered.pop()
        else:
            attack.target_index = pool.sample_target(rng)
    if uncovered:
        # Not enough regular attacks to cover the pool: hand leftovers to
        # staged attacks (overrides their shared-target property for the
        # overflow only; only reachable at extreme scale-down).
        overflow = mega + [a for ms in by_chain.values() for a in ms]
        for attack, target in zip(overflow, uncovered):
            attack.target_index = int(target)
        uncovered = uncovered[len(overflow):]
    for attack in attacks:
        if attack.target_index < 0:
            raise GenerationError(f"{attack.family}: unassigned target survived")


def _resolve_conflicts(
    attacks: list[PlannedAttack], window: ObservationWindow, rng: np.random.Generator
) -> None:
    """Ensure no two attacks share (botnet, target) within the 60 s rule.

    The segmentation stage merges same-botnet-same-target activity with
    gaps <= 60 s; planned attacks that would merge are pushed apart, so
    the verified-attack count stays exact.
    """
    groups: dict[tuple[int, int], list[PlannedAttack]] = {}
    for attack in attacks:
        groups.setdefault((attack.botnet_id, attack.target_index), []).append(attack)
    for members in groups.values():
        if len(members) < 2:
            continue
        members.sort(key=lambda a: a.start)
        prev_end = members[0].end
        for attack in members[1:]:
            min_start = prev_end + 61.0
            if attack.start < min_start:
                attack.start = min_start + float(rng.random() * 30.0)
            prev_end = max(prev_end, attack.end)


def _clamp_to_window(attacks: list[PlannedAttack], window: ObservationWindow) -> None:
    """Keep every attack's *start* inside the observation window.

    Runs before conflict resolution (which only ever pushes starts
    later, never earlier, so it cannot undo this).  An attack may end
    after the window closes — the monitoring service records the end
    time it eventually observes, exactly as the real collection did.
    """
    horizon = float(window.end - 1)
    for attack in attacks:
        if attack.start >= horizon:
            attack.start = horizon - 1.0
        if attack.start < window.start:
            attack.start = float(window.start)


def _emit_pulses(
    attacks: list[PlannedAttack],
    engine: SimulationEngine,
    rng: np.random.Generator,
    split_prob: float,
) -> None:
    """Schedule each planned attack as 1-3 raw pulses on the engine."""
    for tag, attack in enumerate(attacks):
        # Splitting carves short (<= 50 s) gaps strictly *inside* the
        # planned span, so the merged record reproduces the attack
        # exactly and never bleeds into a neighbouring attack.
        cuts: list[tuple[float, float]] = [(attack.start, attack.end)]
        if attack.duration > 300.0 and rng.random() < split_prob:
            n_cuts = 2 if (attack.duration > 900.0 and rng.random() < 0.5) else 1
            centers = np.sort(rng.uniform(0.25, 0.75, size=n_cuts)) * attack.duration
            if n_cuts == 1 or (centers[1] - centers[0]) > 110.0:
                gaps = rng.uniform(5.0, 50.0, size=n_cuts)
                cuts = []
                edge = attack.start
                for center, gap in zip(centers, gaps):
                    cuts.append((edge, attack.start + float(center - gap / 2.0)))
                    edge = attack.start + float(center + gap / 2.0)
                cuts.append((edge, attack.end))
        for lo, hi in cuts:
            pulse = AttackPulse(
                botnet_id=attack.botnet_id,
                family=attack.family,
                target_index=attack.target_index,
                start=lo,
                end=hi,
                protocol=attack.protocol,
                attack_tag=tag,
            )
            engine.schedule(lo, EventKind.ATTACK_PULSE, pulse)


def generate_dataset(config: DatasetConfig | None = None) -> AttackDataset:
    """Generate the full synthetic dataset for ``config`` (see module docs).

    The run is observable: the whole build times under a ``generate``
    stage span with one child phase per pipeline step (``world``,
    ``rosters``, ``victims``, ``bot_pools``, ``planning``, ``monitor``,
    ``participants``, ``assemble``), and the attack count lands in the
    ``generate.attacks`` counter.

    >>> from repro import DatasetConfig, generate_dataset
    >>> ds = generate_dataset(DatasetConfig.tiny())
    >>> ds.n_attacks > 0
    True
    """
    reg = _obs_registry()
    with reg.span("generate"), reg.phases() as phase:
        ds = _generate(config, phase)
    reg.counter("generate.attacks").inc(ds.n_attacks)
    return ds


def _generate(config: DatasetConfig | None, phase) -> AttackDataset:
    """The generation pipeline (``phase(name)`` marks the stage spans)."""
    if config is None:
        config = DatasetConfig()
    phase("world")
    streams = SeededStreams(config.seed)
    window = config.window
    profiles = config.resolved_profiles()
    family_names = list(profiles.keys())
    family_index = {name: i for i, name in enumerate(family_names)}
    active_names = [n for n in family_names if profiles[n].active]

    world = World.build(streams)
    allocator = IPAllocator(world, streams)
    geoip = GeoIPService(world, allocator)
    assigner = SequentialAssigner(allocator)
    attacker_idx, attacker_w = _attacker_country_pool(world, config.n_attacker_countries)

    # --- rosters -----------------------------------------------------------
    phase("rosters")
    rosters: dict[str, BotnetRoster] = {}
    next_botnet_id = 1
    for name in family_names:
        roster = BotnetRoster.build(
            profiles[name], world, assigner,
            streams.stream(f"roster.{name}"), window, next_botnet_id,
        )
        rosters[name] = roster
        next_botnet_id += roster.n_botnets

    # --- victims -----------------------------------------------------------
    phase("victims")
    mega = config.resolved_mega()
    victims, target_pools = build_victims(
        profiles, world, assigner, geoip, streams.stream("victims"),
        config.n_victim_countries, mega_family=mega["family"],
    )
    # build_victims numbers owners by active-family position; remap global.
    active_to_global = np.array([family_index[n] for n in active_names], dtype=np.int16)
    owned = victims.owner_family_idx >= 0
    victims.owner_family_idx[owned] = active_to_global[victims.owner_family_idx[owned]]

    # --- bot pools ----------------------------------------------------------
    phase("bot_pools")
    pools: dict[str, BotPool] = {}
    for name in family_names:
        pools[name] = BotPool.build(
            profiles[name], world, assigner, geoip,
            streams.stream(f"bots.{name}"), window,
            attacker_idx, attacker_w, rosters[name].ids,
            home_share=config.home_share,
        )

    # --- planning ------------------------------------------------------------
    phase("planning")
    inter = config.resolved_inter_collabs()
    reserve: dict[str, int] = {}
    for fam_a, fam_b, count in inter:
        reserve[fam_a] = reserve.get(fam_a, 0) + count
        reserve[fam_b] = reserve.get(fam_b, 0) + count

    per_family: dict[str, list[PlannedAttack]] = {}
    next_group = 0
    for name in active_names:
        scheduler = FamilyScheduler(
            profiles[name], window, rosters[name],
            streams.stream(f"schedule.{name}"),
            reserve_for_inter=reserve.get(name, 0),
            mega_extra=mega["extra_attacks"] if name == mega["family"] else 0,
        )
        plan, next_group = scheduler.plan(next_group)
        per_family[name] = plan.attacks

    inter_attacks, next_group = _plan_inter_family(
        inter, profiles, target_pools, rosters, window,
        streams.stream("inter"), next_group,
    )
    for attack in inter_attacks:
        per_family[attack.family].append(attack)

    _assign_protocols(per_family, profiles, streams)
    for name in active_names:
        _assign_targets(per_family[name], target_pools[name], streams.stream(f"targets.{name}"))

    all_attacks = [a for name in active_names for a in per_family[name]]
    _clamp_to_window(all_attacks, window)
    _resolve_conflicts(all_attacks, window, streams.stream("conflicts"))

    # --- monitoring pipeline ---------------------------------------------------
    phase("monitor")
    botnet_to_family = {
        int(bid): name for name in family_names for bid in rosters[name].ids
    }
    labeler = FamilyLabeler(botnet_to_family)
    engine = SimulationEngine(start_time=window.start)
    collector = Collector(labeler, gap_seconds=config.gap_seconds)
    collector.attach(engine)
    _emit_pulses(all_attacks, engine, streams.stream("pulses"), config.pulse_split_prob)
    engine.run()
    segments = collector.segment()

    if len(segments) != len(all_attacks):
        raise GenerationError(
            f"segmentation produced {len(segments)} attacks from "
            f"{len(all_attacks)} planned (conflict resolution failed)"
        )
    seen_tags: set[int] = set()
    for seg in segments:
        if len(seg.tags) != 1:
            raise GenerationError(f"segment merged distinct attacks: tags={seg.tags}")
        seen_tags.add(seg.tags[0])
    if len(seen_tags) != len(all_attacks):
        raise GenerationError("segmentation lost attacks")

    # --- participants -------------------------------------------------------
    phase("participants")
    pool_offset: dict[str, int] = {}
    offset = 0
    for name in family_names:
        pool_offset[name] = offset
        offset += pools[name].n_bots

    n = len(segments)
    start = np.empty(n)
    end = np.empty(n)
    family_col = np.empty(n, dtype=np.int16)
    botnet_col = np.empty(n, dtype=np.int32)
    protocol_col = np.empty(n, dtype=np.int8)
    target_col = np.empty(n, dtype=np.int32)
    magnitude_col = np.empty(n, dtype=np.int32)
    group_col = np.empty(n, dtype=np.int32)
    kind_col = np.empty(n, dtype=np.int8)
    chain_col = np.empty(n, dtype=np.int32)
    sym_col = np.empty(n, dtype=bool)
    residual_col = np.empty(n, dtype=np.float64)
    parts: list[np.ndarray] = []
    offsets = np.zeros(n + 1, dtype=np.int64)

    part_rngs = {name: streams.stream(f"participants.{name}") for name in active_names}
    for i, seg in enumerate(segments):
        planned = all_attacks[seg.tags[0]]
        name = planned.family
        start[i] = seg.start
        end[i] = seg.end
        family_col[i] = family_index[name]
        botnet_col[i] = seg.botnet_id
        protocol_col[i] = int(planned.protocol)
        target_col[i] = planned.target_index
        group_col[i] = planned.collab_group
        kind_col[i] = planned.collab_kind
        chain_col[i] = planned.chain_id if planned.chain_id >= 0 else -1
        sym_col[i] = planned.symmetric
        residual_col[i] = planned.residual_km
        local = pools[name].sample_participants(
            part_rngs[name], seg.start, planned.magnitude,
            planned.symmetric, planned.residual_km,
        )
        parts.append(local + pool_offset[name])
        magnitude_col[i] = local.size
        offsets[i + 1] = offsets[i] + local.size

    participants = (
        np.concatenate(parts).astype(np.int64) if parts else np.zeros(0, dtype=np.int64)
    )

    # --- registries ------------------------------------------------------------
    phase("assemble")
    bots = BotRegistry(
        ip=np.concatenate([pools[n].ip for n in family_names]),
        lat=np.concatenate([pools[n].lat for n in family_names]),
        lon=np.concatenate([pools[n].lon for n in family_names]),
        country_idx=np.concatenate([pools[n].country_idx for n in family_names]),
        city_idx=np.concatenate([pools[n].city_idx for n in family_names]),
        org_idx=np.concatenate([pools[n].org_idx for n in family_names]),
        asn=np.concatenate([pools[n].asn for n in family_names]),
        family_idx=np.concatenate(
            [np.full(pools[n].n_bots, family_index[n], dtype=np.int16) for n in family_names]
        ),
        botnet_id=np.concatenate([pools[n].botnet_id for n in family_names]),
        recruit_ts=np.concatenate([pools[n].recruit_ts for n in family_names]),
    )
    botnet_records = [
        BotnetRecord(
            botnet_id=int(rosters[name].ids[j]),
            family=name,
            controller_ip=int(rosters[name].controller_ip[j]),
            first_seen=float(rosters[name].first_seen[j]),
            last_seen=float(rosters[name].last_seen[j]),
        )
        for name in family_names
        for j in range(rosters[name].n_botnets)
    ]

    return AttackDataset(
        window=window,
        world=world,
        families=family_names,
        active_families=active_names,
        bots=bots,
        victims=victims,
        botnets=botnet_records,
        start=start,
        end=end,
        family_idx=family_col,
        botnet_id=botnet_col,
        protocol=protocol_col,
        target_idx=target_col,
        magnitude=magnitude_col,
        part_offsets=offsets,
        participants=participants,
        truth_collab_group=group_col,
        truth_collab_kind=kind_col,
        truth_chain_id=chain_col,
        truth_symmetric=sym_col,
        truth_residual_km=residual_col,
    )
