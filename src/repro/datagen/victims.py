"""Victim registry construction.

Builds the global victim population (Table III: 9,026 target IPs in 84
countries) and each family's target pool: which victims it can attack,
with country weights matching Table V.  Victim organizations skew toward
hosting providers, cloud/data centers, registrars and backbone ASes —
the paper's organization-level finding (§IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..botnet.family import FamilyProfile
from ..core.dataset import VictimRegistry
from ..geo.ipam import SequentialAssigner
from ..geo.mapping import GeoIPService
from ..geo.world import World

__all__ = ["TargetPool", "build_victims", "victim_country_pool"]

#: Organization-type attractiveness for attackers (§IV-B2: web hosting,
#: cloud providers, data centers, registrars, backbones dominate).
_VICTIM_TYPE_BOOST = {
    "hosting": 5.0,
    "cloud": 4.0,
    "datacenter": 3.0,
    "registrar": 2.0,
    "backbone": 2.0,
    "isp": 1.0,
    "enterprise": 0.5,
}

#: Zipf exponent for repeat-target selection within a country.
_TARGET_ZIPF = 0.9


@dataclass
class TargetPool:
    """One family's victims, organised for per-attack sampling."""

    family: str
    target_indices: np.ndarray                       # global victim indices
    country_ids: np.ndarray                          # distinct country indices
    country_weights: np.ndarray                      # normalised
    by_country: dict[int, np.ndarray] = field(default_factory=dict)
    zipf_by_country: dict[int, np.ndarray] = field(default_factory=dict)
    mega_targets: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def n_targets(self) -> int:
        return self.target_indices.size

    def sample_target(self, rng: np.random.Generator) -> int:
        """Country-weighted, Zipf-within-country target draw."""
        c = int(self.country_ids[rng.choice(self.country_ids.size, p=self.country_weights)])
        targets = self.by_country[c]
        probs = self.zipf_by_country[c]
        return int(targets[rng.choice(targets.size, p=probs)])


def victim_country_pool(
    world: World, profiles: dict[str, FamilyProfile], n_countries: int
) -> list[int]:
    """The global victim-country list (84 countries in the paper).

    Starts from the union of every family's explicit target countries
    (the Table V top-5s), then pads with the highest-weight remaining
    countries until ``n_countries`` is reached.
    """
    pool: list[int] = []
    seen: set[int] = set()
    for profile in profiles.values():
        for cc, _w in profile.target_countries:
            idx = world.country_by_code(cc).index
            if idx not in seen:
                seen.add(idx)
                pool.append(idx)
    by_weight = sorted(world.countries, key=lambda c: -c.weight)
    for country in by_weight:
        if len(pool) >= n_countries:
            break
        if country.index not in seen:
            seen.add(country.index)
            pool.append(country.index)
    return pool[:n_countries]


def _family_country_plan(
    profile: FamilyProfile, world: World, pool: list[int], rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(country ids, weights, per-country target counts) for one family."""
    explicit = [(world.country_by_code(cc).index, w) for cc, w in profile.target_countries]
    explicit_ids = {c for c, _ in explicit}
    n_countries = min(profile.n_target_countries, profile.n_targets, len(pool))
    n_countries = max(n_countries, min(len(explicit), profile.n_targets))
    ids: list[int] = [c for c, _ in explicit][:n_countries]
    # Pad from the global pool, smallest Table V weight scaled down by rank.
    tail_base = min(w for _c, w in explicit) if explicit else 1.0
    weights: list[float] = [w for _c, w in explicit][: len(ids)]
    rank = 1
    for c in pool:
        if len(ids) >= n_countries:
            break
        if c in explicit_ids:
            continue
        ids.append(c)
        weights.append(tail_base * 0.8 / rank)
        rank += 1
    ids_arr = np.asarray(ids, dtype=np.int64)
    w_arr = np.asarray(weights, dtype=float)
    w_arr = w_arr / w_arr.sum()

    # Largest-remainder allocation of targets to countries, each >= 1.
    n = profile.n_targets
    raw = w_arr * (n - len(ids))
    counts = np.floor(raw).astype(np.int64) + 1
    short = n - int(counts.sum())
    if short > 0:
        order = np.argsort(-(raw - np.floor(raw)))
        for j in range(short):
            counts[order[j % order.size]] += 1
    elif short < 0:
        order = np.argsort(raw - np.floor(raw))
        k = 0
        while short < 0:
            j = order[k % order.size]
            if counts[j] > 1:
                counts[j] -= 1
                short += 1
            k += 1
    _ = rng
    return ids_arr, w_arr, counts


def _ensure_pool_coverage(
    plans: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]],
    explicit_by_family: dict[str, set[int]],
    pool: list[int],
) -> None:
    """Swap padded countries between families so the union covers the pool.

    Families pad their country lists from the front of the global pool,
    which can leave tail countries unattacked (the paper's 84 victim
    countries are a global property).  For every uncovered pool country,
    find a padded (non-Table-V) slot whose country appears in at least
    two families and retarget it, keeping every per-family country
    *count* exactly as planned.
    """
    coverage: dict[int, int] = {}
    for ids, _w, _c in plans.values():
        for c in ids:
            coverage[int(c)] = coverage.get(int(c), 0) + 1
    for country in pool:
        if coverage.get(country, 0) > 0:
            continue
        swapped = False
        # Prefer the family with the longest country list (most slack).
        for name in sorted(plans, key=lambda n: -plans[n][0].size):
            ids, _w, _counts = plans[name]
            explicit = explicit_by_family[name]
            for pos in range(ids.size - 1, -1, -1):
                c = int(ids[pos])
                if c in explicit or coverage.get(c, 0) < 2:
                    continue
                coverage[c] -= 1
                ids[pos] = country
                coverage[country] = 1
                swapped = True
                break
            if swapped:
                break
        # If no swap is possible (extreme scale-down), the country stays
        # uncovered; the measured victim-country count simply comes out
        # lower, which EXPERIMENTS.md reports.


def build_victims(
    profiles: dict[str, FamilyProfile],
    world: World,
    assigner: SequentialAssigner,
    geoip: GeoIPService,
    rng: np.random.Generator,
    n_victim_countries: int,
    mega_family: str = "",
    mega_min_targets: int = 45,
) -> tuple[VictimRegistry, dict[str, TargetPool]]:
    """Materialise the victim registry and per-family target pools.

    Victims are partitioned across active families (so the global unique
    count is exact); the ``mega_family`` (Dirtjumper) gets a contiguous
    batch of Russian targets inside a single hosting organization — the
    "same subnet" the 2012-08-30 surge hit.
    """
    pool_countries = victim_country_pool(world, profiles, n_victim_countries)
    family_names = [n for n, p in profiles.items() if p.active]

    ips: list[np.ndarray] = []
    lats: list[np.ndarray] = []
    lons: list[np.ndarray] = []
    country_col: list[np.ndarray] = []
    city_col: list[np.ndarray] = []
    org_col: list[np.ndarray] = []
    asn_col: list[np.ndarray] = []
    pools: dict[str, TargetPool] = {}
    cursor = 0

    def place_targets(country_index: int, n: int) -> np.ndarray:
        """Place ``n`` victims in one country; returns global indices."""
        nonlocal cursor
        org_ids, org_w = world.org_weights_of(country_index)
        boost = np.array(
            [_VICTIM_TYPE_BOOST.get(world.organizations[int(o)].org_type, 1.0) for o in org_ids]
        )
        w = org_w * boost
        w = w / w.sum()
        per_org = rng.multinomial(n, w)
        got_indices: list[np.ndarray] = []
        remainder = 0
        for pos in np.argsort(-per_org):
            want = int(per_org[pos]) + remainder
            remainder = 0
            if want == 0:
                continue
            org_index = int(org_ids[pos])
            got = min(want, assigner.remaining(org_index))
            if got < want:
                remainder = want - got
            if got == 0:
                continue
            batch = assigner.take(org_index, got)
            org = world.organizations[org_index]
            blats, blons = geoip.coords_for_city(org.city_index, batch)
            ips.append(batch)
            lats.append(blats)
            lons.append(blons)
            country_col.append(np.full(got, country_index, dtype=np.int16))
            city_col.append(np.full(got, org.city_index, dtype=np.int32))
            org_col.append(np.full(got, org_index, dtype=np.int32))
            asn_col.append(np.full(got, org.asn, dtype=np.int32))
            got_indices.append(np.arange(cursor, cursor + got, dtype=np.int64))
            cursor += got
        if remainder:
            raise RuntimeError(
                f"victim placement: country {country_index} out of address space"
            )
        return np.concatenate(got_indices) if got_indices else np.zeros(0, dtype=np.int64)

    plans: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    explicit_by_family: dict[str, set[int]] = {}
    for name in family_names:
        profile = profiles[name]
        plans[name] = _family_country_plan(profile, world, pool_countries, rng)
        explicit_by_family[name] = {
            world.country_by_code(cc).index for cc, _w in profile.target_countries
        }
    _ensure_pool_coverage(plans, explicit_by_family, pool_countries)

    for fam_pos, name in enumerate(family_names):
        ids_arr, w_arr, counts = plans[name]
        by_country: dict[int, np.ndarray] = {}
        fam_targets: list[np.ndarray] = []
        mega_targets = np.zeros(0, dtype=np.int64)
        for c, cnt in zip(ids_arr, counts):
            placed = place_targets(int(c), int(cnt))
            by_country[int(c)] = placed
            fam_targets.append(placed)
        all_targets = np.concatenate(fam_targets) if fam_targets else np.zeros(0, dtype=np.int64)

        zipf = {
            int(c): (lambda t: ((1.0 / np.arange(1, t.size + 1) ** _TARGET_ZIPF)
                                / (1.0 / np.arange(1, t.size + 1) ** _TARGET_ZIPF).sum()))(tgts)
            for c, tgts in by_country.items()
            if tgts.size
        }
        pools[name] = TargetPool(
            family=name,
            target_indices=all_targets,
            country_ids=ids_arr,
            country_weights=w_arr,
            by_country={int(c): t for c, t in by_country.items()},
            zipf_by_country=zipf,
            mega_targets=mega_targets,
        )

    owner = np.full(cursor, -1, dtype=np.int16)
    for fam_pos, name in enumerate(family_names):
        owner[pools[name].target_indices] = fam_pos

    org_all = np.concatenate(org_col) if org_col else np.zeros(0, dtype=np.int32)
    country_all = (
        np.concatenate(country_col) if country_col else np.zeros(0, dtype=np.int16)
    )
    if mega_family in pools and world.has_country("RU"):
        # The 2012-08-30 surge hit targets "in the same subnet": pick the
        # mega family's largest single-organization group of Russian
        # victims.
        ru = world.country_by_code("RU").index
        fam_targets_all = pools[mega_family].target_indices
        ru_mask = country_all[fam_targets_all] == ru
        ru_targets = fam_targets_all[ru_mask]
        if ru_targets.size:
            orgs, counts_per_org = np.unique(org_all[ru_targets], return_counts=True)
            best_org = orgs[int(np.argmax(counts_per_org))]
            group = ru_targets[org_all[ru_targets] == best_org]
            pools[mega_family].mega_targets = group[:mega_min_targets]

    registry = VictimRegistry(
        ip=np.concatenate(ips) if ips else np.zeros(0, dtype=np.uint64),
        lat=np.concatenate(lats) if lats else np.zeros(0),
        lon=np.concatenate(lons) if lons else np.zeros(0),
        country_idx=country_all,
        city_idx=np.concatenate(city_col) if city_col else np.zeros(0, dtype=np.int32),
        org_idx=org_all,
        asn=np.concatenate(asn_col) if asn_col else np.zeros(0, dtype=np.int32),
        owner_family_idx=owner,
    )
    return registry, pools
