"""Defense extensions: the paper's "insights into defenses", made runnable.

The paper closes by planning to "leverage these findings to design more
effective defense schemes"; this package implements the obvious first
steps as measurable policies:

* :mod:`blacklist` — source-country / source-IP blacklists trained on
  history, scored on future traffic (§IV-A affinity);
* :mod:`detection` — detection-window analysis around the ~4 hour
  duration knee (§III-C);
* :mod:`provisioning` — scrubbing capacity scheduled from next-attack
  predictions (abstract finding 2);
* :mod:`attribution` — sensitivity of the collaboration split to family
  mislabeling (§II-B's labeling-accuracy assumption).
"""

from .attribution import NoiseImpact, labeling_sensitivity
from .blacklist import BlacklistEvaluation, CountryBlacklist, IPBlacklist
from .detection import DetectionOutcome, evaluate_detection_window, sweep_detection_windows
from .provisioning import ProvisioningResult, backtest_provisioning

__all__ = [
    "NoiseImpact",
    "labeling_sensitivity",
    "BlacklistEvaluation",
    "CountryBlacklist",
    "IPBlacklist",
    "DetectionOutcome",
    "evaluate_detection_window",
    "sweep_detection_windows",
    "ProvisioningResult",
    "backtest_provisioning",
]
