"""Scrubbing-capacity provisioning from next-attack predictions.

Abstract finding (2): inter-attack intervals on repeat targets are
predictable enough to forecast the *start time of the next attack*.
This module turns that into a provisioning policy — schedule scrubbing
capacity in a window around each predicted start — and back-tests it:
train on the first part of the window, score against the attacks that
actually arrived later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataset import AttackDataset

__all__ = ["ProvisioningResult", "backtest_provisioning"]


@dataclass(frozen=True)
class ProvisioningResult:
    """Back-test outcome of prediction-driven provisioning."""

    n_targets: int
    n_predictions: int
    hits: int                   # next attack fell inside the scheduled window
    mean_abs_error: float       # |predicted - actual| seconds, over scored targets
    window_seconds: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.n_predictions if self.n_predictions else 0.0


def backtest_provisioning(
    ds: AttackDataset,
    train_fraction: float = 0.7,
    window_factor: float = 1.0,
    min_history: int = 5,
) -> ProvisioningResult:
    """Back-test next-attack scheduling over every repeat target.

    For each target with at least ``min_history`` attacks before the
    split point, predict the next start as ``last + mean interval`` and
    schedule a window of ``window_factor``× the interval std around it;
    a hit means the target's next real attack starts inside the window.
    """
    if not 0.1 <= train_fraction <= 0.95:
        raise ValueError(f"train_fraction out of range: {train_fraction}")
    split = ds.window.start + train_fraction * ds.window.duration
    targets = np.unique(ds.target_idx)
    n_predictions = 0
    hits = 0
    errors: list[float] = []
    for target in targets:
        starts = np.sort(ds.start[ds.target_idx == target])
        history = starts[starts < split]
        future = starts[starts >= split]
        if history.size < min_history or future.size == 0:
            continue
        intervals = np.diff(history)
        predicted = history[-1] + float(np.mean(intervals))
        width = window_factor * float(np.std(intervals)) + 3600.0
        actual = float(future[0])
        n_predictions += 1
        errors.append(abs(predicted - actual))
        if abs(predicted - actual) <= width:
            hits += 1
    return ProvisioningResult(
        n_targets=int(targets.size),
        n_predictions=n_predictions,
        hits=hits,
        mean_abs_error=float(np.mean(errors)) if errors else 0.0,
        window_seconds=float(window_factor),
    )
