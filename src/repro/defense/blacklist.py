"""Blacklist defenses built from observed attack history.

The paper's §IV insights: attack sources are sticky — bots come from a
fixed set of countries (Fig 8) and reuse the same IPs across attacks.
These classes build country- or IP-level blacklists from everything
observed *before* a cutoff time and measure how much of the traffic
*after* the cutoff they would have blocked — the quantitative version of
"country-level prioritization of disinfection and botnet takedowns".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataset import AttackDataset

__all__ = ["BlacklistEvaluation", "CountryBlacklist", "IPBlacklist"]


@dataclass(frozen=True)
class BlacklistEvaluation:
    """Forward-looking coverage of a blacklist trained on history."""

    cutoff: float
    n_entries: int
    future_attacks: int
    future_participations: int
    blocked_participations: int

    @property
    def coverage(self) -> float:
        """Fraction of post-cutoff bot participations blocked."""
        if self.future_participations == 0:
            return 0.0
        return self.blocked_participations / self.future_participations


class CountryBlacklist:
    """Block attack traffic by source country.

    ``fit`` collects every country whose bots attacked (optionally one
    family) before the cutoff; ``evaluate`` measures the fraction of
    later participations originating from those countries.
    """

    def __init__(self) -> None:
        self._countries: set[int] = set()
        self._fitted = False

    @property
    def countries(self) -> set[int]:
        return set(self._countries)

    def fit(self, ds: AttackDataset, cutoff: float, family: str | None = None) -> "CountryBlacklist":
        """Collect the source countries of every pre-``cutoff`` attack."""
        idx = self._history(ds, cutoff, family)
        for i in idx:
            bots = ds.participants_of(int(i))
            self._countries.update(int(c) for c in np.unique(ds.bots.country_idx[bots]))
        self._fitted = True
        return self

    def blocks(self, ds: AttackDataset, bot_indices: np.ndarray) -> np.ndarray:
        """Boolean mask of which participations are blocked."""
        self._check_fitted()
        if not self._countries:
            return np.zeros(bot_indices.size, dtype=bool)
        return np.isin(ds.bots.country_idx[bot_indices], list(self._countries))

    def evaluate(
        self, ds: AttackDataset, cutoff: float, family: str | None = None
    ) -> BlacklistEvaluation:
        """Score the list against every attack at or after ``cutoff``."""
        self._check_fitted()
        return _evaluate(self, ds, cutoff, family, n_entries=len(self._countries))

    @staticmethod
    def _history(ds: AttackDataset, cutoff: float, family: str | None) -> np.ndarray:
        idx = np.flatnonzero(ds.start < cutoff)
        if family is not None:
            idx = idx[ds.family_idx[idx] == ds.family_id(family)]
        return idx

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("blacklist not fitted; call fit() first")


class IPBlacklist:
    """Block attack traffic by exact source IP (bot index).

    Stricter than the country list: only bots seen attacking before the
    cutoff are blocked.  Coverage then measures *bot reuse* across
    attacks, which the paper's no-spoofing argument makes meaningful.
    """

    def __init__(self) -> None:
        self._bots: np.ndarray | None = None

    @property
    def n_entries(self) -> int:
        return 0 if self._bots is None else int(self._bots.size)

    def fit(self, ds: AttackDataset, cutoff: float, family: str | None = None) -> "IPBlacklist":
        """Collect every bot seen attacking before ``cutoff``."""
        idx = CountryBlacklist._history(ds, cutoff, family)
        if idx.size:
            parts = np.concatenate([ds.participants_of(int(i)) for i in idx])
            self._bots = np.unique(parts)
        else:
            self._bots = np.zeros(0, dtype=np.int64)
        return self

    def blocks(self, ds: AttackDataset, bot_indices: np.ndarray) -> np.ndarray:
        """Boolean mask of which participations are blocked."""
        if self._bots is None:
            raise RuntimeError("blacklist not fitted; call fit() first")
        return np.isin(bot_indices, self._bots)

    def evaluate(
        self, ds: AttackDataset, cutoff: float, family: str | None = None
    ) -> BlacklistEvaluation:
        """Score the list against every attack at or after ``cutoff``."""
        if self._bots is None:
            raise RuntimeError("blacklist not fitted; call fit() first")
        return _evaluate(self, ds, cutoff, family, n_entries=self.n_entries)


def _evaluate(
    blacklist, ds: AttackDataset, cutoff: float, family: str | None, n_entries: int
) -> BlacklistEvaluation:
    future = np.flatnonzero(ds.start >= cutoff)
    if family is not None:
        future = future[ds.family_idx[future] == ds.family_id(family)]
    total = 0
    blocked = 0
    for i in future:
        bots = ds.participants_of(int(i))
        total += bots.size
        blocked += int(blacklist.blocks(ds, bots).sum())
    return BlacklistEvaluation(
        cutoff=float(cutoff),
        n_entries=n_entries,
        future_attacks=int(future.size),
        future_participations=total,
        blocked_participations=blocked,
    )
