"""Detection-window analysis (§III-C's four-hour insight).

The paper argues that with 80 % of attacks ending within ~4 hours, only
*automatic* detection can respond in time.  This module quantifies that:
given a time-to-detect, what fraction of attacks is still running when
the detector fires, and what fraction of the total attack exposure
(attack-seconds) can still be mitigated?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataset import AttackDataset

__all__ = ["DetectionOutcome", "evaluate_detection_window", "sweep_detection_windows"]


@dataclass(frozen=True)
class DetectionOutcome:
    """Effect of a detector that needs ``time_to_detect`` seconds."""

    time_to_detect: float
    n_attacks: int
    caught_fraction: float          # attacks still running at detection time
    exposure_mitigated: float       # fraction of attack-seconds after detection
    median_remaining: float         # seconds of attack left when caught (median)


def evaluate_detection_window(
    ds: AttackDataset, time_to_detect: float, family: str | None = None
) -> DetectionOutcome:
    """Evaluate one time-to-detect against the measured durations."""
    if time_to_detect < 0:
        raise ValueError(f"time_to_detect must be non-negative: {time_to_detect}")
    durations = ds.durations if family is None else (
        ds.durations[ds.attacks_of(family)]
    )
    if durations.size == 0:
        raise ValueError("no attacks to evaluate")
    caught = durations > time_to_detect
    remaining = np.maximum(durations - time_to_detect, 0.0)
    total_exposure = float(durations.sum())
    return DetectionOutcome(
        time_to_detect=float(time_to_detect),
        n_attacks=int(durations.size),
        caught_fraction=float(np.mean(caught)),
        exposure_mitigated=float(remaining.sum() / total_exposure) if total_exposure else 0.0,
        median_remaining=float(np.median(remaining[caught])) if caught.any() else 0.0,
    )


def sweep_detection_windows(
    ds: AttackDataset, windows=None, family: str | None = None
) -> list[DetectionOutcome]:
    """Evaluate a sweep of time-to-detect values (default: 1 min .. 8 h).

    The knee of the resulting curve is the paper's point: past ~4 hours
    the caught fraction collapses, so semi-automatic response is too slow.
    """
    if windows is None:
        windows = [60.0, 300.0, 900.0, 1800.0, 3600.0, 4 * 3600.0, 8 * 3600.0]
    return [evaluate_detection_window(ds, w, family) for w in windows]
