"""Attribution-noise sensitivity of the collaboration analyses.

§II-B argues the likelihood of false family labels is very small; this
module quantifies what would happen if it were not.  It relabels every
attack through a noisy :class:`~repro.monitor.labeling.FamilyLabeler`
and re-runs the Table VI accounting, showing how quickly the intra- vs
inter-family split degrades as labels flip — inter-family events are the
most sensitive artefact, because one flipped label turns an intra-family
event into a spurious inter-family one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.collaboration import detect_collaborations
from ..core.dataset import AttackDataset
from ..monitor.labeling import FamilyLabeler

__all__ = ["NoiseImpact", "labeling_sensitivity"]


@dataclass(frozen=True)
class NoiseImpact:
    """Table VI accounting under one label-noise level."""

    error_rate: float
    intra_events: int
    inter_events: int

    @property
    def inter_fraction(self) -> float:
        total = self.intra_events + self.inter_events
        return self.inter_events / total if total else 0.0


def _relabelled_families(ds: AttackDataset, labeler: FamilyLabeler) -> np.ndarray:
    """Per-attack family index under a (possibly noisy) labeler."""
    name_to_idx = {name: i for i, name in enumerate(ds.families)}
    out = np.empty(ds.n_attacks, dtype=np.int16)
    cache: dict[int, int] = {}
    for i in range(ds.n_attacks):
        botnet = int(ds.botnet_id[i])
        if botnet not in cache:
            cache[botnet] = name_to_idx[labeler.label(botnet)]
        out[i] = cache[botnet]
    return out


def labeling_sensitivity(
    ds: AttackDataset,
    error_rates=(0.0, 0.01, 0.05, 0.10, 0.25),
    seed: int = 0,
) -> list[NoiseImpact]:
    """Re-run the collaboration split under increasing label noise.

    Detection itself is label-free (same target + distinct botnet ids);
    only the intra/inter classification depends on attribution, so the
    events are detected once and re-classified per noise level.
    """
    base_labeler = FamilyLabeler(
        {rec.botnet_id: rec.family for rec in ds.botnets}
    )
    events = detect_collaborations(ds)
    rng = np.random.default_rng(seed)
    results: list[NoiseImpact] = []
    for rate in error_rates:
        labeler = base_labeler.with_noise(rng, float(rate))
        intra = 0
        inter = 0
        for event in events:
            families = {labeler.label(b) for b in event.botnet_ids}
            if len(families) > 1:
                inter += 1
            else:
                intra += 1
        results.append(NoiseImpact(error_rate=float(rate), intra_events=intra, inter_events=inter))
    return results
