"""Hourly botnet snapshots (§II-B).

The vendor emits, per family and per hour, the set of bots seen in the
*previous 24 hours*.  Materialising ~5,000 hourly reports × 23 families
would be wasteful, so snapshots are computed lazily from the attack
participations with a sliding-window sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..simulation.clock import SECONDS_PER_HOUR, ObservationWindow

__all__ = ["Snapshot", "iter_hourly_snapshots"]

LOOKBACK_SECONDS = 24 * SECONDS_PER_HOUR


@dataclass(frozen=True)
class Snapshot:
    """One hourly report: bots of a family active in the last 24 hours."""

    family: str
    timestamp: float
    bot_indices: np.ndarray

    @property
    def n_bots(self) -> int:
        return self.bot_indices.size


def iter_hourly_snapshots(
    attack_starts: np.ndarray,
    participant_offsets: np.ndarray,
    participants: np.ndarray,
    window: ObservationWindow,
    family: str = "",
    skip_empty: bool = True,
) -> Iterator[Snapshot]:
    """Yield hourly 24-hour-cumulative snapshots of attack participants.

    ``attack_starts`` must be sorted ascending; ``participant_offsets``
    (length ``n+1``) and ``participants`` are the CSR layout of per-attack
    bot indices.  Each snapshot at hour boundary ``t`` contains the union
    of participants of attacks that *started* in ``(t - 24h, t]``.
    """
    starts = np.asarray(attack_starts, dtype=float)
    if starts.size > 1 and np.any(np.diff(starts) < 0):
        raise ValueError("attack_starts must be sorted ascending")
    offsets = np.asarray(participant_offsets)
    if offsets.size != starts.size + 1:
        raise ValueError("participant_offsets must have length len(attack_starts) + 1")
    for hour in range(1, window.n_hours + 1):
        t = window.start + hour * SECONDS_PER_HOUR
        lo = int(np.searchsorted(starts, t - LOOKBACK_SECONDS, side="right"))
        hi = int(np.searchsorted(starts, t, side="right"))
        if hi <= lo:
            if skip_empty:
                continue
            bots = np.zeros(0, dtype=participants.dtype)
        else:
            bots = np.unique(participants[offsets[lo] : offsets[hi]])
        yield Snapshot(family=family, timestamp=float(t), bot_indices=bots)
