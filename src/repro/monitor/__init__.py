"""Monitoring-service substrate: schemas, collection, segmentation, labeling."""

from .collector import Collector
from .labeling import FamilyLabeler
from .reports import read_hourly_reports, write_hourly_reports
from .schemas import AttackPulse, BotnetRecord, BotRecord, DDoSAttackRecord, Protocol
from .segmentation import DEFAULT_GAP_SECONDS, SegmentedAttack, segment_pulses
from .snapshots import LOOKBACK_SECONDS, Snapshot, iter_hourly_snapshots

__all__ = [
    "Collector",
    "FamilyLabeler",
    "read_hourly_reports",
    "write_hourly_reports",
    "AttackPulse",
    "BotnetRecord",
    "BotRecord",
    "DDoSAttackRecord",
    "Protocol",
    "DEFAULT_GAP_SECONDS",
    "SegmentedAttack",
    "segment_pulses",
    "LOOKBACK_SECONDS",
    "Snapshot",
    "iter_hourly_snapshots",
]
