"""Attack segmentation: the paper's 60-second rule (§II-D).

The monitoring systems log raw traffic bursts ("pulses").  Bursts from
the same botnet against the same target whose gap is at most
``gap_seconds`` (60 s in the paper) belong to the same DDoS attack;
a longer gap starts a new attack.  The paper chooses 60 s because fewer
than 10 % of attacks are shorter than that, and a small threshold keeps
collaboration detection from merging genuinely distinct attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schemas import AttackPulse, Protocol

__all__ = [
    "SegmentedAttack",
    "segment_pulses",
    "segment_with_members",
    "DEFAULT_GAP_SECONDS",
]

DEFAULT_GAP_SECONDS = 60.0


@dataclass
class SegmentedAttack:
    """A merged run of pulses: one verified DDoS attack."""

    botnet_id: int
    family: str
    target_index: int
    start: float
    end: float
    protocol: Protocol
    pulse_count: int = 1
    tags: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


def _merge_group(
    botnet_id: int,
    target_index: int,
    group: list[AttackPulse],
    gap_seconds: float,
) -> list[tuple[SegmentedAttack, list[AttackPulse]]]:
    """Merge one (botnet, target) pulse group; keep each attack's members.

    The member lists let an incremental caller (``Collector.drain_segments``)
    put the pulses of a still-open attack back into its buffer.
    """
    group.sort(key=lambda p: (p.start, p.end))
    merged: list[tuple[SegmentedAttack, list[AttackPulse]]] = []
    current: SegmentedAttack | None = None
    members: list[AttackPulse] = []
    for pulse in group:
        if current is not None and pulse.start <= current.end + gap_seconds:
            current.end = max(current.end, pulse.end)
            current.pulse_count += 1
            if pulse.attack_tag not in current.tags:
                current.tags.append(pulse.attack_tag)
            members.append(pulse)
        else:
            current = SegmentedAttack(
                botnet_id=botnet_id,
                family=pulse.family,
                target_index=target_index,
                start=pulse.start,
                end=pulse.end,
                protocol=pulse.protocol,
                pulse_count=1,
                tags=[pulse.attack_tag],
            )
            members = [pulse]
            merged.append((current, members))
    return merged


def segment_with_members(
    pulses: list[AttackPulse], gap_seconds: float = DEFAULT_GAP_SECONDS
) -> list[tuple[SegmentedAttack, list[AttackPulse]]]:
    """Like :func:`segment_pulses`, but pairs each attack with its pulses."""
    if gap_seconds < 0:
        raise ValueError(f"gap_seconds must be non-negative, got {gap_seconds}")
    by_key: dict[tuple[int, int], list[AttackPulse]] = {}
    for pulse in pulses:
        by_key.setdefault((pulse.botnet_id, pulse.target_index), []).append(pulse)

    pairs: list[tuple[SegmentedAttack, list[AttackPulse]]] = []
    for (botnet_id, target_index), group in by_key.items():
        pairs.extend(_merge_group(botnet_id, target_index, group, gap_seconds))
    pairs.sort(key=lambda pair: (pair[0].start, pair[0].botnet_id, pair[0].target_index))
    return pairs


def segment_pulses(
    pulses: list[AttackPulse], gap_seconds: float = DEFAULT_GAP_SECONDS
) -> list[SegmentedAttack]:
    """Merge raw pulses into attacks using the 60-second rule.

    Pulses are grouped by ``(botnet_id, target_index)`` and scanned in
    start order; a pulse starting within ``gap_seconds`` of the running
    attack's end (or overlapping it) extends that attack, otherwise it
    opens a new one.  The output is sorted by ``(start, botnet_id,
    target_index)``.
    """
    return [attack for attack, _ in segment_with_members(pulses, gap_seconds)]
