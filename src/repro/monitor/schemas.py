"""The three data schemas of the monitoring service (§II-A, Table I).

The vendor dataset consists of a *Botlist* (bots: IP + BGP + GeoIP), a
*Botnetlist* (botnets: type, infected hosts, controller) and a
*DDoSattack* list (one record per verified attack).  These dataclasses
are the row-level view; :class:`repro.core.dataset.AttackDataset` stores
the same information columnar for the analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..geo.ipam import ip_to_str

__all__ = ["Protocol", "BotRecord", "BotnetRecord", "DDoSAttackRecord", "AttackPulse"]


class Protocol(enum.IntEnum):
    """Attack category: the transport/protocol the attack rides on (§II-D).

    ``UNDETERMINED`` means the attack used multiple protocols and no single
    one could be assigned; ``UNKNOWN`` means the traffic type could not be
    established at all.

    >>> from repro import Protocol
    >>> Protocol.from_name("udp")
    <Protocol.UDP: 2>
    >>> int(Protocol.HTTP)
    0
    """

    HTTP = 0
    TCP = 1
    UDP = 2
    UNDETERMINED = 3
    ICMP = 4
    UNKNOWN = 5
    SYN = 6

    @classmethod
    def from_name(cls, name: str) -> "Protocol":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown protocol name: {name!r}") from None


@dataclass(frozen=True)
class BotRecord:
    """One Botlist row: a bot with its IP, BGP and GeoIP attributes."""

    bot_index: int
    ip: int
    botnet_id: int
    family: str
    country_code: str
    city: str
    organization: str
    asn: int
    lat: float
    lon: float
    recruited_at: float
    left_at: float

    @property
    def ip_str(self) -> str:
        return ip_to_str(self.ip)

    def active_at(self, ts: float) -> bool:
        """True while the bot is enrolled in the botnet at ``ts``."""
        return self.recruited_at <= ts < self.left_at


@dataclass(frozen=True)
class BotnetRecord:
    """One Botnetlist row: a botnet (generation) of a malware family."""

    botnet_id: int
    family: str
    controller_ip: int
    first_seen: float
    last_seen: float

    @property
    def controller_ip_str(self) -> str:
        return ip_to_str(self.controller_ip)


@dataclass(frozen=True)
class DDoSAttackRecord:
    """One DDoSattack row (Table I): a verified attack on one target.

    ``magnitude`` is the number of distinct bot IPs involved — the paper's
    proxy for attack size (§III-B justifies why spoofing can be ruled out).
    """

    ddos_id: int
    botnet_id: int
    family: str
    category: Protocol
    target_ip: int
    timestamp: float
    end_time: float
    asn: int
    country_code: str
    city: str
    organization: str
    lat: float
    lon: float
    magnitude: int

    @property
    def target_ip_str(self) -> str:
        return ip_to_str(self.target_ip)

    @property
    def duration(self) -> float:
        return self.end_time - self.timestamp

    def overlaps(self, other: "DDoSAttackRecord") -> bool:
        """True if the two attacks' active intervals intersect."""
        return self.timestamp < other.end_time and other.timestamp < self.end_time


@dataclass(frozen=True)
class AttackPulse:
    """A raw burst of attack traffic, before segmentation (§II-D).

    The monitoring systems log traffic bursts; pulses from the same botnet
    against the same target with gaps of at most 60 seconds are merged
    into one DDoS attack record by :mod:`repro.monitor.segmentation`.
    """

    botnet_id: int
    family: str
    target_index: int
    start: float
    end: float
    protocol: Protocol
    attack_tag: int  # generator-side identity, used only for validation

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"pulse ends before it starts: {self}")
