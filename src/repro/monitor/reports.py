"""Hourly report files: the vendor's raw deliverable (§II-B).

The monitoring service emits "24 hourly reports per day for each botnet
family", each listing the bots seen in the trailing 24 hours.  This
module materialises that artifact as JSON-lines files — one line per
snapshot — and reads it back, so downstream tooling that expects the
vendor format can be exercised end to end.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .snapshots import Snapshot, iter_hourly_snapshots

if TYPE_CHECKING:  # avoid a monitor <-> core import cycle at runtime
    from ..core.dataset import AttackDataset

__all__ = ["write_hourly_reports", "read_hourly_reports"]


def write_hourly_reports(
    ds: "AttackDataset",
    out_dir: str | Path,
    families: list[str] | None = None,
    max_hours: int | None = None,
    include_ips: bool = False,
) -> dict[str, int]:
    """Write one JSONL report stream per family.

    Each line carries the snapshot timestamp, the bot count, the distinct
    source countries, and (``include_ips=True``) the dotted-quad bot IPs.
    ``max_hours`` caps the number of snapshots per family (the full
    window has ~5,000).  Returns ``{family: snapshots written}``.
    """
    from ..geo.ipam import ip_to_str

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if families is None:
        families = [f for f in ds.active_families if ds.attacks_of(f).size]
    written: dict[str, int] = {}
    for family in families:
        idx = ds.attacks_of(family)
        if idx.size == 0:
            written[family] = 0
            continue
        counts = (ds.part_offsets[idx + 1] - ds.part_offsets[idx]).astype(np.int64)
        flat = np.concatenate([ds.participants_of(int(i)) for i in idx])
        offsets = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        n = 0
        path = out / f"{family}.jsonl"
        with path.open("w") as fh:
            for snap in iter_hourly_snapshots(
                ds.start[idx], offsets, flat, ds.window, family
            ):
                if max_hours is not None and n >= max_hours:
                    break
                countries = np.unique(ds.bots.country_idx[snap.bot_indices])
                record = {
                    "family": family,
                    "timestamp": snap.timestamp,
                    "n_bots": snap.n_bots,
                    "countries": [
                        ds.world.countries[int(c)].code for c in countries
                    ],
                }
                if include_ips:
                    record["bot_ips"] = [
                        ip_to_str(int(ds.bots.ip[b])) for b in snap.bot_indices
                    ]
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
                n += 1
        written[family] = n
    return written


def read_hourly_reports(path: str | Path) -> list[Snapshot]:
    """Read one family's JSONL report stream back into snapshots.

    Bot identities are not recoverable from count-only reports; the
    returned snapshots carry empty index arrays and the recorded counts
    are exposed via ``n_bots`` consistency checks in the caller.
    """
    path = Path(path)
    snapshots: list[Snapshot] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            snapshots.append(
                Snapshot(
                    family=record["family"],
                    timestamp=float(record["timestamp"]),
                    bot_indices=np.arange(int(record["n_bots"]), dtype=np.int64)
                    if record.get("n_bots")
                    else np.zeros(0, dtype=np.int64),
                )
            )
    return snapshots
