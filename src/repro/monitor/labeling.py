"""Family attribution: mapping botnet ids to malware families.

In the real pipeline this step is reverse engineering plus threat
intelligence (§II-B); the paper treats labels as ground truth with very
low error.  Our labeler is built from the botnet rosters and can inject a
configurable mislabel rate for robustness experiments (how sensitive the
analyses are to attribution noise).
"""

from __future__ import annotations

import numpy as np

__all__ = ["FamilyLabeler"]


class FamilyLabeler:
    """Resolve a botnet id to its family name."""

    def __init__(self, botnet_to_family: dict[int, str]):
        if not botnet_to_family:
            raise ValueError("labeler needs at least one botnet")
        self._map = dict(botnet_to_family)
        self._families = sorted(set(self._map.values()))

    @property
    def families(self) -> list[str]:
        return list(self._families)

    @property
    def n_botnets(self) -> int:
        return len(self._map)

    def label(self, botnet_id: int) -> str:
        """Family name of ``botnet_id`` (raises ``KeyError`` if unknown)."""
        try:
            return self._map[botnet_id]
        except KeyError:
            raise KeyError(f"unknown botnet id: {botnet_id}") from None

    def with_noise(self, rng: np.random.Generator, error_rate: float) -> "FamilyLabeler":
        """A copy where each label is swapped to a random other family
        with probability ``error_rate`` — models attribution mistakes."""
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate out of [0, 1]: {error_rate}")
        if len(self._families) < 2 or error_rate == 0.0:
            return FamilyLabeler(self._map)
        noisy = {}
        for botnet_id, family in self._map.items():
            if rng.random() < error_rate:
                others = [f for f in self._families if f != family]
                family = others[int(rng.integers(0, len(others)))]
            noisy[botnet_id] = family
        return FamilyLabeler(noisy)
