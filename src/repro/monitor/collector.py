"""The monitoring collector: consumes the simulation's event stream.

Mirrors the vendor pipeline of §II-B: attack pulses arrive as events on
the discrete-event engine (standing in for traffic logs from cooperating
ISPs), are verified against the labeler (family attribution), buffered,
and segmented into DDoS attack records with the 60-second rule.
"""

from __future__ import annotations

from ..simulation.engine import SimulationEngine
from ..simulation.events import Event, EventKind
from .labeling import FamilyLabeler
from .schemas import AttackPulse
from .segmentation import (
    DEFAULT_GAP_SECONDS,
    SegmentedAttack,
    segment_pulses,
    segment_with_members,
)

__all__ = ["Collector"]


class Collector:
    """Collects attack pulses from an engine run and segments them.

    >>> collector = Collector(labeler)
    >>> collector.attach(engine)
    >>> engine.run()
    >>> records = collector.segment()
    """

    def __init__(self, labeler: FamilyLabeler, gap_seconds: float = DEFAULT_GAP_SECONDS):
        self._labeler = labeler
        self._gap_seconds = gap_seconds
        self._pulses: list[AttackPulse] = []
        self._dropped = 0

    @property
    def n_pulses(self) -> int:
        return len(self._pulses)

    @property
    def n_dropped(self) -> int:
        """Pulses discarded because the botnet could not be attributed."""
        return self._dropped

    def attach(self, engine: SimulationEngine) -> None:
        """Subscribe to the engine's ATTACK_PULSE events."""
        engine.on(EventKind.ATTACK_PULSE, self._on_pulse)

    def _on_pulse(self, event: Event) -> None:
        pulse = event.payload
        if not isinstance(pulse, AttackPulse):
            raise TypeError(f"ATTACK_PULSE event carries {type(pulse).__name__}")
        # Verification step: an attack is only recorded when the source
        # botnet is attributed to a known family (the paper's "verified
        # alarms" versus raw anomaly alarms, §II-E).
        try:
            family = self._labeler.label(pulse.botnet_id)
        except KeyError:
            self._dropped += 1
            return
        if family != pulse.family:
            # Attribution disagrees with the ground-truth tag; keep the
            # labeler's answer — that is what the real pipeline would do.
            pulse = AttackPulse(
                botnet_id=pulse.botnet_id,
                family=family,
                target_index=pulse.target_index,
                start=pulse.start,
                end=pulse.end,
                protocol=pulse.protocol,
                attack_tag=pulse.attack_tag,
            )
        self._pulses.append(pulse)

    def ingest(self, pulses) -> None:
        """Feed pulses directly (without an engine), e.g. from a log replay."""
        for pulse in pulses:
            self._on_pulse(Event(time=pulse.start, kind=EventKind.ATTACK_PULSE, seq=0, payload=pulse))

    def segment(self) -> list[SegmentedAttack]:
        """Run the 60-second segmentation over everything collected."""
        return segment_pulses(self._pulses, self._gap_seconds)

    def drain_segments(self, up_to: float | None = None) -> list[SegmentedAttack]:
        """Hand off the attacks that are certainly finished by ``up_to``.

        This is the incremental counterpart of :meth:`segment`, meant for
        feeding a :class:`~repro.stream.builder.StreamingDataset` while a
        run is still in progress.  An attack is *closed* iff
        ``attack.end + gap_seconds < up_to``: no pulse observed at or
        after ``up_to`` could still extend it under the 60-second rule.
        Closed attacks are returned (in ``segment()`` order) and their
        pulses leave the buffer; every pulse of a still-open attack is
        retained so a later drain re-segments it with its continuation.
        ``up_to=None`` flushes everything.

        Draining in any sequence of cut points yields exactly the attacks
        ``segment()`` would have produced over the full pulse log.
        """
        pairs = segment_with_members(self._pulses, self._gap_seconds)
        closed: list[SegmentedAttack] = []
        retained: list[AttackPulse] = []
        for attack, members in pairs:
            if up_to is None or attack.end + self._gap_seconds < up_to:
                closed.append(attack)
            else:
                retained.extend(members)
        self._pulses = retained
        return closed
