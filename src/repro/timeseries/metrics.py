"""Forecast-quality metrics used by the prediction experiments (Table IV).

The paper compares the predicted and ground-truth geolocation-distance
series by mean, standard deviation and cosine similarity, and plots the
per-point error rate over time (Figs 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "cosine_similarity",
    "mean_absolute_error",
    "root_mean_squared_error",
    "error_rates",
    "ForecastComparison",
    "compare_forecast",
]


def _paired(a, b) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size == 0:
        raise ValueError("empty inputs")
    return x, y


def cosine_similarity(a, b) -> float:
    """Cosine similarity between two equal-length vectors.

    Returns 0.0 when either vector is all-zero (orthogonal by convention),
    and 1.0 when both are all-zero (identical).
    """
    x, y = _paired(a, b)
    nx = float(np.linalg.norm(x))
    ny = float(np.linalg.norm(y))
    if nx == 0.0 and ny == 0.0:
        return 1.0
    if nx == 0.0 or ny == 0.0:
        return 0.0
    # Rounding can push |x.y| a hair past |x||y| for near-parallel
    # vectors; clamp so the similarity honours its [-1, 1] contract.
    return float(np.clip(np.dot(x, y) / (nx * ny), -1.0, 1.0))


def mean_absolute_error(truth, prediction) -> float:
    """Mean absolute error between aligned vectors."""
    x, y = _paired(truth, prediction)
    return float(np.mean(np.abs(x - y)))


def root_mean_squared_error(truth, prediction) -> float:
    """Root-mean-squared error between aligned vectors."""
    x, y = _paired(truth, prediction)
    return float(np.sqrt(np.mean((x - y) ** 2)))


def error_rates(truth, prediction, floor: float | None = None) -> np.ndarray:
    """Per-point relative error ``|pred - truth| / max(|truth|, floor)``.

    The paper's Figs 12-13 show the error rate over time; a floor keeps
    near-zero truth values (symmetric snapshots) from exploding the rate.
    By default the floor is the mean absolute truth value.
    """
    x, y = _paired(truth, prediction)
    if floor is None:
        floor = float(np.mean(np.abs(x)))
        if floor == 0.0:
            floor = 1.0
    denom = np.maximum(np.abs(x), floor)
    return np.abs(y - x) / denom


@dataclass(frozen=True)
class ForecastComparison:
    """The Table IV row for one family: prediction vs ground truth."""

    prediction_mean: float
    prediction_std: float
    truth_mean: float
    truth_std: float
    similarity: float
    mae: float
    rmse: float
    n_points: int


def compare_forecast(truth, prediction) -> ForecastComparison:
    """Compute the paper's Table IV statistics for one forecast."""
    x, y = _paired(truth, prediction)
    return ForecastComparison(
        prediction_mean=float(np.mean(y)),
        prediction_std=float(np.std(y, ddof=0)),
        truth_mean=float(np.mean(x)),
        truth_std=float(np.std(x, ddof=0)),
        similarity=cosine_similarity(x, y),
        mae=mean_absolute_error(x, y),
        rmse=root_mean_squared_error(x, y),
        n_points=int(x.size),
    )
