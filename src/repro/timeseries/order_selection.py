"""Automatic ARIMA order selection by information criterion grid search."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arima import ARIMA, ARIMAFit
from .differencing import difference

__all__ = ["OrderSearchResult", "select_order"]


@dataclass(frozen=True)
class OrderSearchResult:
    """Outcome of a grid search over (p, d, q)."""

    best_order: tuple[int, int, int]
    best_fit: ARIMAFit
    scores: dict[tuple[int, int, int], float]
    criterion: str


def select_order(
    series,
    max_p: int = 3,
    max_d: int = 1,
    max_q: int = 3,
    criterion: str = "aic",
) -> OrderSearchResult:
    """Grid-search ARIMA orders, returning the best fit by AIC or BIC.

    Orders whose fit fails (too-short series, optimizer blowup) are
    skipped; at least the mean-only model (0, 0, 0) always succeeds for a
    non-trivial series, so the search cannot come back empty-handed.
    """
    if criterion not in ("aic", "bic"):
        raise ValueError(f"criterion must be 'aic' or 'bic', got {criterion!r}")
    y = np.asarray(series, dtype=float)
    scores: dict[tuple[int, int, int], float] = {}
    best: tuple[float, tuple[int, int, int], ARIMAFit] | None = None
    for d in range(max_d + 1):
        # Difference once per d; every (p, q) candidate at this d shares
        # the result instead of re-differencing inside fit().
        diffed = difference(y, d) if d else y
        for p in range(max_p + 1):
            for q in range(max_q + 1):
                order = (p, d, q)
                try:
                    fit = ARIMA(order).fit_differenced(diffed, y)
                except (ValueError, np.linalg.LinAlgError):
                    continue
                score = fit.aic if criterion == "aic" else fit.bic
                if not np.isfinite(score):
                    continue
                scores[order] = float(score)
                if best is None or score < best[0]:
                    best = (float(score), order, fit)
    if best is None:
        raise ValueError("no ARIMA order could be fitted to the series")
    return OrderSearchResult(
        best_order=best[1], best_fit=best[2], scores=scores, criterion=criterion
    )
