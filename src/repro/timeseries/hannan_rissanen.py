"""Initial ARMA parameter estimates: Yule-Walker and Hannan-Rissanen.

The conditional-sum-of-squares optimiser in :mod:`repro.timeseries.arima`
needs a starting point.  Yule-Walker handles the pure-AR case; the
Hannan-Rissanen two-stage regression provides joint AR+MA starting values
by first fitting a long AR model to estimate the innovations, then
regressing the series on lagged values and lagged innovations.
"""

from __future__ import annotations

import numpy as np

from .acf import acf

__all__ = ["yule_walker", "hannan_rissanen"]


def yule_walker(series, p: int) -> np.ndarray:
    """AR(p) coefficients from the Yule-Walker equations."""
    if p == 0:
        return np.zeros(0)
    y = np.asarray(series, dtype=float)
    if y.size <= p:
        raise ValueError(f"need more than p={p} observations, got {y.size}")
    rho = acf(y, p)
    # Toeplitz system R phi = r
    r_matrix = np.empty((p, p))
    for i in range(p):
        for j in range(p):
            r_matrix[i, j] = rho[abs(i - j)]
    try:
        phi = np.linalg.solve(r_matrix, rho[1 : p + 1])
    except np.linalg.LinAlgError:
        phi, *_ = np.linalg.lstsq(r_matrix, rho[1 : p + 1], rcond=None)
    return phi


def _long_ar_residuals(y: np.ndarray, order: int) -> np.ndarray:
    """Residuals of a long AR fit, used as innovation proxies."""
    phi = yule_walker(y, order)
    n = y.size
    resid = np.zeros(n)
    for t in range(order, n):
        resid[t] = y[t] - float(np.dot(phi, y[t - order : t][::-1]))
    return resid


def hannan_rissanen(series, p: int, q: int) -> tuple[np.ndarray, np.ndarray]:
    """Two-stage Hannan-Rissanen estimates ``(phi, theta)`` for ARMA(p, q).

    The input series should already be differenced and mean-centred.
    Falls back to conservative defaults (Yule-Walker AR, zero MA) when the
    regression is ill-conditioned — the downstream CSS optimiser only
    needs a sane starting point.
    """
    y = np.asarray(series, dtype=float)
    if p == 0 and q == 0:
        return np.zeros(0), np.zeros(0)
    if q == 0:
        return yule_walker(y, p), np.zeros(0)

    long_order = max(p + q, min(20, max(1, y.size // 10)))
    if y.size <= long_order + max(p, q) + 1:
        # Too short for the two-stage regression; start from AR-only.
        phi = yule_walker(y, p) if p > 0 else np.zeros(0)
        return phi, np.zeros(q)

    eps = _long_ar_residuals(y, long_order)
    start = long_order + max(p, q)
    rows = y.size - start
    design = np.empty((rows, p + q))
    for i, t in enumerate(range(start, y.size)):
        if p:
            design[i, :p] = y[t - p : t][::-1]
        if q:
            design[i, p:] = eps[t - q : t][::-1]
    target = y[start:]
    try:
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    except np.linalg.LinAlgError:
        phi = yule_walker(y, p) if p > 0 else np.zeros(0)
        return phi, np.zeros(q)
    phi = coef[:p]
    theta = coef[p:]
    # Clamp wild starting values; CSS refines from here.
    phi = np.clip(phi, -0.98, 0.98)
    theta = np.clip(theta, -0.98, 0.98)
    return phi, theta
