"""Differencing and integration for the "I" in ARIMA."""

from __future__ import annotations

import numpy as np

__all__ = ["difference", "integrate", "integrate_forecast"]


def difference(series, d: int = 1) -> np.ndarray:
    """Apply ``d`` rounds of first differencing; length shrinks by ``d``."""
    y = np.asarray(series, dtype=float)
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    if y.size <= d:
        raise ValueError(f"series of length {y.size} cannot be differenced {d} times")
    for _ in range(d):
        y = np.diff(y)
    return y


def integrate(diffed, heads: list[np.ndarray]) -> np.ndarray:
    """Invert :func:`difference` given the retained heads.

    ``heads`` must contain, for each differencing round (outermost first),
    the first element of the series at that level — i.e. ``heads[0]`` is
    the first value of the original series, ``heads[1]`` the first value
    after one differencing round, and so on.
    """
    y = np.asarray(diffed, dtype=float)
    for head in reversed(heads):
        y = np.concatenate(([float(head)], y)).cumsum()
    return y


def integrate_forecast(forecast_diffed, last_values: np.ndarray) -> np.ndarray:
    """Undo differencing for a forecast continuing a known series.

    ``last_values`` holds the final ``d`` observations of the original
    (undifferenced) series at successively differenced levels: element 0
    is the last original value, element 1 the last first-difference, etc.
    """
    f = np.asarray(forecast_diffed, dtype=float)
    last_values = np.asarray(last_values, dtype=float)
    for level in range(last_values.size - 1, -1, -1):
        f = last_values[level] + np.cumsum(f)
    return f
