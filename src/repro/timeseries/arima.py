"""ARIMA(p, d, q) estimation and forecasting, from scratch.

The paper (§IV-A) fits ARIMA models to each family's geolocation-distance
series, trains on the first half and predicts the rest.  statsmodels is
not available in this environment, so this module implements the textbook
conditional-sum-of-squares (CSS) estimator:

* difference the series ``d`` times;
* estimate the ARMA(p, q) parameters of the differenced series by
  minimising the sum of squared one-step-ahead innovations, starting from
  Hannan-Rissanen initial values (:mod:`repro.timeseries.hannan_rissanen`);
* forecast recursively, re-integrating the differenced predictions.

The estimator is validated in the test suite against synthetic AR/MA
processes with known coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, signal

from .differencing import difference, integrate_forecast
from .hannan_rissanen import hannan_rissanen

__all__ = ["ARIMA", "ARIMAFit"]


def _make_iir_all_pole():
    """Fast all-pole IIR filter ``1 / a(B)`` with zero initial conditions.

    ``scipy.signal.lfilter(b, a, x)`` with ``zi=None`` dispatches straight
    to ``_sigtools._linear_filter`` after argument validation, so calling
    the C routine directly is bitwise-identical and skips ~30 µs of Python
    overhead per call — which matters inside the CSS optimiser, where the
    filter runs thousands of times per fit.  The private entry point is
    probed once at import; any surprise falls back to the public API.
    """
    b = np.array([1.0])
    try:
        from scipy.signal import _sigtools

        probe_a = np.array([1.0, 0.5, -0.25])
        probe_x = np.array([1.0, -2.0, 3.0, 0.5])
        if np.array_equal(
            _sigtools._linear_filter(b, probe_a, probe_x, -1),
            signal.lfilter(b, probe_a, probe_x),
        ):
            return lambda a, x: _sigtools._linear_filter(b, a, x, -1)
    except Exception:
        pass
    return lambda a, x: signal.lfilter(b, a, x)


_iir_all_pole = _make_iir_all_pole()


def _css_residuals(y: np.ndarray, const: float, phi: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """One-step-ahead innovations of an ARMA model, conditional on zeros.

    The recursion starts at ``t = p`` with pre-sample innovations fixed at
    zero (the "conditional" in CSS).

    This sits inside the CSS optimiser's objective, so it is fully
    vectorised: the AR part is a handful of shifted-slice updates, and
    the MA recursion ``eps[t] = z[t] - theta · eps[t-1..t-q]`` is exactly
    an IIR filter with denominator ``[1, theta]``, evaluated in C by
    :func:`scipy.signal.lfilter` (zero initial conditions match the
    conditional pre-sample convention).
    """
    p = phi.size
    q = theta.size
    n = y.size
    # z[t] = y[t] - const - sum_i phi[i] * y[t-1-i] for t >= p; the first
    # p entries are pinned to zero so the innovations there stay zero.
    z = y - const
    for i in range(p):
        z[p:] -= phi[i] * y[p - 1 - i : n - 1 - i]
    z[:p] = 0.0
    if q == 0:
        return z
    return _iir_all_pole(np.concatenate(([1.0], theta)), z)


def _min_root_modulus(coeffs: np.ndarray) -> float:
    """Smallest ``|z|`` over the roots of ``1 - c1 z - ... - cp z^p``.

    Degree ≤ 2 (every order the pipeline searches) is solved in closed
    form — the quadratic uses the numerically stable ``q``-formula plus
    the root product ``|z1 z2| = 1/|c2|``, so neither root loses digits
    to cancellation.  Higher degrees fall back to the companion-matrix
    eigenvalues (``np.roots``), exactly the original path.  Returns
    ``inf`` when the polynomial has no roots (all coefficients zero),
    matching ``np.roots`` returning an empty array.
    """
    # np.roots trims leading zeros of the reversed polynomial, i.e. the
    # highest-order coefficients here; mirror that so the degenerate
    # cases (c2 == 0, all zeros) agree exactly.
    m = coeffs.size
    while m and coeffs[m - 1] == 0.0:
        m -= 1
    if m == 0:
        return float("inf")
    if m == 1:
        # Single root 1/c1 — identical to the 1x1 companion eigenvalue.
        return abs(1.0 / float(coeffs[0]))
    if m == 2:
        # Roots of c2 z^2 + c1 z - 1 = 0.
        c1 = float(coeffs[0])
        c2 = float(coeffs[1])
        disc = c1 * c1 + 4.0 * c2
        if disc < 0.0:
            # Conjugate pair: |z|^2 = |product| = 1/|c2|.
            return float(np.sqrt(1.0 / abs(c2)))
        sq = float(np.sqrt(disc))
        qq = -0.5 * (c1 + (sq if c1 >= 0.0 else -sq))
        # qq == 0 requires c1 == 0 and disc == 0, i.e. c2 == 0 — already
        # reduced to the linear case above.
        return min(abs(qq / c2), abs(1.0 / qq))
    poly = np.concatenate(([1.0], -coeffs[:m]))
    roots = np.roots(poly[::-1])
    return float(np.min(np.abs(roots)))


def _instability(coeffs: np.ndarray) -> float:
    """Violation of the stationarity/invertibility constraint.

    Returns 0 when every root of ``1 - c1 z - ... - cp z^p`` lies outside
    a small safety margin of the unit circle, and grows quadratically as
    roots move inside.  The CSS objective scales this *multiplicatively*
    — an additive penalty would drown in the sum-of-squares magnitude
    and let the optimiser pick explosive recursions.
    """
    if coeffs.size == 0:
        return 0.0
    min_mod = _min_root_modulus(coeffs)
    if min_mod >= 1.02:
        return 0.0
    return (1.02 - min_mod) ** 2


@dataclass(frozen=True)
class ARIMAFit:
    """A fitted ARIMA model: orders, parameters and training diagnostics."""

    order: tuple[int, int, int]
    const: float
    phi: np.ndarray
    theta: np.ndarray
    sigma2: float
    n_obs: int
    loglike: float
    train_tail: np.ndarray = field(repr=False)  # last values needed to forecast
    diff_tail: np.ndarray = field(repr=False)   # last d original-scale values per level
    eps_tail: np.ndarray = field(repr=False)    # last q innovations

    @property
    def aic(self) -> float:
        k = 1 + self.phi.size + self.theta.size + 1  # const + AR + MA + sigma2
        return 2.0 * k - 2.0 * self.loglike

    @property
    def bic(self) -> float:
        k = 1 + self.phi.size + self.theta.size + 1
        return k * float(np.log(max(self.n_obs, 1))) - 2.0 * self.loglike

    def residual_diagnostics(self, series, nlags: int = 10) -> tuple[float, float]:
        """Ljung-Box whiteness test on the fit's in-sample residuals.

        ``series`` must be the data the model was fitted on.  Returns
        ``(Q statistic, p-value)``; a small p-value means the model left
        structure in the residuals (underfitting).
        """
        from .acf import ljung_box
        from .differencing import difference

        y = np.asarray(series, dtype=float)
        p, d, q = self.order
        if d:
            y = difference(y, d)
        eps = _css_residuals(y, self.const, self.phi, self.theta)[max(p, 1):]
        return ljung_box(eps, nlags=nlags, fitted_params=p + q)

    # -- forecasting ---------------------------------------------------

    def forecast_interval(
        self, steps: int, z: float = 1.96
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Point forecast with a ±z·σ_h prediction band.

        Forecast-error variance grows with the horizon through the
        psi-weights (MA(∞) representation); this computes the first
        ``steps`` psi-weights by recursion and returns ``(point, lower,
        upper)`` arrays.  Bands assume Gaussian innovations.
        """
        point = self.forecast(steps)
        # psi-weights are the impulse response of theta(B)/phi(B).
        impulse = np.zeros(steps)
        impulse[0] = 1.0
        psi = signal.lfilter(
            np.concatenate(([1.0], self.theta)),
            np.concatenate(([1.0], -self.phi)),
            impulse,
        )
        var = self.sigma2 * np.cumsum(psi**2)
        d = self.order[1]
        if d:
            # Differenced forecasts integrate, accumulating variance; a
            # first-order approximation integrates the psi-weights too.
            psi_int = np.cumsum(psi)
            var = self.sigma2 * np.cumsum(psi_int**2)
        half = z * np.sqrt(var)
        return point, point - half, point + half

    def forecast(self, steps: int) -> np.ndarray:
        """``steps``-ahead point forecast on the original scale.

        The recursion ``pred[h] = const + phi·pred[h-1..] + theta·eps``
        (future innovations zero) is a linear IIR filter: the MA side
        only ever touches the ``q`` stored training innovations, so it
        collapses to a short input vector, and the AR side runs in C via
        :func:`scipy.signal.lfilter` seeded from the training tail.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        p, d, q = self.order
        # MA contribution: at step h only training innovations with
        # index h-1-j < 0 survive (future ones are their zero mean).
        drive = np.full(steps, self.const)
        for j in range(q):
            reach = min(j + 1, steps)  # steps h = 0 .. j see eps_tail[h-1-j]
            drive[:reach] += self.theta[j] * self.eps_tail[np.arange(reach) - 1 - j]
        if p:
            zi = signal.lfiltic(
                [1.0], np.concatenate(([1.0], -self.phi)),
                self.train_tail[::-1][:p],
            )
            preds, _ = signal.lfilter(
                [1.0], np.concatenate(([1.0], -self.phi)), drive, zi=zi
            )
        else:
            preds = drive
        if d:
            preds = integrate_forecast(preds, self.diff_tail)
        return preds

    def rolling_forecast(self, series) -> np.ndarray:
        """One-step-ahead predictions over a continuation of the series.

        ``series`` is the *original-scale* continuation (test segment).
        The fitted coefficients stay fixed; at each step the truth is fed
        back in, exactly the paper's evaluation protocol (train on the
        first half, predict each subsequent point).  Returns an array the
        same length as ``series``.
        """
        cont = np.asarray(series, dtype=float)
        p, d, q = self.order
        n = cont.size
        if n == 0:
            return np.zeros(0)
        # Truth feedback makes every quantity a known function of the
        # observed continuation, so the whole walk vectorises:
        #   w[t]        the truth differenced d times (using diff_tail as
        #               the pre-history at each level);
        #   tails[t]    the sum over levels of the previous value at that
        #               level — the re-integration constant for step t;
        #   eps[t]      = w[t] - pred_diff[t], an IIR filter in w.
        tails_sum = np.zeros(n)
        w = cont
        for level in range(d):
            with_prev = np.concatenate(([self.diff_tail[level]], w))
            tails_sum += with_prev[:n]
            w = np.diff(with_prev)
        # One-step ARMA prediction of w[t] from the (known) past.
        pred_diff = np.full(n, self.const)
        if p:
            wext = np.concatenate((self.train_tail[-p:], w))
            for i in range(p):
                pred_diff += self.phi[i] * wext[p - 1 - i : p - 1 - i + n]
        if q:
            # eps[t] = (w[t] - const - AR[t]) - theta · eps[t-1..t-q]:
            # an IIR filter seeded with the training innovations.
            z = w - pred_diff
            zi = signal.lfiltic(
                [1.0], np.concatenate(([1.0], self.theta)),
                self.eps_tail[::-1][:q],
            )
            eps, _ = signal.lfilter(
                [1.0], np.concatenate(([1.0], self.theta)), z, zi=zi
            )
            pred_diff = w - eps
        return pred_diff + tails_sum if d else pred_diff.copy()


class ARIMA:
    """ARIMA(p, d, q) estimator with a CSS objective.

    >>> fit = ARIMA(order=(2, 1, 2)).fit(series)
    >>> fit.forecast(10)
    """

    def __init__(self, order: tuple[int, int, int] = (1, 0, 0)):
        p, d, q = order
        if min(p, d, q) < 0:
            raise ValueError(f"orders must be non-negative, got {order}")
        if p == 0 and q == 0 and d == 0:
            # Degenerate but allowed: mean-only model.
            pass
        self.order = (int(p), int(d), int(q))

    def fit(self, series, maxiter: int = 500) -> ARIMAFit:
        """Fit by conditional sum of squares; returns an :class:`ARIMAFit`."""
        y_orig = np.asarray(series, dtype=float)
        d = self.order[1]
        self._check_length(y_orig.size)
        y = difference(y_orig, d) if d else y_orig.copy()
        return self._fit_differenced(y, y_orig, maxiter)

    def fit_differenced(self, diffed, original, maxiter: int = 500) -> ARIMAFit:
        """Fit when the caller already differenced ``original`` ``d`` times.

        ``diffed`` must equal ``difference(original, d)`` for this
        model's ``d``; the order search differences each candidate ``d``
        once and reuses it across every ``(p, q)`` pair, instead of
        re-differencing inside each fit.  Produces the same
        :class:`ARIMAFit` as ``fit(original)``.
        """
        y_orig = np.asarray(original, dtype=float)
        d = self.order[1]
        self._check_length(y_orig.size)
        y = np.asarray(diffed, dtype=float)
        if y.size != y_orig.size - d:
            raise ValueError(
                f"differenced series of length {y.size} does not match "
                f"original of length {y_orig.size} at d={d}"
            )
        return self._fit_differenced(y.copy(), y_orig, maxiter)

    def _check_length(self, n: int) -> None:
        p, d, q = self.order
        min_len = p + q + d + 3
        if n < min_len:
            raise ValueError(f"series of length {n} too short for ARIMA{self.order}")

    def _fit_differenced(self, y: np.ndarray, y_orig: np.ndarray, maxiter: int) -> ARIMAFit:
        p, d, q = self.order
        phi0, theta0 = hannan_rissanen(y - y.mean(), p, q)
        const0 = float(y.mean()) * (1.0 - float(np.sum(phi0)))
        x0 = np.concatenate(([const0], phi0, theta0))

        # The optimiser calls the objective thousands of times, so it works
        # on the tail ``t >= p`` only: ``_css_residuals`` pins ``z[:p]`` to
        # zero and the filter's zero initial conditions make the leading
        # ``p`` innovations zero, so dropping them before the arithmetic
        # (instead of after) produces bitwise-identical residuals while
        # skipping the dead prefix.  The lag views are precomputed once.
        n = y.size
        y_tail = y[p:]
        lags = [y[p - 1 - i : n - 1 - i] for i in range(p)]
        a_full = np.empty(q + 1)
        a_full[0] = 1.0

        def objective(x: np.ndarray) -> float:
            const = x[0]
            phi = x[1 : 1 + p]
            theta = x[1 + p :]
            z = y_tail - const
            for i in range(p):
                z -= phi[i] * lags[i]
            if q:
                a_full[1:] = theta
                eps = _iir_all_pole(a_full, z)
            else:
                eps = z
            css = float(np.dot(eps, eps))
            violation = _instability(phi) + _instability(-theta)
            return css * (1.0 + 1e4 * violation)

        if x0.size == 1:
            # Mean-only model: closed form.
            best = np.array([float(y.mean())])
        else:
            result = optimize.minimize(
                objective,
                x0,
                method="Nelder-Mead",
                options={"maxiter": maxiter * max(1, x0.size), "xatol": 1e-6, "fatol": 1e-8},
            )
            best = result.x

        const = float(best[0])
        phi = np.asarray(best[1 : 1 + p], dtype=float)
        theta = np.asarray(best[1 + p :], dtype=float)
        eps = _css_residuals(y, const, phi, theta)
        n_eff = max(y.size - p, 1)
        sigma2 = float(np.dot(eps[p:], eps[p:])) / n_eff
        sigma2 = max(sigma2, 1e-12)
        loglike = -0.5 * n_eff * (np.log(2.0 * np.pi * sigma2) + 1.0)

        # Tails required for forecasting: the last d original-scale values
        # at each differencing level (level 0 = original), the last p
        # differenced values, and the last q innovations.
        diff_tail = np.empty(d)
        level = y_orig.copy()
        for lvl in range(d):
            diff_tail[lvl] = level[-1]
            level = np.diff(level)
        return ARIMAFit(
            order=self.order,
            const=const,
            phi=phi,
            theta=theta,
            sigma2=sigma2,
            n_obs=int(y.size),
            loglike=float(loglike),
            train_tail=y[-max(p, 1) :].copy(),
            diff_tail=diff_tail,
            eps_tail=eps[-q:].copy() if q else np.zeros(0),
        )
