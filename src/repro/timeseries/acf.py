"""Autocorrelation tooling: ACF, PACF and a Ljung-Box whiteness test.

These are the diagnostics a standard ARIMA workflow needs: the ACF/PACF
guide order selection, and the Ljung-Box statistic checks that the fitted
model's residuals look like white noise.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["acf", "pacf", "ljung_box"]


def acf(series, nlags: int) -> np.ndarray:
    """Sample autocorrelation function for lags ``0..nlags``.

    Uses the standard biased estimator (divides by ``n``), which keeps the
    estimated autocovariance sequence positive semi-definite — a property
    the Durbin-Levinson recursion in :func:`pacf` relies on.
    """
    y = np.asarray(series, dtype=float)
    n = y.size
    if n < 2:
        raise ValueError(f"need at least 2 observations, got {n}")
    if nlags < 0:
        raise ValueError(f"nlags must be non-negative, got {nlags}")
    nlags = min(nlags, n - 1)
    y = y - y.mean()
    denom = float(np.dot(y, y))
    if denom == 0.0:
        # Constant series: autocorrelation is undefined; by convention
        # return 1 at lag 0 and 0 elsewhere.
        out = np.zeros(nlags + 1)
        out[0] = 1.0
        return out
    out = np.empty(nlags + 1)
    out[0] = 1.0
    for k in range(1, nlags + 1):
        out[k] = float(np.dot(y[:-k], y[k:])) / denom
    return out


def pacf(series, nlags: int) -> np.ndarray:
    """Partial autocorrelation function via the Durbin-Levinson recursion.

    Returns lags ``0..nlags`` with ``pacf[0] == 1``.
    """
    rho = acf(series, nlags)
    nlags = rho.size - 1
    out = np.empty(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    phi_prev = np.zeros(0)
    for k in range(1, nlags + 1):
        if k == 1:
            phi_kk = rho[1]
            phi_new = np.array([phi_kk])
        else:
            num = rho[k] - float(np.dot(phi_prev, rho[k - 1 : 0 : -1]))
            den = 1.0 - float(np.dot(phi_prev, rho[1:k]))
            phi_kk = num / den if abs(den) > 1e-12 else 0.0
            phi_new = np.empty(k)
            phi_new[:-1] = phi_prev - phi_kk * phi_prev[::-1]
            phi_new[-1] = phi_kk
        out[k] = phi_kk
        phi_prev = phi_new
    return out


def ljung_box(residuals, nlags: int = 10, fitted_params: int = 0) -> tuple[float, float]:
    """Ljung-Box portmanteau test on residuals.

    Returns ``(Q statistic, p-value)``.  ``fitted_params`` is subtracted
    from the degrees of freedom (``p + q`` for an ARMA fit).  A large
    p-value means we cannot reject residual whiteness.
    """
    r = np.asarray(residuals, dtype=float)
    n = r.size
    if n <= nlags:
        raise ValueError(f"need more than nlags={nlags} residuals, got {n}")
    rho = acf(r, nlags)[1:]
    q = n * (n + 2) * float(np.sum(rho**2 / (n - np.arange(1, nlags + 1))))
    dof = max(1, nlags - fitted_params)
    pvalue = float(stats.chi2.sf(q, dof))
    return q, pvalue
