"""Time-series substrate: ARIMA estimation, diagnostics and forecast metrics."""

from .acf import acf, ljung_box, pacf
from .arima import ARIMA, ARIMAFit
from .differencing import difference, integrate, integrate_forecast
from .hannan_rissanen import hannan_rissanen, yule_walker
from .metrics import (
    ForecastComparison,
    compare_forecast,
    cosine_similarity,
    error_rates,
    mean_absolute_error,
    root_mean_squared_error,
)
from .order_selection import OrderSearchResult, select_order

__all__ = [
    "acf",
    "ljung_box",
    "pacf",
    "ARIMA",
    "ARIMAFit",
    "difference",
    "integrate",
    "integrate_forecast",
    "hannan_rissanen",
    "yule_walker",
    "ForecastComparison",
    "compare_forecast",
    "cosine_similarity",
    "error_rates",
    "mean_absolute_error",
    "root_mean_squared_error",
    "OrderSearchResult",
    "select_order",
]
