"""Concurrent collaboration detection (§V-A, Table VI, Figs 15-16).

The paper's definition: attacks by *different botnets* against the *same
target* whose start times are within 60 seconds of each other and whose
durations differ by at most half an hour are a collaboration.  A
collaboration is intra-family when all participating botnets belong to
one family, inter-family otherwise.

The detector here works purely from the attack table (never from the
generator's ground-truth labels); the test suite compares its output
against the staged ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .context import AnalysisContext, AnalysisSource

__all__ = [
    "START_WINDOW_SECONDS",
    "DURATION_WINDOW_SECONDS",
    "CollabEvent",
    "detect_collaborations",
    "collaboration_table",
    "IntraFamilyStats",
    "intra_family_stats",
    "PairAnalysis",
    "pair_analysis",
]

START_WINDOW_SECONDS = 60.0
DURATION_WINDOW_SECONDS = 1800.0


@dataclass(frozen=True)
class CollabEvent:
    """One detected collaboration: >= 2 attacks co-targeting one victim."""

    attack_indices: tuple[int, ...]
    target_index: int
    families: tuple[str, ...]
    botnet_ids: tuple[int, ...]
    start: float
    is_inter_family: bool

    @property
    def n_botnets(self) -> int:
        return len(set(self.botnet_ids))


def detect_collaborations(
    source: AnalysisSource,
    start_window: float = START_WINDOW_SECONDS,
    duration_window: float = DURATION_WINDOW_SECONDS,
) -> list[CollabEvent]:
    """Find all collaborations under the paper's §V-A definition.

    Attacks on each target are scanned in start order; a maximal run of
    attacks whose starts are pairwise within ``start_window`` is a
    candidate group.  Within a candidate group, attacks by the same
    botnet are reduced to one (a botnet cannot collaborate with itself),
    and members whose duration strays more than ``duration_window`` from
    the group's first attack are dropped.  Groups with at least two
    distinct botnets left become events.

    Under the default windows, the event list is memoized on the shared
    :class:`AnalysisContext` (Table VI, Figs 15-16 and the attribution
    policies all consume the same detection).
    """
    ctx = AnalysisContext.of(source)
    if start_window == START_WINDOW_SECONDS and duration_window == DURATION_WINDOW_SECONDS:
        return ctx.collaborations()
    return _detect_collaborations(ctx.dataset, start_window, duration_window)


def _detect_collaborations(
    ds, start_window: float, duration_window: float
) -> list[CollabEvent]:
    """The raw scan behind :func:`detect_collaborations`.

    A sweep-line kernel over the ``(target, start)``-sorted attack
    columns: one boundary mask splits the sweep into candidate runs
    (target change *or* start gap beyond the window), the per-run
    botnet dedupe is a second lexsort plus a first-occurrence mask,
    and the duration filter broadcasts each run's first-member duration
    with ``np.repeat``.  Only surviving events (a few hundred at full
    scale) are materialised in Python.  Pinned equal to
    :func:`_reference_detect_collaborations` by the parity tests.
    """
    n = ds.n_attacks
    if n == 0:
        return []
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    starts = ds.start[order]
    durations = (ds.end - ds.start)[order]
    botnets = ds.botnet_id[order]

    # Candidate runs: maximal stretches on one target whose successive
    # starts are within the window.
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    new_run[1:] = (targets[1:] != targets[:-1]) | (
        starts[1:] - starts[:-1] > start_window
    )
    run_id = np.cumsum(new_run) - 1
    n_runs = int(run_id[-1]) + 1
    run_first = np.flatnonzero(new_run)
    run_sizes = np.diff(np.append(run_first, n))

    # Duration filter: within a run, members stray at most
    # ``duration_window`` from the *first* member's duration.  It runs
    # before the dedupe — a botnet whose earliest attack fails the
    # filter may still contribute a later, conforming attack.
    base = np.repeat(durations[run_first], run_sizes)
    dur_ok = np.abs(durations - base) <= duration_window
    ok_pos = np.flatnonzero(dur_ok)

    # Botnet dedupe among the survivors: a botnet cannot collaborate
    # with itself, so only its first conforming attack per run counts.
    # lexsort is stable, so the first position within each
    # (run, botnet) block is the earliest.
    keep = np.zeros(n, dtype=bool)
    if ok_pos.size:
        ok_runs = run_id[ok_pos]
        ok_bots = botnets[ok_pos]
        dd = np.lexsort((ok_bots, ok_runs))
        first = np.empty(ok_pos.size, dtype=bool)
        first[0] = True
        first[1:] = (ok_runs[dd][1:] != ok_runs[dd][:-1]) | (
            ok_bots[dd][1:] != ok_bots[dd][:-1]
        )
        keep[ok_pos[dd[first]]] = True

    kept_per_run = np.bincount(run_id[keep], minlength=n_runs)
    good = kept_per_run >= 2
    if not np.any(good):
        return []

    kept_pos = np.flatnonzero(keep)
    kept_run = run_id[kept_pos]
    run_offsets = np.concatenate(([0], np.cumsum(kept_per_run)))

    family_names = np.asarray(
        [ds.family_name(k) for k in range(ds.family_idx.max() + 1)], dtype=object
    )
    events: list[CollabEvent] = []
    for r in np.flatnonzero(good):
        pos = kept_pos[run_offsets[r] : run_offsets[r + 1]]
        idx = order[pos]
        families = tuple(sorted(set(family_names[np.unique(ds.family_idx[idx])])))
        events.append(
            CollabEvent(
                attack_indices=tuple(int(i) for i in idx),
                target_index=int(targets[pos[0]]),
                families=families,
                botnet_ids=tuple(int(b) for b in botnets[pos]),
                start=float(starts[pos[0]]),
                is_inter_family=len(families) > 1,
            )
        )
    events.sort(key=lambda e: e.start)
    return events


def _reference_detect_collaborations(
    ds, start_window: float, duration_window: float
) -> list[CollabEvent]:
    """Reference implementation (pre-vectorization); kept for parity tests."""
    events: list[CollabEvent] = []
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    boundaries = np.flatnonzero(np.diff(targets) != 0) + 1
    for group in np.split(order, boundaries):
        if group.size < 2:
            continue
        starts = ds.start[group]
        # Runs of near-simultaneous starts on this target.
        run_break = np.flatnonzero(np.diff(starts) > start_window) + 1
        for run in np.split(group, run_break):
            if run.size < 2:
                continue
            base_duration = float(ds.end[run[0]] - ds.start[run[0]])
            keep: list[int] = []
            seen_botnets: set[int] = set()
            for i in run:
                botnet = int(ds.botnet_id[i])
                duration = float(ds.end[i] - ds.start[i])
                if botnet in seen_botnets:
                    continue
                if abs(duration - base_duration) > duration_window:
                    continue
                seen_botnets.add(botnet)
                keep.append(int(i))
            if len(keep) < 2:
                continue
            families = tuple(
                sorted({ds.family_name(int(ds.family_idx[i])) for i in keep})
            )
            events.append(
                CollabEvent(
                    attack_indices=tuple(keep),
                    target_index=int(ds.target_idx[keep[0]]),
                    families=families,
                    botnet_ids=tuple(int(ds.botnet_id[i]) for i in keep),
                    start=float(min(ds.start[i] for i in keep)),
                    is_inter_family=len(families) > 1,
                )
            )
    events.sort(key=lambda e: e.start)
    return events


def collaboration_table(
    source: AnalysisSource, events: list[CollabEvent] | None = None
) -> dict[str, dict[str, int]]:
    """Table VI: per-family intra- and inter-family collaboration counts.

    Every family participating in an event is credited once, matching the
    paper's per-family accounting (which is why Dirtjumper's 121
    inter-family events equal the sum of its partners' counts).
    """
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if events is None:
        events = ctx.collaborations()
    table: dict[str, dict[str, int]] = {
        fam: {"intra": 0, "inter": 0} for fam in ds.active_families
    }
    for event in events:
        kind = "inter" if event.is_inter_family else "intra"
        for family in event.families:
            if family in table:
                table[family][kind] += 1
    return table


@dataclass(frozen=True)
class IntraFamilyStats:
    """Fig 15 material: one family's intra-family collaborations."""

    family: str
    n_events: int
    mean_botnets_per_event: float
    #: (start time, botnet id, attack magnitude) per participating attack.
    points: list[tuple[float, int, int]]
    #: Fraction of events whose members have identical magnitudes (the
    #: "same bar height" observation suggesting central instructions).
    equal_magnitude_fraction: float


def intra_family_stats(
    source: AnalysisSource, family: str, events: list[CollabEvent] | None = None
) -> IntraFamilyStats:
    """Summarise one family's intra-family collaborations (Fig 15)."""
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if events is None:
        events = ctx.collaborations()
    mine = [e for e in events if not e.is_inter_family and e.families == (family,)]
    points: list[tuple[float, int, int]] = []
    equal = 0
    for event in mine:
        mags = [int(ds.magnitude[i]) for i in event.attack_indices]
        spread = (max(mags) - min(mags)) / max(max(mags), 1)
        if spread <= 0.25:
            equal += 1
        for i in event.attack_indices:
            points.append((float(ds.start[i]), int(ds.botnet_id[i]), int(ds.magnitude[i])))
    n_botnets = [e.n_botnets for e in mine]
    return IntraFamilyStats(
        family=family,
        n_events=len(mine),
        mean_botnets_per_event=float(np.mean(n_botnets)) if n_botnets else 0.0,
        points=points,
        equal_magnitude_fraction=float(equal / len(mine)) if mine else 0.0,
    )


@dataclass(frozen=True)
class PairAnalysis:
    """Fig 16 material: collaborations between two specific families."""

    family_a: str
    family_b: str
    n_events: int
    n_targets: int
    n_countries: int
    n_organizations: int
    n_asns: int
    top_countries: list[tuple[str, int]]
    mean_duration_a: float
    mean_duration_b: float
    #: Aligned per-event series: (start, duration_a, duration_b, mag_a, mag_b).
    series: list[tuple[float, float, float, int, int]]
    span_weeks: float


def pair_analysis(
    source: AnalysisSource,
    family_a: str,
    family_b: str,
    events: list[CollabEvent] | None = None,
) -> PairAnalysis:
    """Analyse the collaborations between ``family_a`` and ``family_b``.

    The paper's Fig 16 compares Dirtjumper and Pandora: durations and
    magnitudes per event side by side, plus the target/country/org/AS
    footprint of the joint campaign.
    """
    if family_a == family_b:
        raise ValueError("pair_analysis needs two different families")
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if events is None:
        events = ctx.collaborations()
    pair = tuple(sorted((family_a, family_b)))
    mine = [e for e in events if e.is_inter_family and set(pair) <= set(e.families)]

    targets = sorted({e.target_index for e in mine})
    countries = ds.victims.country_idx[targets] if targets else np.zeros(0, dtype=int)
    uniq_c, counts_c = (
        np.unique(countries, return_counts=True) if targets else (np.zeros(0), np.zeros(0))
    )
    order = np.argsort(-counts_c, kind="stable")
    top_countries = [
        (ds.world.countries[int(uniq_c[i])].code, int(counts_c[i])) for i in order[:5]
    ]

    series: list[tuple[float, float, float, int, int]] = []
    durations_a: list[float] = []
    durations_b: list[float] = []
    for event in mine:
        per_family: dict[str, tuple[float, int]] = {}
        for i in event.attack_indices:
            fam = ds.family_name(int(ds.family_idx[i]))
            if fam in (family_a, family_b) and fam not in per_family:
                per_family[fam] = (float(ds.end[i] - ds.start[i]), int(ds.magnitude[i]))
        if family_a in per_family and family_b in per_family:
            dur_a, mag_a = per_family[family_a]
            dur_b, mag_b = per_family[family_b]
            durations_a.append(dur_a)
            durations_b.append(dur_b)
            series.append((event.start, dur_a, dur_b, mag_a, mag_b))

    starts = [s for s, *_ in series]
    span_weeks = (max(starts) - min(starts)) / (7 * 86400.0) if len(starts) > 1 else 0.0
    return PairAnalysis(
        family_a=family_a,
        family_b=family_b,
        n_events=len(series),
        n_targets=len(targets),
        n_countries=int(uniq_c.size),
        n_organizations=int(np.unique(ds.victims.org_idx[targets]).size) if targets else 0,
        n_asns=int(np.unique(ds.victims.asn[targets]).size) if targets else 0,
        top_countries=top_countries,
        mean_duration_a=float(np.mean(durations_a)) if durations_a else 0.0,
        mean_duration_b=float(np.mean(durations_b)) if durations_b else 0.0,
        series=sorted(series),
        span_weeks=float(span_weeks),
    )
