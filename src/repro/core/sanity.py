"""Dataset sanity checks from §III-B: spoofing and reflection evidence.

The paper justifies using bot-IP counts as attack magnitudes by ruling
out IP spoofing and reflection/amplification: (1) most attacks ride
connection-oriented protocols (spoofing breaks the handshake); (2) no
attack source appears among the victims (reflectors would); (3) no
UDP/port-53 reflection signature.  This module re-runs those checks on a
dataset — they hold on the synthetic data by construction, and they will
flag datasets (e.g. hand-edited CSV imports) that violate the paper's
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..monitor.schemas import Protocol
from .dataset import AttackDataset

__all__ = ["SpoofingEvidence", "check_no_spoofing"]

#: Protocols that require a two-way handshake; spoofed sources cannot
#: complete them.
_CONNECTION_ORIENTED = (Protocol.HTTP, Protocol.TCP, Protocol.SYN)


@dataclass(frozen=True)
class SpoofingEvidence:
    """Outcome of the §III-B plausibility checks."""

    connection_oriented_fraction: float
    source_victim_overlap: int       # bot IPs that also appear as victims
    udp_fraction: float
    n_attacks: int

    @property
    def spoofing_plausible(self) -> bool:
        """True when the data could plausibly contain spoofed sources."""
        return self.connection_oriented_fraction < 0.5 or self.source_victim_overlap > 0

    @property
    def reflection_plausible(self) -> bool:
        """True when reflection/amplification cannot be ruled out.

        Reflection attacks are UDP-borne and their "sources" are victims
        of the reflector abuse; a dataset dominated by UDP with
        source/victim overlap would match that signature.
        """
        return self.udp_fraction > 0.5 and self.source_victim_overlap > 0


def check_no_spoofing(ds: AttackDataset) -> SpoofingEvidence:
    """Run the paper's three checks against a dataset."""
    if ds.n_attacks == 0:
        raise ValueError("empty dataset")
    conn = np.isin(ds.protocol, [int(p) for p in _CONNECTION_ORIENTED])
    udp = ds.protocol == int(Protocol.UDP)
    overlap = np.intersect1d(
        ds.bots.ip.astype(np.uint64), ds.victims.ip.astype(np.uint64)
    ).size
    return SpoofingEvidence(
        connection_oriented_fraction=float(np.mean(conn)),
        source_victim_overlap=int(overlap),
        udp_fraction=float(np.mean(udp)),
        n_attacks=ds.n_attacks,
    )
