"""Multistage (consecutive) attack detection (§V-B, Figs 17-18).

The second collaboration form: attacks on the same target that happen
*one after another* — the next attack starts at the end of the previous
one, within a 60-second margin of overlap or gap.  The paper finds this
form only intra-family (Darkshell, Ddoser, Dirtjumper, Nitol), with a
longest chain of 22 consecutive Ddoser attacks and ~80 % of consecutive
gaps under 30 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .context import AnalysisContext, AnalysisSource
from .stats import ecdf

__all__ = [
    "CHAIN_MARGIN_SECONDS",
    "AttackChain",
    "detect_chains",
    "ChainSummary",
    "chain_summary",
    "consecutive_gap_cdf",
    "chain_timeline",
]

CHAIN_MARGIN_SECONDS = 60.0


@dataclass(frozen=True)
class AttackChain:
    """A maximal run of consecutive attacks on one target."""

    attack_indices: tuple[int, ...]
    target_index: int
    families: tuple[str, ...]
    start: float
    end: float
    #: Gap between each attack's end and the next attack's start (may be
    #: slightly negative for overlaps within the margin).
    gaps: tuple[float, ...]

    @property
    def length(self) -> int:
        return len(self.attack_indices)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_intra_family(self) -> bool:
        return len(set(self.families)) == 1


def detect_chains(
    source: AnalysisSource,
    margin: float = CHAIN_MARGIN_SECONDS,
    min_length: int = 2,
) -> list[AttackChain]:
    """Find maximal consecutive-attack chains on every target.

    Attacks on a target are scanned in start order; attack *B* continues
    a chain ending with attack *A* when ``B.start`` falls within
    ``margin`` of ``A.end`` (on either side).  Simultaneous attacks
    (identical starts) are concurrent collaborations, not stages, and do
    not link.

    Under the default margin and length, the chain list is memoized on
    the shared :class:`AnalysisContext` (Figs 17-18 consume the same
    detection).
    """
    ctx = AnalysisContext.of(source)
    if margin == CHAIN_MARGIN_SECONDS and min_length == 2:
        return ctx.chains()
    return _detect_chains(ctx.dataset, margin, min_length)


def _detect_chains(ds, margin: float, min_length: int) -> list[AttackChain]:
    """The raw scan behind :func:`detect_chains`.

    A sweep-line kernel: in ``(target, start)`` order, attack ``k``
    links to its immediate predecessor exactly when they share a target,
    ``start[k]`` is within ``margin`` of ``end[k-1]`` and the starts are
    more than a second apart (simultaneous attacks are collaborations,
    not stages).  Chains are the maximal linked runs, so one adjacent
    link mask plus a ``cumsum`` segment labelling replaces the
    per-attack Python walk.  Pinned equal to
    :func:`_reference_detect_chains` by the parity tests.
    """
    n = ds.n_attacks
    if n == 0:
        return []
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    starts = ds.start[order]
    ends = ds.end[order]

    gaps = starts[1:] - ends[:-1]
    linked = (
        (targets[1:] == targets[:-1])
        & (np.abs(gaps) <= margin)
        & (starts[1:] - starts[:-1] > 1.0)
    )
    new_chain = np.empty(n, dtype=bool)
    new_chain[0] = True
    new_chain[1:] = ~linked
    chain_id = np.cumsum(new_chain) - 1
    chain_first = np.flatnonzero(new_chain)
    chain_sizes = np.diff(np.append(chain_first, n))
    good = np.flatnonzero(chain_sizes >= min_length)
    if good.size == 0:
        return []

    family_names = np.asarray(
        [ds.family_name(k) for k in range(ds.family_idx.max() + 1)], dtype=object
    )
    fam_sorted = ds.family_idx[order]
    chains: list[AttackChain] = []
    for c in good:
        lo = chain_first[c]
        hi = lo + chain_sizes[c]
        chains.append(
            AttackChain(
                attack_indices=tuple(int(i) for i in order[lo:hi]),
                target_index=int(targets[lo]),
                families=tuple(family_names[fam_sorted[lo:hi]]),
                start=float(starts[lo]),
                end=float(ends[hi - 1]),
                gaps=tuple(float(g) for g in gaps[lo : hi - 1]),
            )
        )
    chains.sort(key=lambda c: c.start)
    return chains


def _reference_detect_chains(ds, margin: float, min_length: int) -> list[AttackChain]:
    """Reference implementation (pre-vectorization); kept for parity tests."""
    chains: list[AttackChain] = []
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    boundaries = np.flatnonzero(np.diff(targets) != 0) + 1
    for group in np.split(order, boundaries):
        if group.size < min_length:
            continue
        current: list[int] = [int(group[0])]
        gaps: list[float] = []

        def flush() -> None:
            if len(current) >= min_length:
                chains.append(
                    AttackChain(
                        attack_indices=tuple(current),
                        target_index=int(ds.target_idx[current[0]]),
                        families=tuple(
                            ds.family_name(int(ds.family_idx[i])) for i in current
                        ),
                        start=float(ds.start[current[0]]),
                        end=float(ds.end[current[-1]]),
                        gaps=tuple(gaps),
                    )
                )

        for i in group[1:]:
            prev = current[-1]
            gap = float(ds.start[i] - ds.end[prev])
            starts_apart = float(ds.start[i] - ds.start[prev])
            if abs(gap) <= margin and starts_apart > 1.0:
                current.append(int(i))
                gaps.append(gap)
            else:
                flush()
                current = [int(i)]
                gaps = []
        flush()
    chains.sort(key=lambda c: c.start)
    return chains


@dataclass(frozen=True)
class ChainSummary:
    """§V-B headline numbers."""

    n_chains: int
    families: list[str]
    intra_family_only: bool
    longest_chain_length: int
    longest_chain_family: str
    longest_chain_duration: float
    gap_mean: float
    gap_median: float
    gap_std: float
    under_10s_fraction: float
    under_30s_fraction: float


def chain_summary(
    source: AnalysisSource, chains: list[AttackChain] | None = None
) -> ChainSummary:
    """Summarise detected chains the way §V-B reports them."""
    if chains is None:
        chains = AnalysisContext.of(source).chains()
    if not chains:
        raise ValueError("no consecutive-attack chains detected")
    gaps = np.concatenate([np.asarray(c.gaps) for c in chains if c.gaps])
    longest = max(chains, key=lambda c: c.length)
    families = sorted({fam for c in chains for fam in c.families})
    return ChainSummary(
        n_chains=len(chains),
        families=families,
        intra_family_only=all(c.is_intra_family for c in chains),
        longest_chain_length=longest.length,
        longest_chain_family=longest.families[0],
        longest_chain_duration=longest.duration,
        gap_mean=float(np.mean(gaps)),
        gap_median=float(np.median(gaps)),
        gap_std=float(np.std(gaps)),
        under_10s_fraction=float(np.mean(gaps <= 10.0)),
        under_30s_fraction=float(np.mean(gaps <= 30.0)),
    )


def consecutive_gap_cdf(
    source: AnalysisSource, chains: list[AttackChain] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 17: the CDF of gaps between consecutive attacks."""
    if chains is None:
        chains = AnalysisContext.of(source).chains()
    gaps = np.concatenate(
        [np.asarray(c.gaps) for c in chains if c.gaps]
    ) if chains else np.zeros(0)
    if gaps.size == 0:
        raise ValueError("no consecutive-attack gaps to characterise")
    return ecdf(np.maximum(gaps, 0.0))


def chain_timeline(
    source: AnalysisSource, chains: list[AttackChain] | None = None
) -> list[tuple[float, int, str, int]]:
    """Fig 18: one dot per chained attack over time.

    Returns ``(start time, target index, family, magnitude)`` tuples
    sorted by time; consecutive dots of one chain share a target row and
    the marker size is the attack magnitude, as in the paper's plot.
    """
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if chains is None:
        chains = ctx.chains()
    dots: list[tuple[float, int, str, int]] = []
    for chain in chains:
        for i in chain.attack_indices:
            dots.append(
                (
                    float(ds.start[i]),
                    int(ds.target_idx[i]),
                    ds.family_name(int(ds.family_idx[i])),
                    int(ds.magnitude[i]),
                )
            )
    dots.sort()
    return dots
