"""The joined attack dataset: the object every analysis operates on.

The paper joins its three schemas (Botlist, Botnetlist, DDoSattack) into
one comprehensive dataset (§II-A).  :class:`AttackDataset` is that join,
stored columnar (numpy arrays) for the analyses, with row-level accessors
that materialise the Table I records on demand.

Attacks are stored sorted by start time; ``ddos_id`` is the chronological
index.  Participants use a CSR layout: ``participants[part_offsets[i] :
part_offsets[i + 1]]`` are the bot-registry indices involved in attack
``i``.

Ground-truth columns (``collab_group``, ``collab_kind``, ``chain_id``,
``symmetric``) record what the generator staged.  Analyses never read
them — they exist so tests can compare *detected* structure against
*staged* structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..geo.world import World
from ..monitor.schemas import BotnetRecord, BotRecord, DDoSAttackRecord, Protocol
from ..simulation.clock import ObservationWindow

__all__ = ["BotRegistry", "VictimRegistry", "AttackDataset"]


@dataclass
class BotRegistry:
    """All bots across all families, columnar (the joined Botlist).

    >>> from repro import api
    >>> bots = api.generate(scale=0.005).bots
    >>> bots.n_bots == bots.ip.size
    True
    """

    ip: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    country_idx: np.ndarray
    city_idx: np.ndarray
    org_idx: np.ndarray
    asn: np.ndarray
    family_idx: np.ndarray
    botnet_id: np.ndarray
    recruit_ts: np.ndarray

    def __post_init__(self) -> None:
        n = self.ip.size
        for name in ("lat", "lon", "country_idx", "city_idx", "org_idx",
                     "asn", "family_idx", "botnet_id", "recruit_ts"):
            if getattr(self, name).size != n:
                raise ValueError(f"BotRegistry column {name} length mismatch")

    @property
    def n_bots(self) -> int:
        return self.ip.size


@dataclass
class VictimRegistry:
    """All victim IPs, columnar.

    >>> from repro import api
    >>> victims = api.generate(scale=0.005).victims
    >>> victims.n_targets == victims.ip.size
    True
    """

    ip: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    country_idx: np.ndarray
    city_idx: np.ndarray
    org_idx: np.ndarray
    asn: np.ndarray
    owner_family_idx: np.ndarray

    def __post_init__(self) -> None:
        n = self.ip.size
        for name in ("lat", "lon", "country_idx", "city_idx", "org_idx",
                     "asn", "owner_family_idx"):
            if getattr(self, name).size != n:
                raise ValueError(f"VictimRegistry column {name} length mismatch")

    @property
    def n_targets(self) -> int:
        return self.ip.size


@dataclass
class AttackDataset:
    """The full joined dataset over one observation window.

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)
    >>> ds.n_attacks == ds.start.size == ds.end.size
    True
    """

    window: ObservationWindow
    world: World
    families: list[str]                      # index -> family name
    active_families: list[str]
    bots: BotRegistry
    victims: VictimRegistry
    botnets: list[BotnetRecord]
    # Per-attack columns, sorted by start time.
    start: np.ndarray = field(repr=False, default=None)
    end: np.ndarray = field(repr=False, default=None)
    family_idx: np.ndarray = field(repr=False, default=None)
    botnet_id: np.ndarray = field(repr=False, default=None)
    protocol: np.ndarray = field(repr=False, default=None)
    target_idx: np.ndarray = field(repr=False, default=None)
    magnitude: np.ndarray = field(repr=False, default=None)
    part_offsets: np.ndarray = field(repr=False, default=None)
    participants: np.ndarray = field(repr=False, default=None)
    # Ground-truth labels (generator-side; analyses must not read them).
    truth_collab_group: np.ndarray = field(repr=False, default=None)
    truth_collab_kind: np.ndarray = field(repr=False, default=None)
    truth_chain_id: np.ndarray = field(repr=False, default=None)
    truth_symmetric: np.ndarray = field(repr=False, default=None)
    truth_residual_km: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        n = self.start.size
        for name in ("end", "family_idx", "botnet_id", "protocol", "target_idx",
                     "magnitude", "truth_collab_group", "truth_collab_kind",
                     "truth_chain_id", "truth_symmetric", "truth_residual_km"):
            col = getattr(self, name)
            if col is None or col.size != n:
                raise ValueError(f"attack column {name} missing or length mismatch")
        if self.part_offsets is None or self.part_offsets.size != n + 1:
            raise ValueError("part_offsets must have length n_attacks + 1")
        if n and np.any(np.diff(self.start) < 0):
            raise ValueError("attacks must be sorted by start time")
        if np.any(self.end < self.start):
            raise ValueError("attack end precedes start")
        self._family_index = {name: i for i, name in enumerate(self.families)}

    def __getstate__(self) -> dict:
        # The attached AnalysisContext (see context.AnalysisContext.of)
        # is a derived cache and must not travel with the pickle.
        state = self.__dict__.copy()
        state.pop("_analysis_context", None)
        return state

    # -- basic shape -----------------------------------------------------

    @property
    def n_attacks(self) -> int:
        return self.start.size

    @property
    def durations(self) -> np.ndarray:
        return self.end - self.start

    def family_id(self, name: str) -> int:
        """Index of ``name`` in :attr:`families` (raises ``KeyError``)."""
        try:
            return self._family_index[name]
        except KeyError:
            raise KeyError(
                f"unknown family {name!r}; known: {', '.join(self.families)}"
            ) from None

    def family_name(self, idx: int) -> str:
        """Family name for a :attr:`family_idx` value."""
        return self.families[idx]

    def attacks_of(self, family: str) -> np.ndarray:
        """Attack indices (chronological) launched by ``family``.

        Served from the dataset's shared :class:`AnalysisContext`, whose
        one-pass grouped index replaces a full-column scan per call.
        """
        from .context import AnalysisContext

        return AnalysisContext.of(self).family_attacks(family)

    def participants_of(self, attack_index: int) -> np.ndarray:
        """Bot-registry indices participating in one attack."""
        lo = self.part_offsets[attack_index]
        hi = self.part_offsets[attack_index + 1]
        return self.participants[lo:hi]

    # -- row-level accessors (Table I views) -------------------------------

    def attack(self, attack_index: int) -> DDoSAttackRecord:
        """Materialise one DDoSattack row."""
        i = int(attack_index)
        if not 0 <= i < self.n_attacks:
            raise IndexError(f"attack index {i} out of range [0, {self.n_attacks})")
        t = int(self.target_idx[i])
        world = self.world
        return DDoSAttackRecord(
            ddos_id=i,
            botnet_id=int(self.botnet_id[i]),
            family=self.families[int(self.family_idx[i])],
            category=Protocol(int(self.protocol[i])),
            target_ip=int(self.victims.ip[t]),
            timestamp=float(self.start[i]),
            end_time=float(self.end[i]),
            asn=int(self.victims.asn[t]),
            country_code=world.countries[int(self.victims.country_idx[t])].code,
            city=world.cities[int(self.victims.city_idx[t])].name,
            organization=world.organizations[int(self.victims.org_idx[t])].name,
            lat=float(self.victims.lat[t]),
            lon=float(self.victims.lon[t]),
            magnitude=int(self.magnitude[i]),
        )

    def iter_attacks(self, family: str | None = None) -> Iterator[DDoSAttackRecord]:
        """Lazily yield attack records, optionally for one family."""
        indices = range(self.n_attacks) if family is None else self.attacks_of(family)
        for i in indices:
            yield self.attack(int(i))

    def bot(self, bot_index: int) -> BotRecord:
        """Materialise one Botlist row."""
        b = int(bot_index)
        if not 0 <= b < self.bots.n_bots:
            raise IndexError(f"bot index {b} out of range [0, {self.bots.n_bots})")
        world = self.world
        return BotRecord(
            bot_index=b,
            ip=int(self.bots.ip[b]),
            botnet_id=int(self.bots.botnet_id[b]),
            family=self.families[int(self.bots.family_idx[b])],
            country_code=world.countries[int(self.bots.country_idx[b])].code,
            city=world.cities[int(self.bots.city_idx[b])].name,
            organization=world.organizations[int(self.bots.org_idx[b])].name,
            asn=int(self.bots.asn[b]),
            lat=float(self.bots.lat[b]),
            lon=float(self.bots.lon[b]),
            recruited_at=float(self.bots.recruit_ts[b]),
            left_at=float(self.window.end),
        )

    # -- common derived views ----------------------------------------------

    def target_country_codes(self) -> np.ndarray:
        """Per-attack ISO2 code of the victim country (object array)."""
        codes = np.array([c.code for c in self.world.countries])
        return codes[self.victims.country_idx[self.target_idx]]

    def participant_coords(self, attack_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(lats, lons) of one attack's participating bots."""
        idx = self.participants_of(attack_index)
        return self.bots.lat[idx], self.bots.lon[idx]

    def attack_columns_equal(self, other: "AttackDataset") -> bool:
        """Exact equality of the joined attack table against ``other``.

        Compares the observation window, the family index space, every
        per-attack column (including the CSR participant layout) and the
        victim registry.  Registries built by different code paths (e.g.
        a streaming build vs a scratch batch build) must agree cell for
        cell for this to hold — the streaming parity tests rely on it.
        """
        if (self.window.start, self.window.end) != (other.window.start, other.window.end):
            return False
        if self.families != other.families or self.active_families != other.active_families:
            return False
        attack_cols = ("start", "end", "family_idx", "botnet_id", "protocol",
                       "target_idx", "magnitude", "part_offsets", "participants")
        if any(not np.array_equal(getattr(self, c), getattr(other, c)) for c in attack_cols):
            return False
        victim_cols = ("ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn")
        return all(
            np.array_equal(getattr(self.victims, c), getattr(other.victims, c))
            for c in victim_cols
        )

    def subset(self, attack_indices: np.ndarray) -> "AttackDataset":
        """A new dataset restricted to the given attacks (sorted copy).

        Registries and world are shared, not copied; ground-truth labels
        travel with the attacks.
        """
        idx = np.asarray(attack_indices, dtype=np.int64)
        idx = idx[np.argsort(self.start[idx], kind="stable")]
        counts = (self.part_offsets[idx + 1] - self.part_offsets[idx]).astype(np.int64)
        offsets = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        parts = np.empty(int(offsets[-1]), dtype=self.participants.dtype)
        for k, i in enumerate(idx):
            parts[offsets[k] : offsets[k + 1]] = self.participants_of(int(i))
        return AttackDataset(
            window=self.window,
            world=self.world,
            families=self.families,
            active_families=self.active_families,
            bots=self.bots,
            victims=self.victims,
            botnets=self.botnets,
            start=self.start[idx],
            end=self.end[idx],
            family_idx=self.family_idx[idx],
            botnet_id=self.botnet_id[idx],
            protocol=self.protocol[idx],
            target_idx=self.target_idx[idx],
            magnitude=self.magnitude[idx],
            part_offsets=offsets,
            participants=parts,
            truth_collab_group=self.truth_collab_group[idx],
            truth_collab_kind=self.truth_collab_kind[idx],
            truth_chain_id=self.truth_chain_id[idx],
            truth_symmetric=self.truth_symmetric[idx],
            truth_residual_km=self.truth_residual_km[idx],
        )
