"""Attack-interval analyses (§III-B, Figs 3-5).

The paper defines an attack interval like an inter-arrival time: the gap
between two consecutive attacks launched by the same family (or, for the
"all" curve, by anyone).  Key characterizations implemented here:

* :func:`attack_intervals` / :func:`family_intervals` — the raw gaps;
* :func:`interval_summary` — the quoted statistics (mean 3,060 s, 80 %
  under 1,081 s, longest 59 days, >50 % simultaneous);
* :func:`simultaneous_attacks` — the split of simultaneous events into
  single-family vs multi-family occurrences and the top family pairs
  (Dirtjumper+Blackenergy and Dirtjumper+Pandora in the paper);
* :func:`interval_clusters` — Fig 4's bucketed view with the shared
  6-7 min / 20-40 min / 2-3 h modes;
* :func:`family_interval_cdf` — Fig 5's per-family CDF.

All entry points accept either an :class:`AttackDataset` or an
:class:`AnalysisContext`; the gap arrays are memoized on the context so
every consumer shares one copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .context import AnalysisContext, AnalysisSource
from .stats import SeriesSummary, ecdf, summarize

__all__ = [
    "attack_intervals",
    "family_intervals",
    "IntervalSummary",
    "interval_summary",
    "SimultaneousReport",
    "simultaneous_attacks",
    "INTERVAL_BUCKETS",
    "interval_clusters",
    "family_interval_cdf",
]


def attack_intervals(source: AnalysisSource) -> np.ndarray:
    """Gaps between consecutive attacks across all families (Fig 3 "all")."""
    return AnalysisContext.of(source).attack_intervals()


def family_intervals(
    source: AnalysisSource, family: str, include_simultaneous: bool = True
) -> np.ndarray:
    """Gaps between consecutive attacks of one family.

    ``include_simultaneous=False`` drops zero gaps, matching Fig 4's
    pre-processing ("simultaneous attacks are eliminated").
    """
    return AnalysisContext.of(source).family_intervals(family, include_simultaneous)


@dataclass(frozen=True)
class IntervalSummary:
    """The §III-B headline interval statistics."""

    stats: SeriesSummary
    simultaneous_fraction: float
    p80_seconds: float
    longest_days: float


def interval_summary(source: AnalysisSource, family: str | None = None) -> IntervalSummary:
    """Summarise intervals across all attacks or for one family."""
    ctx = AnalysisContext.of(source)
    gaps = ctx.attack_intervals() if family is None else ctx.family_intervals(family)
    if gaps.size == 0:
        raise ValueError("not enough attacks to compute intervals")
    stats = summarize(gaps)
    return IntervalSummary(
        stats=stats,
        simultaneous_fraction=float(np.mean(gaps == 0)),
        p80_seconds=stats.p80,
        longest_days=stats.maximum / 86400.0,
    )


@dataclass(frozen=True)
class SimultaneousReport:
    """§III-B: simultaneous attack events and who co-occurs with whom."""

    single_family_events: int
    multi_family_events: int
    #: families participating in single-family simultaneous events.
    single_family_names: list[str]
    #: (family A, family B) -> number of co-occurrences, sorted descending.
    pair_counts: list[tuple[tuple[str, str], int]]


def simultaneous_attacks(
    source: AnalysisSource, tolerance: float = 0.0
) -> SimultaneousReport:
    """Group attacks by start time and classify simultaneous events.

    An *event* is a set of at least two attacks starting at the same time
    (within ``tolerance`` seconds).  Events whose attacks all belong to
    one family count as single-family; otherwise every unordered family
    pair present in the event is credited one co-occurrence.
    """
    ctx = AnalysisContext.of(source)
    if tolerance == 0.0:
        return ctx.view(
            ("simultaneous_attacks",), lambda: _simultaneous_attacks(ctx.dataset, 0.0)
        )
    return _simultaneous_attacks(ctx.dataset, tolerance)


def _simultaneous_attacks(ds, tolerance: float) -> SimultaneousReport:
    if ds.n_attacks == 0:
        return SimultaneousReport(0, 0, [], [])
    n = ds.n_attacks
    starts = ds.start
    order = np.argsort(starts, kind="stable")
    sorted_starts = starts[order]
    # Sweep-line event labelling: a new event wherever the gap exceeds
    # the tolerance; per-event distinct families via one (event, family)
    # dedupe pass.  Only multi-family events (a handful) reach Python.
    new_event = np.empty(n, dtype=bool)
    new_event[0] = True
    new_event[1:] = np.diff(sorted_starts) > tolerance
    event_id = np.cumsum(new_event) - 1
    n_events = int(event_id[-1]) + 1
    event_sizes = np.bincount(event_id, minlength=n_events)

    fams = ds.family_idx[order]
    o = np.lexsort((fams, event_id))
    e_sorted = event_id[o]
    f_sorted = fams[o]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = (e_sorted[1:] != e_sorted[:-1]) | (f_sorted[1:] != f_sorted[:-1])
    u_event = e_sorted[first]
    u_fam = f_sorted[first]
    fams_per_event = np.bincount(u_event, minlength=n_events)

    eligible = event_sizes >= 2
    single_mask = eligible & (fams_per_event == 1)
    multi_mask = eligible & (fams_per_event >= 2)

    single_families = {
        ds.family_name(int(f)) for f in np.unique(u_fam[single_mask[u_event]])
    }
    pair_counts: dict[tuple[str, str], int] = {}
    u_offsets = np.concatenate(([0], np.cumsum(fams_per_event)))
    for e in np.flatnonzero(multi_mask):
        names = sorted(
            ds.family_name(int(f)) for f in u_fam[u_offsets[e] : u_offsets[e + 1]]
        )
        for a, b in combinations(names, 2):
            pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    ranked = sorted(pair_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return SimultaneousReport(
        single_family_events=int(np.sum(single_mask)),
        multi_family_events=int(np.sum(multi_mask)),
        single_family_names=sorted(single_families),
        pair_counts=ranked,
    )


#: Fig 4's interval buckets.  The paper highlights 6-7 min, 20-40 min and
#: 2-3 h as the modes shared across families; the remaining buckets cover
#: the rest of the axis up to months.
INTERVAL_BUCKETS: list[tuple[str, float, float]] = [
    ("<1 min", 0.0, 60.0),
    ("1-6 min", 60.0, 360.0),
    ("6-7 min", 360.0, 420.0),
    ("7-20 min", 420.0, 1200.0),
    ("20-40 min", 1200.0, 2400.0),
    ("40 min-2 h", 2400.0, 7200.0),
    ("2-3 h", 7200.0, 10800.0),
    ("3-24 h", 10800.0, 86400.0),
    ("1-7 days", 86400.0, 604800.0),
    (">1 week", 604800.0, float("inf")),
]


def interval_clusters(source: AnalysisSource, family: str) -> dict[str, int]:
    """Fig 4: bucketed non-simultaneous interval counts for one family."""
    gaps = family_intervals(source, family, include_simultaneous=False)
    out: dict[str, int] = {}
    for label, lo, hi in INTERVAL_BUCKETS:
        out[label] = int(np.sum((gaps >= lo) & (gaps < hi)))
    return out


def family_interval_cdf(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 5: the per-family interval CDF (simultaneous included)."""
    gaps = family_intervals(source, family, include_simultaneous=True)
    if gaps.size == 0:
        raise ValueError(f"family {family!r} has fewer than two attacks")
    return ecdf(gaps)
