"""Target analyses: country- and organization-level victims (§IV-B).

* Table V — per-family victim-country breakdown with top-5 lists;
* the global top-5 target countries (USA, Russia, Germany, Ukraine, the
  Netherlands in the paper);
* Fig 14 — organization-level affinity: attacks per victim organization
  for one family in one calendar month, with map coordinates.

The victim country/organization marginals are memoized on the shared
:class:`AnalysisContext` and reused across Table V, Fig 14 and the
report renderers.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

import numpy as np

from .context import AnalysisContext, AnalysisSource

__all__ = [
    "CountryBreakdown",
    "country_breakdown",
    "top_target_countries",
    "OrganizationSpot",
    "organization_affinity",
    "victim_org_types",
]


@dataclass(frozen=True)
class CountryBreakdown:
    """Table V row group for one family."""

    family: str
    n_countries: int
    #: (ISO2 code, attack count) sorted by count descending.
    top: list[tuple[str, int]]
    total_attacks: int


def country_breakdown(
    source: AnalysisSource, family: str, top_n: int = 5
) -> CountryBreakdown:
    """Table V: victim countries of one family with its top-``top_n`` list."""
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if ctx.family_attacks(family).size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    uniq, counts = ctx.family_target_country_counts(family)
    order = np.argsort(-counts, kind="stable")
    top = [
        (ds.world.countries[int(uniq[i])].code, int(counts[i]))
        for i in order[:top_n]
    ]
    return CountryBreakdown(
        family=family,
        n_countries=int(uniq.size),
        top=top,
        total_attacks=int(ctx.family_attacks(family).size),
    )


def top_target_countries(source: AnalysisSource, top_n: int = 5) -> list[tuple[str, int]]:
    """The globally most-attacked countries (§IV-B1's USA/Russia/... list)."""
    ctx = AnalysisContext.of(source)
    uniq, counts = ctx.target_country_counts()
    order = np.argsort(-counts, kind="stable")
    return [
        (ctx.dataset.world.countries[int(uniq[i])].code, int(counts[i]))
        for i in order[:top_n]
    ]


@dataclass(frozen=True)
class OrganizationSpot:
    """One marker of the Fig 14 map: a victim organization under attack."""

    organization: str
    org_type: str
    country_code: str
    city: str
    lat: float
    lon: float
    attack_count: int
    n_targets: int


def organization_affinity(
    source: AnalysisSource,
    family: str,
    year: int | None = None,
    month: int | None = None,
) -> list[OrganizationSpot]:
    """Fig 14: attacks per victim organization (optionally one month).

    The paper plots Pandora's February 2013 hotspots; pass ``year=2013,
    month=2`` to reproduce that view.  Spots are sorted by attack count
    descending, mapped to the organization's home city coordinates.
    """
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    if (year is None) != (month is None):
        raise ValueError("pass both year and month, or neither")
    if year is not None:
        month_tags = np.array(
            [
                (d.year, d.month)
                for d in (
                    datetime.fromtimestamp(ts, tz=timezone.utc) for ts in ds.start[idx]
                )
            ]
        )
        keep = (month_tags[:, 0] == year) & (month_tags[:, 1] == month)
        idx = idx[keep]
        if idx.size == 0:
            return []
    targets = ds.target_idx[idx]
    orgs = ds.victims.org_idx[targets]
    uniq, counts = np.unique(orgs, return_counts=True)
    spots = []
    for org_index, count in zip(uniq, counts):
        org = ds.world.organizations[int(org_index)]
        city = ds.world.cities[org.city_index]
        country = ds.world.countries[org.country_index]
        n_targets = int(np.unique(targets[orgs == org_index]).size)
        spots.append(
            OrganizationSpot(
                organization=org.name,
                org_type=org.org_type,
                country_code=country.code,
                city=city.name,
                lat=city.lat,
                lon=city.lon,
                attack_count=int(count),
                n_targets=n_targets,
            )
        )
    spots.sort(key=lambda s: (-s.attack_count, s.organization))
    return spots


def victim_org_types(source: AnalysisSource) -> dict[str, int]:
    """Attacks per victim-organization *type* (§IV-B2's finding that
    hosting services, clouds, data centers, registrars and backbones
    absorb most attacks)."""
    return AnalysisContext.of(source).victim_org_type_counts()


def _victim_org_types(ctx: AnalysisContext) -> dict[str, int]:
    # Built from the memoized per-organization marginal so the sharded
    # merge (which seeds that marginal) and the unsharded build walk the
    # same ascending-org-index order into the same dict.
    uniq, counts = ctx.target_org_counts()
    out: dict[str, int] = {}
    for org_index, count in zip(uniq, counts):
        org_type = ctx.dataset.world.organizations[int(org_index)].org_type
        out[org_type] = out.get(org_type, 0) + int(count)
    return out
