"""Weekly source shift patterns (§IV-A, Fig 8).

The paper aggregates, per family and per week, the bots involved in DDoS
attacks, and tracks how that footprint *shifts*: how many bots appear in
countries the family already attacked from, versus countries that are
new for the family.  The strong affinity to a fixed country set — with
new-country shifts an order of magnitude rarer — is the basis of the
source-prediction claim.

Per-family series are memoized on the shared :class:`AnalysisContext`,
so Fig 8's stacked view and its per-family rows share one computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .context import AnalysisContext, AnalysisSource

__all__ = ["WeeklyShift", "weekly_shift", "aggregate_shift"]


@dataclass(frozen=True)
class WeeklyShift:
    """Fig 8 series for one family."""

    family: str
    weeks: np.ndarray                  # week indices with any activity
    bots_existing: np.ndarray          # bots attacking from already-seen countries
    bots_new: np.ndarray               # bots attacking from newly-seen countries
    new_countries: np.ndarray          # number of new countries entered that week

    @property
    def total_existing(self) -> int:
        return int(self.bots_existing.sum())

    @property
    def total_new(self) -> int:
        return int(self.bots_new.sum())

    @property
    def affinity_ratio(self) -> float:
        """existing-country bots per new-country bot (∞-safe)."""
        new = self.total_new
        return float(self.total_existing) / new if new else float("inf")


def weekly_shift(source: AnalysisSource, family: str) -> WeeklyShift:
    """Compute the Fig 8 shift series for one family (memoized).

    Week 0 establishes the family's initial footprint: every bot of the
    first active week counts as "existing" (the paper's baseline week).
    """
    return AnalysisContext.of(source).weekly_shift(family)


def _weekly_pairs(
    ctx: AnalysisContext, family: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The mergeable half of the weekly shift kernel.

    Returns ``(weeks_u, u_week, u_bot)``: the sorted week indices with
    any attack (participant-less weeks included) and the unique
    (week, bot) participation pairs sorted by week then bot.  All three
    are empty for a family with no attacks — unlike the finished shift,
    this half never raises, so per-shard results union cleanly: the
    sharded merge concatenates parts, re-sorts, and dedupes to exactly
    the global pair table.
    """
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0, dtype=np.int64)
    weeks_of_attack = ((ds.start[idx] - ds.window.start) // (7 * 86400)).astype(np.int64)

    offsets, flat = ctx.family_participants(family)
    counts = np.diff(offsets)
    week_rep = np.repeat(weeks_of_attack, counts)

    # Unique (week, bot) pairs: a bot counts once per active week.
    o = np.lexsort((flat, week_rep))
    w_sorted = week_rep[o]
    b_sorted = flat[o]
    first = np.empty(w_sorted.size, dtype=bool)
    if first.size:
        first[0] = True
        first[1:] = (w_sorted[1:] != w_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    return np.unique(weeks_of_attack), w_sorted[first], b_sorted[first]


def _weekly_shift(ctx: AnalysisContext, family: str) -> WeeklyShift:
    """Sweep-line form of the weekly shift: one pass over (week, bot) pairs.

    The per-week loop with an accumulating ``seen`` set is equivalent to
    labelling every country with the week it first appears: a unique
    (week, bot) participation counts as "existing" when its country's
    first week is strictly earlier (or the week is the family's baseline
    week), "new" otherwise.  Counts are integers, so this is exactly
    equal to :func:`_reference_weekly_shift` (pinned by the parity
    tests).
    """
    weeks_u, u_week, u_bot = ctx.weekly_shift_pairs(family)
    return _finish_weekly_shift(ctx.dataset, family, weeks_u, u_week, u_bot)


def _finish_weekly_shift(
    ds, family: str, weeks_u: np.ndarray, u_week: np.ndarray, u_bot: np.ndarray
) -> WeeklyShift:
    """Integer reduction from (week, bot) pairs to the Fig 8 series."""
    if weeks_u.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    u_country = ds.bots.country_idx[u_bot]

    # The baseline is the first week with any participants: the loop
    # form's ``seen`` set stays empty across participant-less weeks.
    baseline = u_week[0] if u_week.size else weeks_u[0]
    n_weeks = weeks_u.size

    # First week each present country appears in.
    n_countries = int(u_country.max()) + 1 if u_country.size else 0
    first_week = np.full(n_countries, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first_week, u_country, u_week)

    known = (u_week == baseline) | (first_week[u_country] < u_week)
    wpos = np.searchsorted(weeks_u, u_week)
    bots_existing = np.bincount(wpos[known], minlength=n_weeks)
    bots_new = np.bincount(wpos[~known], minlength=n_weeks)

    present = np.flatnonzero(first_week < np.iinfo(np.int64).max)
    fresh_weeks = first_week[present]
    fresh_weeks = fresh_weeks[fresh_weeks > baseline]
    new_countries = np.bincount(
        np.searchsorted(weeks_u, fresh_weeks), minlength=n_weeks
    )
    return WeeklyShift(
        family=family,
        weeks=weeks_u.astype(np.int64),
        bots_existing=bots_existing.astype(np.int64),
        bots_new=bots_new.astype(np.int64),
        new_countries=new_countries.astype(np.int64),
    )


def _reference_weekly_shift(ctx: AnalysisContext, family: str) -> WeeklyShift:
    """Reference per-week loop (pre-vectorization); kept for parity tests."""
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    weeks_of_attack = ((ds.start[idx] - ds.window.start) // (7 * 86400)).astype(np.int64)

    weeks: list[int] = []
    existing_counts: list[int] = []
    new_counts: list[int] = []
    new_country_counts: list[int] = []
    seen: set[int] = set()
    for week in np.unique(weeks_of_attack):
        attack_ids = idx[weeks_of_attack == week]
        bots = np.unique(
            np.concatenate([ds.participants_of(int(i)) for i in attack_ids])
        )
        countries = ds.bots.country_idx[bots]
        if seen:
            known = np.isin(countries, list(seen))
        else:
            known = np.ones(countries.size, dtype=bool)  # baseline week
        fresh = {int(c) for c in np.unique(countries[~known])}
        weeks.append(int(week))
        existing_counts.append(int(np.sum(known)))
        new_counts.append(int(np.sum(~known)))
        new_country_counts.append(len(fresh))
        seen.update(int(c) for c in np.unique(countries))
    return WeeklyShift(
        family=family,
        weeks=np.asarray(weeks, dtype=np.int64),
        bots_existing=np.asarray(existing_counts, dtype=np.int64),
        bots_new=np.asarray(new_counts, dtype=np.int64),
        new_countries=np.asarray(new_country_counts, dtype=np.int64),
    )


def aggregate_shift(
    source: AnalysisSource, families: list[str] | None = None
) -> WeeklyShift:
    """Fig 8's stacked view: shifts summed over families, week by week."""
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    if families is None:
        families = [f for f in ds.active_families if ctx.family_attacks(f).size]
    if not families:
        raise ValueError("no active families with attacks")
    per_family = [ctx.weekly_shift(f) for f in families]
    n_weeks = ds.window.n_weeks + 1
    existing = np.zeros(n_weeks, dtype=np.int64)
    new = np.zeros(n_weeks, dtype=np.int64)
    new_countries = np.zeros(n_weeks, dtype=np.int64)
    for shift in per_family:
        existing[shift.weeks] += shift.bots_existing
        new[shift.weeks] += shift.bots_new
        new_countries[shift.weeks] += shift.new_countries
    active = np.flatnonzero((existing > 0) | (new > 0))
    return WeeklyShift(
        family="<all>",
        weeks=active,
        bots_existing=existing[active],
        bots_new=new[active],
        new_countries=new_countries[active],
    )
