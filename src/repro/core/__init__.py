"""The paper's contribution: DDoS attack characterization and analysis.

Submodules map to the paper's sections:

* :mod:`overview` — §II-D/§III-A (Tables II-III, Figs 1-2)
* :mod:`intervals` — §III-B (Figs 3-5)
* :mod:`durations` — §III-C (Figs 6-7)
* :mod:`shift`, :mod:`geolocation`, :mod:`prediction` — §IV-A
  (Figs 8-13, Table IV)
* :mod:`targets` — §IV-B (Table V, Fig 14)
* :mod:`collaboration`, :mod:`consecutive` — §V (Table VI, Figs 15-18)
* :mod:`report` — plain-text renderings of the tables
"""

from . import (
    campaigns,
    collaboration,
    consecutive,
    durations,
    geolocation,
    intervals,
    overview,
    prediction,
    report,
    sanity,
    shift,
    stats,
    targets,
)
from .dataset import AttackDataset, BotRegistry, VictimRegistry

__all__ = [
    "AttackDataset",
    "BotRegistry",
    "VictimRegistry",
    "campaigns",
    "collaboration",
    "consecutive",
    "durations",
    "geolocation",
    "intervals",
    "overview",
    "prediction",
    "report",
    "sanity",
    "shift",
    "stats",
    "targets",
]
