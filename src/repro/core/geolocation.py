"""Source geolocation analyses (§IV-A, Figs 8-11).

For every attack, the paper takes the geographic centre of the
participating bots, sums the *signed* Haversine distances from that
centre (east/north positive, west/south negative) and uses the absolute
value of the sum — the *geolocation distribution value* — to profile how
dispersed, and how symmetric, a family's firepower is.  A (near-)zero
value means the bots are geographically symmetric around their centre.

Everything here is vectorised over the dataset's CSR participant layout;
the full 50k-attack dataset (≈2.7 M participations) profiles in well
under a second.  The per-family dispersion series is memoized on the
:class:`AnalysisContext`, so the profile, CDF, histogram and the ARIMA
predictor all share one computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.haversine import EARTH_RADIUS_KM
from .context import AnalysisContext, AnalysisSource
from .stats import ecdf

__all__ = [
    "SYMMETRY_TOLERANCE_KM",
    "attack_dispersions",
    "snapshot_dispersions",
    "DispersionProfile",
    "dispersion_profile",
    "dispersion_cdf",
    "dispersion_histogram",
]

#: Dispersion values below this are treated as "zero" (symmetric).  The
#: paper's histograms bin distances in km; sub-tolerance residuals land
#: in the zero bin.
SYMMETRY_TOLERANCE_KM = 100.0


def _segment_centers(
    lats_r: np.ndarray, lons_r: np.ndarray, offsets: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Geographic centre per CSR segment (3-D unit-vector mean)."""
    x = np.cos(lats_r) * np.cos(lons_r)
    y = np.cos(lats_r) * np.sin(lons_r)
    z = np.sin(lats_r)
    starts = offsets[:-1]
    sx = np.add.reduceat(x, starts) / counts
    sy = np.add.reduceat(y, starts) / counts
    sz = np.add.reduceat(z, starts) / counts
    norm = np.sqrt(sx * sx + sy * sy + sz * sz)
    norm = np.maximum(norm, 1e-12)
    lat_c = np.arcsin(np.clip(sz / norm, -1.0, 1.0))
    lon_c = np.arctan2(sy, sx)
    return lat_c, lon_c


def attack_dispersions(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-attack dispersion values for one family, in time order.

    Returns ``(start timestamps, dispersion values in km)``; both arrays
    are aligned and sorted chronologically.  Memoized per family on the
    shared context.
    """
    return AnalysisContext.of(source).attack_dispersions(family)


def _attack_dispersions(
    ctx: AnalysisContext, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """The raw computation behind :func:`attack_dispersions`."""
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    offsets, flat = ctx.family_participants(family)
    counts = np.diff(offsets)

    all_lats_r, all_lons_r = ctx.bot_coords_radians()
    lats_r = all_lats_r[flat]
    lons_r = all_lons_r[flat]
    lat_c, lon_c = _segment_centers(lats_r, lons_r, offsets, counts)

    # Broadcast each segment's centre back onto its participants.
    seg = np.repeat(np.arange(idx.size), counts)
    clat = lat_c[seg]
    clon = lon_c[seg]
    dlat = lats_r - clat
    dlon = lons_r - clon
    a = np.sin(dlat / 2.0) ** 2 + np.cos(clat) * np.cos(lats_r) * np.sin(dlon / 2.0) ** 2
    dist = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    # Paper's sign convention: east positive, west negative; ties by north/south.
    wrapped = np.mod(dlon + np.pi, 2.0 * np.pi) - np.pi
    sign = np.sign(wrapped)
    sign = np.where(sign == 0, np.sign(dlat), sign)
    sums = np.add.reduceat(sign * dist, offsets[:-1])
    values = np.abs(sums)
    # Single-bot attacks have no dispersion by definition.
    values[counts < 2] = 0.0
    return ds.start[idx], values


def snapshot_dispersions(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Dispersion per hourly monitoring snapshot (the §II-B view).

    The paper's collection produces hourly reports whose bot sets are
    cumulative over 24 hours; this computes the geolocation-distribution
    value of each such snapshot instead of each attack.  Returns aligned
    ``(snapshot timestamps, dispersion values)`` for snapshots with at
    least two bots.
    """
    from ..geo.haversine import dispersion_km
    from ..monitor.snapshots import iter_hourly_snapshots

    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    offsets, flat = ctx.family_participants(family)
    times: list[float] = []
    values: list[float] = []
    for snap in iter_hourly_snapshots(ds.start[idx], offsets, flat, ds.window, family):
        if snap.n_bots < 2:
            continue
        times.append(snap.timestamp)
        values.append(
            dispersion_km(ds.bots.lat[snap.bot_indices], ds.bots.lon[snap.bot_indices])
        )
    return np.asarray(times), np.asarray(values)


@dataclass(frozen=True)
class DispersionProfile:
    """Fig 9-11 headline numbers for one family."""

    family: str
    n_attacks: int
    symmetric_fraction: float
    mean_km: float
    std_km: float
    asymmetric_mean_km: float
    asymmetric_std_km: float


def dispersion_profile(
    source: AnalysisSource, family: str, tolerance_km: float = SYMMETRY_TOLERANCE_KM
) -> DispersionProfile:
    """Summarise a family's dispersion values.

    ``symmetric_fraction`` is the share of attacks with dispersion below
    ``tolerance_km`` (the paper reports 76.7 % for Pandora and 89.5 % for
    Blackenergy); the asymmetric statistics cover the rest — what
    Figs 10-11 plot after "removing the symmetric distributions".
    """
    _, values = attack_dispersions(source, family)
    symmetric = values < tolerance_km
    asym = values[~symmetric]
    return DispersionProfile(
        family=family,
        n_attacks=int(values.size),
        symmetric_fraction=float(np.mean(symmetric)),
        mean_km=float(np.mean(values)),
        std_km=float(np.std(values)),
        asymmetric_mean_km=float(np.mean(asym)) if asym.size else 0.0,
        asymmetric_std_km=float(np.std(asym)) if asym.size else 0.0,
    )


def dispersion_cdf(source: AnalysisSource, family: str) -> tuple[np.ndarray, np.ndarray]:
    """Fig 9: the CDF of a family's dispersion values."""
    _, values = attack_dispersions(source, family)
    return ecdf(values)


def dispersion_histogram(
    source: AnalysisSource,
    family: str,
    bin_km: float = 500.0,
    tolerance_km: float = SYMMETRY_TOLERANCE_KM,
) -> tuple[np.ndarray, np.ndarray]:
    """Figs 10-11: histogram of *asymmetric* dispersion values.

    Returns ``(bin left edges, counts)``; symmetric (sub-tolerance)
    values are removed first, as in the paper.
    """
    if bin_km <= 0:
        raise ValueError(f"bin_km must be positive, got {bin_km}")
    _, values = attack_dispersions(source, family)
    asym = values[values >= tolerance_km]
    if asym.size == 0:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    n_bins = int(np.ceil(asym.max() / bin_km)) + 1
    edges = np.arange(n_bins + 1) * bin_km
    counts, _ = np.histogram(asym, bins=edges)
    return edges[:-1], counts
