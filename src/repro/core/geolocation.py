"""Source geolocation analyses (§IV-A, Figs 8-11).

For every attack, the paper takes the geographic centre of the
participating bots, sums the *signed* Haversine distances from that
centre (east/north positive, west/south negative) and uses the absolute
value of the sum — the *geolocation distribution value* — to profile how
dispersed, and how symmetric, a family's firepower is.  A (near-)zero
value means the bots are geographically symmetric around their centre.

Everything here is vectorised over the dataset's CSR participant layout;
the full 50k-attack dataset (≈2.7 M participations) profiles in well
under a second.  The per-family dispersion series is memoized on the
:class:`AnalysisContext`, so the profile, CDF, histogram and the ARIMA
predictor all share one computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.haversine import EARTH_RADIUS_KM
from .context import AnalysisContext, AnalysisSource
from .stats import ecdf

__all__ = [
    "SYMMETRY_TOLERANCE_KM",
    "attack_dispersions",
    "snapshot_dispersions",
    "DispersionProfile",
    "dispersion_profile",
    "dispersion_cdf",
    "dispersion_histogram",
]

#: Dispersion values below this are treated as "zero" (symmetric).  The
#: paper's histograms bin distances in km; sub-tolerance residuals land
#: in the zero bin.
SYMMETRY_TOLERANCE_KM = 100.0


def _segment_centers(
    lats_r: np.ndarray, lons_r: np.ndarray, offsets: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Geographic centre per CSR segment (3-D unit-vector mean)."""
    x = np.cos(lats_r) * np.cos(lons_r)
    y = np.cos(lats_r) * np.sin(lons_r)
    z = np.sin(lats_r)
    # Zero-count segments (attacks with no recorded participants, e.g.
    # on ingested attack-table-only datasets) would index ``reduceat``
    # out of range and divide by zero.  The clamps keep the kernel total
    # — positive-count segments are untouched, clamped ones produce
    # meaningless centres that every caller masks via ``counts < 2``.
    starts = np.minimum(offsets[:-1], lats_r.size - 1)
    denom = np.maximum(counts, 1)
    sx = np.add.reduceat(x, starts) / denom
    sy = np.add.reduceat(y, starts) / denom
    sz = np.add.reduceat(z, starts) / denom
    norm = np.sqrt(sx * sx + sy * sy + sz * sz)
    norm = np.maximum(norm, 1e-12)
    lat_c = np.arcsin(np.clip(sz / norm, -1.0, 1.0))
    lon_c = np.arctan2(sy, sx)
    return lat_c, lon_c


def _segment_dispersions(
    lats_r: np.ndarray, lons_r: np.ndarray, offsets: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Geolocation-distribution value per CSR segment (radian coords).

    The shared kernel behind the per-attack and per-snapshot dispersion
    analyses: segment centres via the 3-D unit-vector mean, a broadcast
    signed haversine from every point to its segment's centre, and one
    ``np.add.reduceat`` rollup of the signed sums.
    """
    if counts.size == 0 or lats_r.size == 0:
        return np.zeros(counts.size)
    lat_c, lon_c = _segment_centers(lats_r, lons_r, offsets, counts)

    # Broadcast each segment's centre back onto its participants.
    seg = np.repeat(np.arange(counts.size), counts)
    clat = lat_c[seg]
    clon = lon_c[seg]
    dlat = lats_r - clat
    dlon = lons_r - clon
    a = np.sin(dlat / 2.0) ** 2 + np.cos(clat) * np.cos(lats_r) * np.sin(dlon / 2.0) ** 2
    dist = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    # Paper's sign convention: east positive, west negative; ties by north/south.
    wrapped = np.mod(dlon + np.pi, 2.0 * np.pi) - np.pi
    sign = np.sign(wrapped)
    sign = np.where(sign == 0, np.sign(dlat), sign)
    # Same zero-count clamp as in the centre kernel (see above).
    sums = np.add.reduceat(sign * dist, np.minimum(offsets[:-1], lats_r.size - 1))
    return np.abs(sums)


def attack_dispersions(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-attack dispersion values for one family, in time order.

    Returns ``(start timestamps, dispersion values in km)``; both arrays
    are aligned and sorted chronologically.  Memoized per family on the
    shared context.
    """
    return AnalysisContext.of(source).attack_dispersions(family)


def _attack_dispersions(
    ctx: AnalysisContext, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """The raw computation behind :func:`attack_dispersions`."""
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    offsets, flat = ctx.family_participants(family)
    counts = np.diff(offsets)

    all_lats_r, all_lons_r = ctx.bot_coords_radians()
    values = _segment_dispersions(all_lats_r[flat], all_lons_r[flat], offsets, counts)
    # Single-bot attacks have no dispersion by definition.
    values[counts < 2] = 0.0
    return ds.start[idx], values


def snapshot_dispersions(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Dispersion per hourly monitoring snapshot (the §II-B view).

    The paper's collection produces hourly reports whose bot sets are
    cumulative over 24 hours; this computes the geolocation-distribution
    value of each such snapshot instead of each attack.  Returns aligned
    ``(snapshot timestamps, dispersion values)`` for snapshots with at
    least two bots.  Memoized per family on the shared context.
    """
    return AnalysisContext.of(source).snapshot_dispersions(family)


def _snapshot_grid(window) -> np.ndarray:
    """The full hourly snapshot timestamps of an observation window."""
    from ..simulation.clock import SECONDS_PER_HOUR

    return window.start + np.arange(1, window.n_hours + 1, dtype=float) * SECONDS_PER_HOUR


def _snapshot_dispersions(
    ctx: AnalysisContext, family: str, ts: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The raw computation behind :func:`snapshot_dispersions`.

    ``ts=None`` evaluates the window's full hourly grid.  Passing an
    explicit (sorted) subset of grid timestamps evaluates only those
    snapshots — the sharded merge uses this for per-shard interior grids
    and for the boundary strips it recomputes on the merged context.
    Each snapshot's value depends only on its own 24-hour bot set, so
    any partition of the grid concatenates back bitwise-identically.
    """
    from ..monitor.snapshots import LOOKBACK_SECONDS

    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    offsets, flat = ctx.family_participants(family)
    starts = ds.start[idx]
    window = ds.window

    # All snapshot windows at once: attacks starting in (t - 24h, t].
    if ts is None:
        ts = _snapshot_grid(window)
    else:
        ts = np.asarray(ts, dtype=float)
    lo = np.searchsorted(starts, ts - LOOKBACK_SECONDS, side="right")
    hi = np.searchsorted(starts, ts, side="right")
    nonempty = hi > lo
    ts, lo, hi = ts[nonempty], lo[nonempty], hi[nonempty]
    if ts.size == 0:
        return np.zeros(0), np.zeros(0)

    all_lats_r, all_lons_r = ctx.bot_coords_radians()
    out_times: list[np.ndarray] = []
    out_values: list[np.ndarray] = []
    # Every attack participation lands in up to 24 hourly snapshots, so
    # the expanded (snapshot, bot) pair table is ~24x the family's
    # participation count; chunking over snapshots bounds the peak.
    chunk = 256
    for c0 in range(0, ts.size, chunk):
        c1 = min(c0 + chunk, ts.size)
        plo = offsets[lo[c0:c1]]
        phi = offsets[hi[c0:c1]]
        sizes = phi - plo
        total = int(sizes.sum())
        if total == 0:
            # Attacks with zero recorded participants (e.g. ingested
            # attack-table-only datasets) contribute no snapshot sets.
            continue
        snap = np.repeat(np.arange(c1 - c0), sizes)
        seg_starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        pos = np.repeat(plo, sizes) + (np.arange(total) - np.repeat(seg_starts, sizes))
        bots = np.asarray(flat)[pos]

        # Per-snapshot unique bot sets (the 24-hour reports are sets).
        o = np.lexsort((bots, snap))
        s_sorted = snap[o]
        b_sorted = bots[o]
        first = np.empty(total, dtype=bool)
        first[0] = True
        first[1:] = (s_sorted[1:] != s_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
        u_snap = s_sorted[first]
        u_bot = b_sorted[first]
        u_counts = np.bincount(u_snap, minlength=c1 - c0)
        good = u_counts >= 2
        sel = good[u_snap]
        counts_sel = u_counts[good]
        if counts_sel.size == 0:
            continue
        u_offsets = np.concatenate(([0], np.cumsum(counts_sel)))
        bot_sel = u_bot[sel]
        vals = _segment_dispersions(
            all_lats_r[bot_sel], all_lons_r[bot_sel], u_offsets, counts_sel
        )
        out_times.append(ts[c0:c1][good])
        out_values.append(vals)
    if not out_times:
        return np.zeros(0), np.zeros(0)
    return np.concatenate(out_times), np.concatenate(out_values)


def _reference_snapshot_dispersions(
    source: AnalysisSource, family: str
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-snapshot loop (pre-vectorization); kept for parity tests.

    The batched kernel and this loop sum floating-point terms in
    different orders, so parity is asserted with ``np.allclose`` rather
    than bitwise equality.
    """
    from ..geo.haversine import dispersion_km
    from ..monitor.snapshots import iter_hourly_snapshots

    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    idx = ctx.family_attacks(family)
    if idx.size == 0:
        raise ValueError(f"family {family!r} launched no attacks")
    offsets, flat = ctx.family_participants(family)
    times: list[float] = []
    values: list[float] = []
    for snap in iter_hourly_snapshots(ds.start[idx], offsets, flat, ds.window, family):
        if snap.n_bots < 2:
            continue
        times.append(snap.timestamp)
        values.append(
            dispersion_km(ds.bots.lat[snap.bot_indices], ds.bots.lon[snap.bot_indices])
        )
    return np.asarray(times), np.asarray(values)


@dataclass(frozen=True)
class DispersionProfile:
    """Fig 9-11 headline numbers for one family."""

    family: str
    n_attacks: int
    symmetric_fraction: float
    mean_km: float
    std_km: float
    asymmetric_mean_km: float
    asymmetric_std_km: float


def dispersion_profile(
    source: AnalysisSource, family: str, tolerance_km: float = SYMMETRY_TOLERANCE_KM
) -> DispersionProfile:
    """Summarise a family's dispersion values.

    ``symmetric_fraction`` is the share of attacks with dispersion below
    ``tolerance_km`` (the paper reports 76.7 % for Pandora and 89.5 % for
    Blackenergy); the asymmetric statistics cover the rest — what
    Figs 10-11 plot after "removing the symmetric distributions".
    """
    _, values = attack_dispersions(source, family)
    symmetric = values < tolerance_km
    asym = values[~symmetric]
    return DispersionProfile(
        family=family,
        n_attacks=int(values.size),
        symmetric_fraction=float(np.mean(symmetric)),
        mean_km=float(np.mean(values)),
        std_km=float(np.std(values)),
        asymmetric_mean_km=float(np.mean(asym)) if asym.size else 0.0,
        asymmetric_std_km=float(np.std(asym)) if asym.size else 0.0,
    )


def dispersion_cdf(source: AnalysisSource, family: str) -> tuple[np.ndarray, np.ndarray]:
    """Fig 9: the CDF of a family's dispersion values."""
    _, values = attack_dispersions(source, family)
    return ecdf(values)


def dispersion_histogram(
    source: AnalysisSource,
    family: str,
    bin_km: float = 500.0,
    tolerance_km: float = SYMMETRY_TOLERANCE_KM,
) -> tuple[np.ndarray, np.ndarray]:
    """Figs 10-11: histogram of *asymmetric* dispersion values.

    Returns ``(bin left edges, counts)``; symmetric (sub-tolerance)
    values are removed first, as in the paper.
    """
    if bin_km <= 0:
        raise ValueError(f"bin_km must be positive, got {bin_km}")
    _, values = attack_dispersions(source, family)
    asym = values[values >= tolerance_km]
    if asym.size == 0:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    n_bins = int(np.ceil(asym.max() / bin_km)) + 1
    edges = np.arange(n_bins + 1) * bin_km
    counts, _ = np.histogram(asym, bins=edges)
    return edges[:-1], counts
