"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness and the CLI use these renderers to print the same
rows the paper reports, side by side with the paper's own numbers where
available.

Every renderer coerces its source to the shared
:class:`~repro.core.context.AnalysisContext` once and passes the context
down, so consecutive renders over one dataset reuse the memoized views
(the Table V loop, for instance, shares the grouped attack index with
everything else that ran before it).
"""

from __future__ import annotations

import numpy as np

from ..monitor.schemas import Protocol
from .collaboration import collaboration_table
from .context import AnalysisContext, AnalysisSource
from .durations import duration_summary
from .intervals import interval_summary
from .overview import (
    daily_attack_counts,
    protocol_breakdown,
    protocol_popularity,
    workload_summary,
)
from .targets import country_breakdown, top_target_countries

__all__ = [
    "format_table",
    "render_workload_summary",
    "render_protocol_table",
    "render_country_table",
    "render_collaboration_table",
    "render_headline",
]


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def render_workload_summary(source: AnalysisSource) -> str:
    """Table III as text."""
    s = workload_summary(AnalysisContext.of(source))
    rows = [
        ["# of bot_ips", str(s.attackers.n_ips), "# of target_ip", str(s.victims.n_ips)],
        ["# of cities", str(s.attackers.n_cities), "# of cities", str(s.victims.n_cities)],
        ["# of countries", str(s.attackers.n_countries), "# of countries", str(s.victims.n_countries)],
        ["# of organizations", str(s.attackers.n_organizations), "# of organizations", str(s.victims.n_organizations)],
        ["# of asn", str(s.attackers.n_asns), "# of asn", str(s.victims.n_asns)],
        ["# of ddos_id", str(s.n_attacks), "", ""],
        ["# of botnet_id", str(s.n_botnets), "", ""],
        ["# of traffic types", str(s.n_traffic_types), "", ""],
    ]
    return format_table(["attackers", "count", "victims", "count"], rows)


def render_protocol_table(source: AnalysisSource) -> str:
    """Table II as text (plus the Fig 1 totals)."""
    ctx = AnalysisContext.of(source)
    rows = [
        [proto.name, family, str(count)]
        for proto, family, count in protocol_breakdown(ctx)
    ]
    totals = protocol_popularity(ctx)
    footer = [
        ["<total>", proto.name, str(totals[proto])]
        for proto in Protocol
        if totals[proto]
    ]
    return format_table(["protocol", "botnet family", "# of attacks"], rows + footer)


def render_country_table(source: AnalysisSource, top_n: int = 5) -> str:
    """Table V as text."""
    ctx = AnalysisContext.of(source)
    rows: list[list[str]] = []
    for family in ctx.dataset.active_families:
        if ctx.family_attacks(family).size == 0:
            continue
        breakdown = country_breakdown(ctx, family, top_n=top_n)
        for j, (code, count) in enumerate(breakdown.top):
            rows.append(
                [
                    family if j == 0 else "",
                    str(breakdown.n_countries) if j == 0 else "",
                    code,
                    str(count),
                ]
            )
    return format_table(["family", "countries", "top", "count"], rows)


def render_collaboration_table(source: AnalysisSource) -> str:
    """Table VI as text."""
    table = collaboration_table(AnalysisContext.of(source))
    families = sorted(table)
    rows = [
        ["Intra-Family"] + [str(table[f]["intra"]) for f in families],
        ["Inter-Family"] + [str(table[f]["inter"]) for f in families],
    ]
    return format_table(["collaboration type"] + families, rows)


def render_headline(source: AnalysisSource) -> str:
    """The abstract's headline numbers, plus interval/duration summaries."""
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    daily = daily_attack_counts(ctx)
    iv = interval_summary(ctx)
    du = duration_summary(ctx)
    top = ", ".join(f"{cc}:{n}" for cc, n in top_target_countries(ctx))
    lines = [
        f"attacks: {ds.n_attacks}  botnets: {len(ds.botnets)}  "
        f"families: {len(ds.active_families)} active / {len(ds.families)} tracked",
        f"victims: {ds.victims.n_targets} IPs  bots: {ds.bots.n_bots} IPs",
        f"daily attacks: mean {daily.mean_per_day:.0f}, max {daily.max_per_day} "
        f"on {daily.max_day_label} (top family: {daily.max_day_top_family})",
        f"intervals: {iv.simultaneous_fraction:.0%} simultaneous, "
        f"80% < {iv.p80_seconds:.0f}s, mean {iv.stats.mean:.0f}s, "
        f"longest {iv.longest_days:.1f} days",
        f"durations: mean {du.stats.mean:.0f}s, median {du.stats.median:.0f}s, "
        f"80% < {du.stats.p80 / 3600.0:.1f}h, <60s share {du.under_60s_fraction:.1%}",
        f"top target countries: {top}",
    ]
    return "\n".join(lines)


def _fmt_float(x: float, digits: int = 1) -> str:  # small shared helper
    return f"{np.round(x, digits):g}"
