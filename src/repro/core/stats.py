"""Small statistical helpers shared by the analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ecdf", "ecdf_at", "SeriesSummary", "summarize"]


def ecdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted values, cumulative probability)``.

    The probability at position ``i`` is ``(i + 1) / n`` — the fraction of
    observations less than or equal to that value.
    """
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ValueError("ecdf of empty data")
    p = np.arange(1, v.size + 1, dtype=float) / v.size
    return v, p


def ecdf_at(values, points) -> np.ndarray:
    """The empirical CDF evaluated at arbitrary ``points``."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ValueError("ecdf of empty data")
    points = np.asarray(points, dtype=float)
    return np.searchsorted(v, points, side="right") / v.size


@dataclass(frozen=True)
class SeriesSummary:
    """Mean / median / std / extremes / selected percentiles of a series."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p80: float
    p95: float


def summarize(values) -> SeriesSummary:
    """Compute the summary the paper quotes for intervals and durations."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("summarize of empty data")
    return SeriesSummary(
        n=int(v.size),
        mean=float(np.mean(v)),
        median=float(np.median(v)),
        std=float(np.std(v, ddof=0)),
        minimum=float(np.min(v)),
        maximum=float(np.max(v)),
        p80=float(np.percentile(v, 80)),
        p95=float(np.percentile(v, 95)),
    )
