"""AnalysisContext: the shared derived-view layer over one dataset.

Nearly every table and figure of the paper re-derives the same
intermediates from the raw attack columns — per-family attack indices,
sorted interval arrays, per-family dispersion series, victim marginals,
the collaboration/chain structures.  :class:`AnalysisContext` wraps an
immutable :class:`~repro.core.dataset.AttackDataset` and memoizes those
views so they are computed **once** and shared by every consumer: the
``core`` analyses, all 18 experiment modules, the CLI and the defense
policies.

Design notes:

* Views are lazy: nothing is computed until a consumer asks.
* Memoization is thread-safe with per-key locks, so independent
  experiments can run concurrently (``registry.run_all(jobs=N)``) while
  still computing each shared view exactly once.
* The actual analysis code stays in the domain modules (``intervals``,
  ``geolocation``, ``collaboration``, …) as module-private ``_impl``
  functions; the context only orchestrates and caches.  Builders resolve
  the impls through the module object at call time, so tests can spy on
  them with ``monkeypatch``.
* Views with picklable values can be exported/imported as a *snapshot*
  (:meth:`export_views` / :meth:`import_views`); :mod:`repro.io.cache`
  stores snapshots next to the dataset pickle so repeat CLI invocations
  skip the derivation work entirely.

``AnalysisContext.of`` attaches the context to the dataset instance, so
code that still passes a raw ``AttackDataset`` around transparently
shares one context per dataset.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Hashable, Union

import numpy as np

from ..obs import registry as _obs_registry
from .dataset import AttackDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..monitor.schemas import Protocol
    from .collaboration import CollabEvent
    from .consecutive import AttackChain
    from .overview import DailyDistribution, WorkloadSummary
    from .prediction import DispersionForecast
    from .shift import WeeklyShift

__all__ = ["AnalysisContext", "AnalysisSource", "ShardedAnalysisContext"]

#: Anything the analyses accept: the raw dataset or its context.
AnalysisSource = Union[AttackDataset, "AnalysisContext"]

#: Attribute used to attach the shared context to a dataset instance.
_CONTEXT_ATTR = "_analysis_context"
_ATTACH_LOCK = threading.Lock()


class AnalysisContext:
    """Lazily-computed, memoized derived views over one dataset.

    ``epoch`` tags the context with the revision of the data it was built
    from.  Batch datasets are epoch 0; the streaming layer
    (:mod:`repro.stream`) bumps the epoch on every append and hands out a
    fresh context per snapshot, so consumers holding an older context
    keep a coherent (if stale) set of views while new consumers see the
    incrementally-updated ones.

    >>> from repro import api
    >>> ctx = api.context(api.generate(scale=0.005))
    >>> ctx.epoch
    0
    >>> ctx.view(("durations",), lambda: ctx.dataset.end - ctx.dataset.start).size
    258
    """

    def __init__(self, ds: AttackDataset, *, epoch: int = 0) -> None:
        if not isinstance(ds, AttackDataset):
            raise TypeError(f"AnalysisContext wraps an AttackDataset, got {type(ds).__name__}")
        self._ds = ds
        self.epoch = int(epoch)
        self._views: dict[Hashable, Any] = {}
        self._meta_lock = threading.Lock()
        self._key_locks: dict[Hashable, threading.Lock] = {}
        #: Per-view-kind (hit counter, miss counter, build histogram),
        #: resolved from the default registry once per kind and cached so
        #: the hot hit path costs one dict lookup + one counter add.
        self._view_obs: dict[str, tuple] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, source: AnalysisSource) -> "AnalysisContext":
        """Coerce a dataset (or context) to the dataset's shared context.

        The context is attached to the dataset instance on first use, so
        every consumer of the same dataset shares one set of views.  Use
        the plain constructor instead when an *unshared* context is
        needed (e.g. cold-start benchmarks).
        """
        if isinstance(source, AnalysisContext):
            return source
        if not isinstance(source, AttackDataset):
            raise TypeError(
                f"expected AttackDataset or AnalysisContext, got {type(source).__name__}"
            )
        ctx = source.__dict__.get(_CONTEXT_ATTR)
        if ctx is None:
            with _ATTACH_LOCK:
                ctx = source.__dict__.get(_CONTEXT_ATTR)
                if ctx is None:
                    ctx = cls(source)
                    source.__dict__[_CONTEXT_ATTR] = ctx
        return ctx

    @classmethod
    def attach(cls, ds: AttackDataset, *, epoch: int = 0) -> "AnalysisContext":
        """Create a context and install it as the dataset's shared one.

        Unlike :meth:`of`, the caller controls the epoch tag; used by the
        streaming layer when it materialises a snapshot.  Raises if the
        dataset already carries a context.
        """
        ctx = cls(ds, epoch=epoch)
        with _ATTACH_LOCK:
            if ds.__dict__.get(_CONTEXT_ATTR) is not None:
                raise ValueError("dataset already has an attached AnalysisContext")
            ds.__dict__[_CONTEXT_ATTR] = ctx
        return ctx

    @property
    def dataset(self) -> AttackDataset:
        return self._ds

    # -- memoization core --------------------------------------------------

    def _view_instruments(self, kind: str) -> tuple:
        """The (hit, miss, build-time) instruments for one view kind."""
        entry = self._view_obs.get(kind)
        if entry is None:
            reg = _obs_registry()
            entry = self._view_obs[kind] = (
                reg.counter("context.view.hit", view=kind),
                reg.counter("context.view.miss", view=kind),
                reg.histogram("context.view.build_seconds", view=kind),
            )
        return entry

    def view(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the memoized view for ``key``, building it at most once.

        Double-checked per-key locking: concurrent readers of a missing
        view serialise on that view's lock only, so two experiments can
        build *different* views in parallel while never building the
        *same* view twice.

        Every call records a ``context.view.hit`` / ``context.view.miss``
        counter tick (labelled by the key's first element — the view
        kind), and each build's latency lands in the
        ``context.view.build_seconds`` histogram under a ``view:<kind>``
        stage span.
        """
        kind = key[0] if isinstance(key, tuple) and key else str(key)
        views = self._views
        try:
            value = views[key]
        except KeyError:
            pass
        else:
            self._view_instruments(kind)[0].inc()
            return value
        with self._meta_lock:
            lock = self._key_locks.setdefault(key, threading.Lock())
        with lock:
            if key in views:
                self._view_instruments(kind)[0].inc()  # lost the build race
            else:
                _hit, miss, build_hist = self._view_instruments(kind)
                miss.inc()
                started = time.perf_counter()
                with _obs_registry().span(f"view:{kind}"):
                    views[key] = build()
                build_hist.observe(time.perf_counter() - started)
        return views[key]

    @property
    def n_views(self) -> int:
        """Number of materialised views (diagnostics / tests)."""
        return len(self._views)

    def view_keys(self) -> list[Hashable]:
        """Keys of the materialised views, in creation order."""
        return list(self._views)

    def materialized(self) -> dict[Hashable, Any]:
        """Shallow copy of the materialised views (no pickling check).

        The streaming layer walks this to carry cheap views forward
        across an append; :meth:`export_views` stays the picklable
        variant for on-disk snapshots.
        """
        return dict(self._views)

    def seed_view(self, key: Hashable, value: Any) -> bool:
        """Install a precomputed value for ``key`` if it is not built yet.

        Returns True when the value was installed.  The caller guarantees
        the value equals what the builder would produce — the streaming
        layer's incremental updaters derive it from the previous epoch's
        view plus the appended rows.
        """
        with self._meta_lock:
            if key in self._views:
                return False
            self._views[key] = value
            return True

    def invalidate_views(self, kind: str) -> int:
        """Drop every materialised view whose key kind is ``kind``.

        The sharded layer uses this when a layout change (an appended
        shard) retroactively invalidates a view that was computed under
        the old layout — e.g. the last shard's interior snapshot grid,
        whose upper bound moves when a shard is appended after it.
        Returns the number of views dropped.
        """
        with self._meta_lock:
            doomed = [
                key
                for key in self._views
                if (key[0] if isinstance(key, tuple) and key else str(key)) == kind
            ]
            for key in doomed:
                del self._views[key]
                self._key_locks.pop(key, None)
        return len(doomed)

    # -- attack groupings --------------------------------------------------

    def _groups_by(self, key: str, column: np.ndarray) -> dict[int, np.ndarray]:
        """One grouping pass: column value -> sorted attack indices."""

        def build() -> dict[int, np.ndarray]:
            order = np.argsort(column, kind="stable")
            boundaries = np.flatnonzero(np.diff(column[order]) != 0) + 1
            out: dict[int, np.ndarray] = {}
            # Stable sort keeps ascending attack indices within each
            # group, i.e. chronological order.
            for group in np.split(order, boundaries) if order.size else []:
                out[int(column[group[0]])] = group
            return out

        return self.view((key,), build)

    def family_attacks(self, family: str) -> np.ndarray:
        """Attack indices (chronological) launched by ``family``.

        One grouping pass over ``family_idx`` serves every family —
        unlike :meth:`AttackDataset.attacks_of`, which scans the full
        column per call.
        """
        groups = self._groups_by("family_attack_index", self._ds.family_idx)
        fam = self._ds.family_id(family)
        return groups.get(fam, np.zeros(0, dtype=np.int64))

    def botnet_attacks(self, botnet_id: int) -> np.ndarray:
        """Attack indices (chronological) launched by one botnet."""
        groups = self._groups_by("botnet_attack_index", self._ds.botnet_id)
        return groups.get(int(botnet_id), np.zeros(0, dtype=np.int64))

    def target_attacks(self, target_index: int) -> np.ndarray:
        """Attack indices (chronological) against one victim."""
        groups = self._groups_by("target_attack_index", self._ds.target_idx)
        return groups.get(int(target_index), np.zeros(0, dtype=np.int64))

    # -- intervals and durations -------------------------------------------

    def attack_intervals(self) -> np.ndarray:
        """Gaps between consecutive attacks across all families."""
        ds = self._ds
        return self.view(
            ("attack_intervals",),
            lambda: np.diff(ds.start) if ds.n_attacks >= 2 else np.zeros(0),
        )

    def family_starts(self, family: str) -> np.ndarray:
        """Sorted start times of one family's attacks."""
        return self.view(
            ("family_starts", family),
            lambda: np.sort(self._ds.start[self.family_attacks(family)]),
        )

    def family_intervals(self, family: str, include_simultaneous: bool = True) -> np.ndarray:
        """Gaps between consecutive attacks of one family."""

        def build() -> np.ndarray:
            if include_simultaneous:
                starts = self.family_starts(family)
                if starts.size < 2:
                    return np.zeros(0)
                return np.diff(starts)
            gaps = self.family_intervals(family, include_simultaneous=True)
            return gaps[gaps > 0]

        return self.view(("family_intervals", family, bool(include_simultaneous)), build)

    def durations(self, family: str | None = None) -> np.ndarray:
        """Per-attack durations in seconds, optionally for one family."""
        if family is None:
            return self.view(("durations",), lambda: self._ds.end - self._ds.start)
        return self.view(
            ("durations", family),
            lambda: self.durations()[self.family_attacks(family)],
        )

    # -- participants and geolocation --------------------------------------

    def bot_coords_radians(self) -> tuple[np.ndarray, np.ndarray]:
        """(lat, lon) of every bot in radians — the participant geo matrix."""
        return self.view(
            ("bot_coords_radians",),
            lambda: (np.radians(self._ds.bots.lat), np.radians(self._ds.bots.lon)),
        )

    def family_participants(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """CSR participant layout restricted to one family's attacks.

        Returns ``(offsets, flat)`` where ``flat[offsets[k] :
        offsets[k + 1]]`` are the bot indices of the family's ``k``-th
        attack (chronological order, as in :meth:`family_attacks`).
        """

        def build() -> tuple[np.ndarray, np.ndarray]:
            ds = self._ds
            idx = self.family_attacks(family)
            counts = (ds.part_offsets[idx + 1] - ds.part_offsets[idx]).astype(np.int64)
            offsets = np.zeros(idx.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            # One gather instead of a per-attack slice loop: element j of
            # segment k lives at ``part_offsets[idx[k]] + j`` in the
            # dataset-wide CSR, so the source positions are the segment
            # bases repeated per element plus each element's within-
            # segment rank.
            total = int(offsets[-1])
            base = np.repeat(ds.part_offsets[idx].astype(np.int64), counts)
            rank = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
            flat = np.asarray(ds.participants)[base + rank]
            return offsets, flat

        return self.view(("family_participants", family), build)

    def attack_dispersions(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-attack dispersion values for one family, in time order."""

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._attack_dispersions(self, family)

        return self.view(("attack_dispersions", family), build)

    def snapshot_dispersions(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """Hourly-snapshot dispersion series for one family (§II-B view)."""

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._snapshot_dispersions(self, family)

        return self.view(("snapshot_dispersions", family), build)

    # -- victim marginals --------------------------------------------------

    def target_country_idx(self) -> np.ndarray:
        """Per-attack country index of the victim."""
        return self.view(
            ("target_country_idx",),
            lambda: self._ds.victims.country_idx[self._ds.target_idx],
        )

    def target_org_idx(self) -> np.ndarray:
        """Per-attack organization index of the victim."""
        return self.view(
            ("target_org_idx",),
            lambda: self._ds.victims.org_idx[self._ds.target_idx],
        )

    def target_country_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Global victim-country marginal: ``(country indices, counts)``."""
        return self.view(
            ("target_country_counts",),
            lambda: np.unique(self.target_country_idx(), return_counts=True),
        )

    def target_org_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Global victim-organization marginal: ``(org indices, counts)``."""
        return self.view(
            ("target_org_counts",),
            lambda: np.unique(self.target_org_idx(), return_counts=True),
        )

    def family_target_country_counts(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """One family's victim-country marginal."""
        return self.view(
            ("family_target_country_counts", family),
            lambda: np.unique(
                self.target_country_idx()[self.family_attacks(family)], return_counts=True
            ),
        )

    def victim_org_type_counts(self) -> dict[str, int]:
        """Attacks per victim-organization type."""

        def build() -> dict[str, int]:
            from . import targets as _targets

            return _targets._victim_org_types(self)

        return self.view(("victim_org_type_counts",), build)

    # -- overview ----------------------------------------------------------

    def workload_summary(self) -> "WorkloadSummary":
        """Table III populations (computed once)."""

        def build():
            from . import overview as _overview

            return _overview._workload_summary(self._ds)

        return self.view(("workload_summary",), build)

    def protocol_breakdown(self) -> "list[tuple[Protocol, str, int]]":
        """Table II cells (protocol, family, attacks)."""

        def build():
            from . import overview as _overview

            return _overview._protocol_breakdown(self._ds)

        return self.view(("protocol_breakdown",), build)

    def protocol_popularity(self) -> "dict[Protocol, int]":
        """Fig 1 totals per protocol."""

        def build():
            from . import overview as _overview

            return _overview._protocol_popularity(self._ds)

        return self.view(("protocol_popularity",), build)

    def daily_distribution(self, family: str | None = None) -> "DailyDistribution":
        """Fig 2 daily series (all attacks or one family)."""

        def build():
            from . import overview as _overview

            return _overview._daily_attack_counts(self, family)

        return self.view(("daily_distribution", family), build)

    # -- shift -------------------------------------------------------------

    def weekly_shift_pairs(self, family: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The mergeable half of the weekly shift: attack weeks plus
        unique (week, bot) participation pairs (see ``shift._weekly_pairs``)."""

        def build():
            from . import shift as _shift

            return _shift._weekly_pairs(self, family)

        return self.view(("weekly_shift_pairs", family), build)

    def weekly_shift(self, family: str) -> "WeeklyShift":
        """Fig 8 weekly source-shift series for one family."""

        def build():
            from . import shift as _shift

            return _shift._weekly_shift(self, family)

        return self.view(("weekly_shift", family), build)

    # -- detected structure ------------------------------------------------

    def collaborations(self) -> "list[CollabEvent]":
        """Concurrent collaborations under the paper's default windows."""

        def build():
            from . import collaboration as _collaboration

            return _collaboration._detect_collaborations(
                self._ds,
                _collaboration.START_WINDOW_SECONDS,
                _collaboration.DURATION_WINDOW_SECONDS,
            )

        return self.view(("collaborations",), build)

    def chains(self) -> "list[AttackChain]":
        """Consecutive-attack chains under the paper's default margin."""

        def build():
            from . import consecutive as _consecutive

            return _consecutive._detect_chains(
                self._ds, _consecutive.CHAIN_MARGIN_SECONDS, 2
            )

        return self.view(("chains",), build)

    # -- prediction --------------------------------------------------------

    def dispersion_forecast(self, family: str) -> "DispersionForecast":
        """Table IV ARIMA forecast for one family (default protocol).

        Raises ``ValueError`` for families with too few points; the
        *exception* is not memoized, but the underlying dispersion
        series is, so retries stay cheap.
        """

        def build():
            from . import prediction as _prediction

            return _prediction._predict_family_dispersion(self, family)

        return self.view(("dispersion_forecast", family), build)

    # -- prewarm -----------------------------------------------------------

    def _prewarm_specs(self, families: list[str]) -> list[tuple]:
        """Independent prewarm tasks, skipping already-materialised work.

        A family task is emitted when any of its views is missing; the
        global scans are emitted individually.  On a warm (streaming)
        context the carried views therefore suppress their tasks and
        only the invalidated keys are rebuilt.
        """
        views = self._views
        specs: list[tuple] = []
        for kind in ("collaborations", "chains", "attack_intervals", "globals"):
            key_probe = {
                "collaborations": ("collaborations",),
                "chains": ("chains",),
                "attack_intervals": ("attack_intervals",),
                "globals": ("workload_summary",),
            }[kind]
            if key_probe not in views:
                specs.append((kind,))
        for family in families:
            family_keys = (
                ("family_participants", family),
                ("attack_dispersions", family),
                ("family_starts", family),
                ("family_intervals", family, True),
                ("durations", family),
                ("weekly_shift", family),
            )
            if any(key not in views for key in family_keys):
                specs.append(("family", family))
        from ..experiments.table4_prediction import PAPER_TABLE4

        for family in PAPER_TABLE4:
            if family in families and ("dispersion_forecast", family) not in views:
                specs.append(("forecast", family))
        return specs

    def prewarm(self, jobs: int | None = 1, families: list[str] | None = None) -> int:
        """Build the battery's independent views ahead of time.

        Fans per-family view builds (participants, dispersions, starts,
        intervals, durations, weekly shift), the Table IV forecasts and
        the collaboration/chain scans across the :mod:`repro.par` pool
        (``jobs=None`` picks the default worker count; on platforms
        without ``fork``, or with fewer CPUs than workers, the same
        tasks run serially).  Results are installed via
        :meth:`seed_view`, so a view that is already materialised — for
        example carried across a streaming epoch — is neither rebuilt
        nor overwritten.  Returns the number of views that became
        materialised; the result set is identical for every ``jobs``.

        Observability: the whole pass runs under a ``prewarm`` stage
        span; ``prewarm.tasks`` counts the tasks dispatched and
        ``prewarm.seeded`` the views newly installed.
        """
        from .. import par

        reg = _obs_registry()
        with reg.span("prewarm"):
            if families is None:
                families = list(self._ds.active_families)
            # Cheap shared dependencies built in the parent so forked
            # workers inherit them instead of rebuilding per task.
            self._groups_by("family_attack_index", self._ds.family_idx)
            self.bot_coords_radians()
            self.durations()
            specs = self._prewarm_specs(families)
            reg.counter("prewarm.tasks").inc(len(specs))
            before = set(self._views)
            if specs:
                results = par.parallel_map(
                    _prewarm_worker,
                    specs,
                    jobs=par.resolve_jobs(jobs),
                    payload=self,
                    label="prewarm",
                )
                for pairs in results:
                    for key, value in pairs:
                        self.seed_view(key, value)
            seeded = len(set(self._views) - before)
            reg.counter("prewarm.seeded").inc(seeded)
        return seeded

    # -- snapshotting ------------------------------------------------------

    def export_views(self) -> dict[Hashable, Any]:
        """Picklable snapshot of the materialised views.

        Values that cannot be pickled (none today, but snapshots must
        degrade gracefully as views evolve) are skipped.
        """
        import pickle

        out: dict[Hashable, Any] = {}
        for key, value in list(self._views.items()):
            try:
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                continue
            out[key] = value
        return out

    def import_views(self, views: dict[Hashable, Any]) -> int:
        """Restore a snapshot produced by :meth:`export_views`.

        Existing views win over imported ones (they were computed from
        this dataset in this process).  Returns the number of views
        actually restored.
        """
        restored = 0
        with self._meta_lock:
            for key, value in views.items():
                if key not in self._views:
                    self._views[key] = value
                    restored += 1
        return restored


class ShardedAnalysisContext:
    """Map-reduce analysis over a time-sharded dataset.

    Wraps a :class:`~repro.io.colstore.ShardedDatasetStore` and owns one
    :class:`AnalysisContext` per shard.  :meth:`build` fans the
    per-shard view derivations across the :mod:`repro.par` pool, and
    :meth:`merged` combines them — through the
    :mod:`repro.core.merge` combinators, bitwise-identically to an
    unsharded build — into a single :class:`AnalysisContext` over the
    concatenated dataset, which downstream consumers (the experiment
    battery, the report renderers) use unchanged.

    The two views that cross shard boundaries are handled explicitly:
    interval arrays gain the boundary gaps, and the collaboration/chain
    scans rescan only the targets whose attacks could link across a
    boundary.  Hourly-snapshot dispersions are evaluated per shard on
    each shard's *interior* grid (snapshots whose 24-hour lookback stays
    inside the shard) plus one boundary-strip pass on the merged
    context.

    The reduce is tree-structured: the small re-reduction state of every
    shard (:class:`~repro.core.merge.ShardPartial`) combines over
    :func:`repro.par.tree_reduce` — ~log2(K) parallel levels instead of
    a serial left-fold — with subtree results memoized in-process and,
    when a :class:`~repro.io.cache.MergeCache` is supplied, on disk.
    After :meth:`refresh` picks up appended shards, :meth:`merged`
    re-merges incrementally: cached subtrees cover the untouched prefix,
    the previous merged context is reused as one big left operand, and
    only the new shard seams are re-stitched.

    Observability: each per-shard build runs under a ``shard:<i>`` span
    inside the ``shard.build`` stage; the merge runs under
    ``shard.merge`` and ticks ``shard.merge.views`` per seeded view,
    ``shard.merge.stitched_targets`` per boundary-stitched target,
    ``shard.merge.levels`` per parallel combine round and
    ``shard.merge.reused`` per memoized subtree served.

    >>> from repro import api
    >>> from repro.io.colstore import ShardedDatasetStore
    >>> store = ShardedDatasetStore.partition(api.generate(scale=0.005), shards=2)
    >>> sctx = api.context(store)
    >>> _ = sctx.build(jobs=1)
    >>> sctx.merged().dataset.n_attacks == store.n_attacks
    True
    """

    def __init__(self, store, *, merge_cache=None) -> None:
        self._store = store
        self._merge_cache = merge_cache
        self._shard_ctxs: list[AnalysisContext | None] = [None] * store.n_shards
        self._merged: AnalysisContext | None = None
        self._shared_coords: tuple[np.ndarray, np.ndarray] | None = None
        self._lock = threading.Lock()
        #: Memoized subtree partials keyed by half-open shard range.
        self._partials: dict[tuple[int, int], Any] = {}
        #: The last finalised merge: (shard signatures, merged context).
        self._finalized: tuple[tuple, AnalysisContext] | None = None
        #: Shards whose interior snapshot views were computed when they
        #: were the last shard and are stale under the grown layout.
        self._stale_interiors: set[int] = set()
        #: Merged columns with reserved tail capacity so an append only
        #: copies the new shard's rows (see colstore.GrowableConcat).
        self._growable: _colstore.GrowableConcat | None = None
        #: Concat-shaped merged views in growable buffers, keyed by view
        #: key; the incremental merge extends these in place.
        self._view_bufs: dict[Hashable, Any] = {}
        #: What the last :meth:`merged` call actually did (diagnostics):
        #: ``{"mode": "full" | "incremental", "levels", "reused", "combined"}``.
        self.last_merge_stats: dict[str, Any] | None = None

    @property
    def store(self):
        return self._store

    @property
    def n_shards(self) -> int:
        return self._store.n_shards

    def refresh(self) -> int:
        """Adopt shards appended to the backing store since construction.

        Re-reads the store's manifest; appended shards get fresh (lazy)
        contexts while every already-built shard keeps its views, so the
        next :meth:`merged` call only maps the new shards and re-merges
        the O(log K) spine.  If the append rewrote the shared registries
        (new families/bots/victims interned), all per-shard state is
        reset — the old contexts index into the old registries.  Returns
        the number of shards adopted.
        """
        refresh_store = getattr(self._store, "refresh", None)
        if refresh_store is None:
            return 0
        with self._lock:
            appended, reset = refresh_store()
            if reset:
                self._shard_ctxs = [None] * self._store.n_shards
                self._shared_coords = None
                self._partials = {}
                self._finalized = None
                self._stale_interiors = set()
                self._merged = None
            elif appended:
                old_n = len(self._shard_ctxs)
                self._shard_ctxs.extend([None] * appended)
                if old_n:
                    # The former last shard's interior snapshot grid ran
                    # to +inf; under the new layout its tail snapshots
                    # belong to the boundary strip.
                    self._stale_interiors.add(old_n - 1)
                self._merged = None
        return appended

    # -- per-shard layer ---------------------------------------------------

    def _shared_bot_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """The bot geo matrix, computed once (registries are shared)."""
        if self._shared_coords is None:
            bots = self._store.load_shard(0).bots
            self._shared_coords = (np.radians(bots.lat), np.radians(bots.lon))
        return self._shared_coords

    def shard_context(self, index: int) -> AnalysisContext:
        """The (lazily created) analysis context of one shard."""
        ctx = self._shard_ctxs[index]
        if ctx is None:
            with self._lock:
                ctx = self._shard_ctxs[index]
                if ctx is None:
                    ctx = AnalysisContext.of(self._store.load_shard(index))
                    # Shards share the registries, so the (large) geo
                    # matrix is computed once and seeded everywhere.
                    ctx.seed_view(("bot_coords_radians",), self._shared_bot_coords())
                    self._shard_ctxs[index] = ctx
        return ctx

    def shard_families(self, index: int) -> list[str]:
        """Families with at least one attack in shard ``index``."""
        ctx = self.shard_context(index)
        groups = ctx._groups_by("family_attack_index", ctx.dataset.family_idx)
        return [ctx.dataset.family_name(k) for k in sorted(groups)]

    def _interior_ts(self, index: int) -> np.ndarray:
        """Grid snapshots whose 24-hour lookback stays inside shard ``index``."""
        from ..monitor.snapshots import LOOKBACK_SECONDS
        from . import geolocation as _geolocation

        grid = _geolocation._snapshot_grid(self._store.window)
        edges = np.asarray(self._store.edges, dtype=float)
        lo = -np.inf if index == 0 else float(edges[index]) + LOOKBACK_SECONDS
        hi = np.inf if index == self.n_shards - 1 else float(edges[index + 1])
        return grid[(grid >= lo) & (grid < hi)]

    def _strip_ts(self) -> np.ndarray:
        """Grid snapshots interior to no shard (the boundary strips)."""
        from . import geolocation as _geolocation

        grid = _geolocation._snapshot_grid(self._store.window)
        covered = np.zeros(grid.size, dtype=bool)
        for index in range(self.n_shards):
            covered |= np.isin(grid, self._interior_ts(index))
        return grid[~covered]

    def shard_snapshot_dispersions(
        self, index: int, family: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's interior-grid snapshot dispersion series."""
        ctx = self.shard_context(index)

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._snapshot_dispersions(
                ctx, family, ts=self._interior_ts(index)
            )

        return ctx.view(("snapshot_dispersions_interior", family), build)

    def shard_scan_events(self, index: int, kind: str) -> list:
        """One shard's collaboration/chain events, rebased to global rows.

        The rebase is done once at shard-build time (in the map phase,
        where it parallelises) instead of per merge.
        """
        ctx = self.shard_context(index)
        base = int(self._store.shard_bases()[index])

        def build() -> list:
            from . import merge as _merge

            events = (
                ctx.collaborations() if kind == "collaborations" else ctx.chains()
            )
            return _merge.rebase_scan_events(events, base)

        return ctx.view((f"{kind}_global",), build)

    def build_shard(self, index: int) -> AnalysisContext:
        """Materialise one shard's mergeable views (idempotent)."""
        _shard_build_worker(self, index)
        return self.shard_context(index)

    def build(self, jobs: int | None = 1) -> int:
        """Build every shard's mergeable views, possibly in parallel.

        Fans :func:`_shard_build_worker` across the :mod:`repro.par`
        pool (same serial fallback rules as prewarm) and seeds each
        worker's view delta back into the parent's shard contexts.
        Returns the total number of views materialised across shards.
        """
        from .. import par

        with _obs_registry().span("shard.build"):
            indices = list(range(self.n_shards))
            # Touch every shard context in the parent so forked workers
            # inherit the datasets (and shared geo matrix) copy-on-write.
            for index in indices:
                self.shard_context(index)
            results = par.parallel_map(
                _shard_build_worker,
                indices,
                jobs=par.resolve_jobs(jobs),
                payload=self,
                label="shard_build",
            )
            for index, pairs in zip(indices, results):
                ctx = self.shard_context(index)
                for key, value in pairs:
                    ctx.seed_view(key, value)
        return sum(self.shard_context(i).n_views for i in range(self.n_shards))

    # -- the reduce step ---------------------------------------------------

    def _signatures(self) -> tuple:
        """Per-shard content signatures, in shard order."""
        return tuple(
            self._store.shard_signature(k) for k in range(self.n_shards)
        )

    def _reduce_partials(self, jobs: int | None):
        """Tree-reduce the per-shard partials; returns (partial, stats).

        Subtree results memoize in ``self._partials`` (keyed by shard
        range — shards are immutable, so ranges never go stale within a
        store lineage) and, when a merge cache was supplied, on disk
        keyed by the range's shard signatures.  Spine prefixes are
        memoized too, so a repeat merge is a single lookup.
        """
        from .. import par
        from . import merge as _merge

        sigs = self._signatures()
        window = self._store.window
        cache = self._merge_cache
        memo = self._partials

        def fingerprint(lo: int, hi: int) -> tuple:
            return ((float(window.start), float(window.end)), sigs[lo:hi])

        def lookup(lo: int, hi: int):
            value = memo.get((lo, hi))
            if value is not None:
                return value
            if cache is not None and hi - lo > 1:
                value = cache.load("partial", fingerprint(lo, hi))
                if value is not None:
                    memo[(lo, hi)] = value
            return value

        def store(lo: int, hi: int, value) -> None:
            memo[(lo, hi)] = value
            if cache is not None:
                cache.save("partial", fingerprint(lo, hi), value)

        def leaf(index: int):
            partial = _merge.make_shard_partial(
                self.shard_context(index), self.shard_families(index), index
            )
            memo[(index, index + 1)] = partial
            return partial

        return par.tree_reduce(
            self.n_shards,
            leaf,
            _merge.combine_partials,
            jobs=par.resolve_jobs(jobs),
            lookup=lookup,
            store=store,
            label="shard_merge",
        )

    def merged(self, jobs: int | None = 1) -> AnalysisContext:
        """The merged context: every mergeable view seeded, bitwise equal
        to an unsharded build over the concatenated dataset.

        The re-reduction views combine through a memoized tree reduce
        (``jobs`` bounds the per-level fan-out); the boundary stitch is
        the vectorised crossing-run pass of
        :func:`repro.core.merge.stitch_scan_events`.  After
        :meth:`refresh` adopted appended shards, the previous merged
        context is extended incrementally when the layout allows it
        (same window/registries, non-empty new shards) — only the new
        seams are stitched and only grid snapshots whose lookback
        reaches the new rows are recomputed.
        """
        if self._merged is not None:
            return self._merged

        for index in range(self.n_shards):
            self.build_shard(index)

        reg = _obs_registry()
        with reg.span("shard.merge"):
            sigs = self._signatures()
            partial, stats = self._reduce_partials(jobs)
            reg.counter("shard.merge.levels").inc(stats.levels)
            reg.counter("shard.merge.reused").inc(stats.reused)
            mode = "full"
            ctx: AnalysisContext | None = None
            if self._finalized is not None:
                prev_sigs, prev_ctx = self._finalized
                n_prev = len(prev_sigs)
                if sigs == prev_sigs:
                    ctx = prev_ctx
                    mode = "unchanged"
                elif (
                    0 < n_prev < self.n_shards
                    and sigs[:n_prev] == prev_sigs
                    and self._append_compatible(prev_ctx, n_prev)
                ):
                    ctx = self._finalize_append(prev_ctx, n_prev, partial)
                    mode = "incremental"
            if ctx is None:
                ctx = self._finalize_full(partial)
            self._finalized = (sigs, ctx)
            self.last_merge_stats = {
                "mode": mode,
                "levels": stats.levels,
                "reused": stats.reused,
                "combined": stats.combined,
            }
            self._merged = ctx
        return self._merged

    def _append_compatible(self, prev_ctx: AnalysisContext, n_prev: int) -> bool:
        """Can the previous merged context absorb shards ``n_prev..``?"""
        pds = prev_ctx.dataset
        window = self._store.window
        if (float(pds.window.start), float(pds.window.end)) != (
            float(window.start),
            float(window.end),
        ):
            return False
        for k in range(n_prev, self.n_shards):
            sds = self.shard_context(k).dataset
            if (
                sds.n_attacks == 0
                or list(sds.families) != list(pds.families)
                or sds.victims.n_targets != pds.victims.n_targets
                or sds.bots.lat.size != pds.bots.lat.size
            ):
                return False
        return True

    def _grow(self, key: Hashable, pieces: list[np.ndarray]) -> np.ndarray:
        """Concatenate ``pieces`` into a fresh growable buffer under ``key``.

        Bitwise the same array ``np.concatenate(pieces)`` yields (one
        copy of each piece, in order), but with reserved tail capacity
        so :meth:`_regrow` can extend it in place on the next append.
        """
        from . import merge as _merge

        if not pieces:
            return np.zeros(0)
        gb = _merge.GrowBuffer(pieces)
        self._view_bufs[key] = gb
        return gb.view

    def _regrow(
        self, key: Hashable, prev: np.ndarray, pieces: list[np.ndarray]
    ) -> np.ndarray:
        """Extend ``key``'s buffer by ``pieces`` when ``prev`` is its view.

        Falls back to a fresh buffer (one full copy, headroom restored)
        when the buffer is missing, was superseded, or is out of room.
        """
        gb = self._view_bufs.get(key)
        if gb is not None and gb.view is prev:
            out = gb.extend(pieces)
            if out is not None:
                return out
        return self._grow(key, [prev, *pieces])

    def _finalize_full(self, partial) -> AnalysisContext:
        """Assemble the merged context from scratch (all K shards)."""
        from . import geolocation as _geolocation
        from . import merge as _merge
        from . import shift as _shift
        from ..io import colstore as _colstore

        reg = _obs_registry()
        merged_views = reg.counter("shard.merge.views")
        for index in sorted(self._stale_interiors):
            if index < len(self._shard_ctxs) and self._shard_ctxs[index] is not None:
                self._shard_ctxs[index].invalidate_views(
                    "snapshot_dispersions_interior"
                )
        self._stale_interiors.clear()

        shards = [self.shard_context(k) for k in range(self.n_shards)]
        self._growable = _colstore.GrowableConcat([c.dataset for c in shards])
        self._view_bufs = {}
        ds = self._growable.dataset
        ctx = AnalysisContext.of(ds)
        bases = [int(b) for b in self._store.shard_bases()]

        def seed(key: Hashable, value: Any) -> None:
            if ctx.seed_view(key, value):
                merged_views.inc()

        seed(("bot_coords_radians",), self._shared_bot_coords())
        grouped_by_target: dict[int, np.ndarray] = {}
        for gkey, column in (
            ("family_attack_index", "family_idx"),
            ("botnet_attack_index", "botnet_id"),
            ("target_attack_index", "target_idx"),
        ):
            parts = [
                c._groups_by(gkey, getattr(c.dataset, column)) for c in shards
            ]
            groups = _merge.merge_grouped_indices(parts, bases)
            seed((gkey,), groups)
            if gkey == "target_attack_index":
                grouped_by_target = groups
        seed(
            ("attack_intervals",),
            self._grow(
                ("attack_intervals",),
                _merge.interval_pieces(
                    [c.dataset.start for c in shards],
                    [c.attack_intervals() for c in shards],
                ),
            ),
        )
        seed(
            ("durations",),
            self._grow(("durations",), [c.durations() for c in shards]),
        )
        seed(
            ("target_country_idx",),
            self._grow(
                ("target_country_idx",),
                [c.target_country_idx() for c in shards],
            ),
        )
        seed(
            ("target_org_idx",),
            self._grow(("target_org_idx",), [c.target_org_idx() for c in shards]),
        )
        days = self._grow(
            ("daily_days",),
            [((ds.start - ds.window.start) // 86400).astype(np.int64)],
        )
        self._seed_partial_views(ctx, seed, partial, ds, days)
        # Walks ascending org order over the seeded marginal — the
        # same order the unsharded builder uses.
        ctx.victim_org_type_counts()

        self._seed_stitched_scans(
            ctx,
            seed,
            ds,
            grouped_by_target,
            bases,
            lambda kind: [
                self.shard_scan_events(k, kind) for k in range(self.n_shards)
            ],
            prev_events=None,
        )

        present: dict[str, list[int]] = {}
        for k in range(self.n_shards):
            for family in self.shard_families(k):
                present.setdefault(family, []).append(k)
        strip_ts = self._strip_ts()
        for family, in_shards in present.items():
            here = [shards[k] for k in in_shards]
            starts_parts = [c.family_starts(family) for c in here]
            seed(
                ("family_starts", family),
                self._grow(("family_starts", family), starts_parts),
            )
            seed(
                ("family_intervals", family, True),
                self._grow(
                    ("family_intervals", family, True),
                    _merge.interval_pieces(
                        starts_parts,
                        [c.family_intervals(family) for c in here],
                    ),
                ),
            )
            seed(
                ("durations", family),
                self._grow(
                    ("durations", family), [c.durations(family) for c in here]
                ),
            )
            off_pieces, flat_pieces = _merge.csr_pieces(
                [c.family_participants(family) for c in here]
            )
            fp_key = ("family_participants", family)
            seed(
                fp_key,
                (
                    self._grow((fp_key, 0), off_pieces),
                    self._grow((fp_key, 1), flat_pieces),
                ),
            )
            disp = [c.attack_dispersions(family) for c in here]
            disp_key = ("attack_dispersions", family)
            seed(
                disp_key,
                (
                    self._grow((disp_key, 0), [p[0] for p in disp]),
                    self._grow((disp_key, 1), [p[1] for p in disp]),
                ),
            )
            self._seed_partial_family_views(seed, partial, ds, family)
            pairs = partial.weekly_pairs[family]
            seed(("weekly_shift_pairs", family), pairs)
            seed(
                ("weekly_shift", family),
                _shift._finish_weekly_shift(ds, family, *pairs),
            )
            interiors = [
                self.shard_snapshot_dispersions(k, family) for k in in_shards
            ]
            strip = _geolocation._snapshot_dispersions(ctx, family, ts=strip_ts)
            seed(
                ("snapshot_dispersions", family),
                _merge.merge_snapshot_dispersions(interiors + [strip]),
            )
        return ctx

    def _seed_partial_views(self, ctx, seed, partial, ds, days=None) -> None:
        """Seed the global re-reduction views from the tree partial.

        ``days`` optionally passes the per-attack day column kept in a
        growable buffer so the busiest-day re-derivation skips its
        full-column pass on re-merges.
        """
        from . import merge as _merge

        seed(("target_country_counts",), partial.target_country_counts)
        seed(("target_org_counts",), partial.target_org_counts)
        seed(("protocol_breakdown",), partial.protocol_breakdown)
        seed(("protocol_popularity",), partial.protocol_popularity)
        seed(
            ("daily_distribution", None),
            _merge.finish_daily_distribution(
                partial.daily_counts[None], ds, None, days=days
            ),
        )

    def _seed_partial_family_views(self, seed, partial, ds, family: str) -> None:
        from . import merge as _merge

        seed(
            ("family_target_country_counts", family),
            partial.family_country_counts[family],
        )
        seed(
            ("daily_distribution", family),
            _merge.finish_daily_distribution(
                partial.daily_counts[family], ds, family
            ),
        )

    def _seed_stitched_scans(
        self, ctx, seed, ds, grouped_by_target, bases, parts_of, prev_events
    ) -> None:
        """Seed collaborations/chains via the vectorised boundary stitch."""
        from . import merge as _merge

        reg = _obs_registry()
        stitched_targets: set[int] = set()
        for kind in ("collaborations", "chains"):
            if prev_events is None:
                events, targets = _merge.stitch_scan_events(
                    parts_of(kind), ds, grouped_by_target, bases, kind
                )
            else:
                events, targets = _merge.seam_stitch_scan_events(
                    prev_events[kind],
                    parts_of(kind),
                    ds,
                    grouped_by_target,
                    bases,
                    kind,
                )
            stitched_targets |= targets
            seed((kind,), events)
        reg.counter("shard.merge.stitched_targets").inc(len(stitched_targets))

    def _finalize_append(
        self, prev_ctx: AnalysisContext, n_prev: int, partial
    ) -> AnalysisContext:
        """Extend the previous merged context by the appended shards.

        The previous merged context acts as one big left operand: its
        linear views concatenate with the new shards' views, the scan
        stitch probes only the new seams, and of the snapshot grid only
        timestamps whose 24-hour lookback reaches the new rows are
        recomputed (every earlier snapshot sees an unchanged window, and
        timestamp-partitioned evaluation is exactly what the interior/
        strip machinery already pins as bitwise-safe).
        """
        from . import geolocation as _geolocation
        from . import merge as _merge
        from . import shift as _shift
        from ..io import colstore as _colstore

        reg = _obs_registry()
        merged_views = reg.counter("shard.merge.views")
        new_indices = list(range(n_prev, self.n_shards))
        new_shards = [self.shard_context(k) for k in new_indices]
        pds = prev_ctx.dataset
        ds = None
        if self._growable is not None and self._growable.dataset is pds:
            # Fast path: the previous merged columns sit in buffers with
            # reserved headroom — copy only the appended shards' rows.
            ds = self._growable.extend([c.dataset for c in new_shards])
        if ds is None:
            # Headroom exhausted (or prev context predates the buffers):
            # one full copy, which also restores the reserve.
            self._growable = _colstore.GrowableConcat(
                [pds] + [c.dataset for c in new_shards]
            )
            ds = self._growable.dataset
        ctx = AnalysisContext.of(ds)
        bases = [0]
        for part in [prev_ctx] + new_shards[:-1]:
            bases.append(bases[-1] + int(part.dataset.n_attacks))

        def seed(key: Hashable, value: Any) -> None:
            if ctx.seed_view(key, value):
                merged_views.inc()

        seed(("bot_coords_radians",), self._shared_bot_coords())
        grouped_by_target: dict[int, np.ndarray] = {}
        for gkey, column in (
            ("family_attack_index", "family_idx"),
            ("botnet_attack_index", "botnet_id"),
            ("target_attack_index", "target_idx"),
        ):
            parts = [
                c._groups_by(gkey, getattr(c.dataset, column))
                for c in [prev_ctx] + new_shards
            ]
            groups = _merge.merge_grouped_indices(parts, bases)
            seed((gkey,), groups)
            if gkey == "target_attack_index":
                grouped_by_target = groups
        empty = np.zeros(0)
        seed(
            ("attack_intervals",),
            self._regrow(
                ("attack_intervals",),
                prev_ctx.attack_intervals(),
                # An empty leading diff array yields only the pieces
                # after the previous merged part: the seam gap plus the
                # new shards' gap arrays.
                _merge.interval_pieces(
                    [pds.start] + [c.dataset.start for c in new_shards],
                    [empty] + [c.attack_intervals() for c in new_shards],
                ),
            ),
        )
        seed(
            ("durations",),
            self._regrow(
                ("durations",),
                prev_ctx.durations(),
                [c.durations() for c in new_shards],
            ),
        )
        seed(
            ("target_country_idx",),
            self._regrow(
                ("target_country_idx",),
                prev_ctx.target_country_idx(),
                [c.target_country_idx() for c in new_shards],
            ),
        )
        seed(
            ("target_org_idx",),
            self._regrow(
                ("target_org_idx",),
                prev_ctx.target_org_idx(),
                [c.target_org_idx() for c in new_shards],
            ),
        )
        days = None
        day_buf = self._view_bufs.get(("daily_days",))
        if day_buf is not None and day_buf.n == pds.n_attacks:
            days = day_buf.extend(
                [
                    ((c.dataset.start - ds.window.start) // 86400).astype(np.int64)
                    for c in new_shards
                ]
            )
        if days is None:
            days = self._grow(
                ("daily_days",),
                [((ds.start - ds.window.start) // 86400).astype(np.int64)],
            )
        self._seed_partial_views(ctx, seed, partial, ds, days)
        ctx.victim_org_type_counts()

        self._seed_stitched_scans(
            ctx,
            seed,
            ds,
            grouped_by_target,
            bases,
            lambda kind: [self.shard_scan_events(k, kind) for k in new_indices],
            prev_events={
                "collaborations": prev_ctx.collaborations(),
                "chains": prev_ctx.chains(),
            },
        )

        prev_keys = set(prev_ctx.view_keys())
        new_families: dict[str, list[AnalysisContext]] = {}
        new_family_indices: dict[str, list[int]] = {}
        for k, shard in zip(new_indices, new_shards):
            for family in self.shard_families(k):
                new_families.setdefault(family, []).append(shard)
                new_family_indices.setdefault(family, []).append(k)
        cutoff = float(ds.start[bases[1]])
        # Snapshots before the cutoff see an unchanged 24 h window and
        # keep their previous values; of the rest, each new shard's
        # interior hours were already evaluated in the map phase, so
        # only the seam strips (lookbacks that straddle a new edge) are
        # recomputed on the merged context.
        grid = _geolocation._snapshot_grid(self._store.window)
        covered = np.zeros(grid.size, dtype=bool)
        for k in new_indices:
            covered |= np.isin(grid, self._interior_ts(k))
        strip_ts = grid[(grid >= cutoff) & ~covered]
        for family in partial.families:
            # A battery run on the previous context lazily builds empty
            # views for families it hasn't seen yet, so key presence
            # alone is not evidence the family has rows to extend.
            in_prev = (
                ("family_starts", family) in prev_keys
                and prev_ctx.family_starts(family).size > 0
            )
            here = new_families.get(family, [])
            new_starts = [c.family_starts(family) for c in here]
            new_fp = [c.family_participants(family) for c in here]
            new_disp = [c.attack_dispersions(family) for c in here]
            fp_key = ("family_participants", family)
            disp_key = ("attack_dispersions", family)
            if in_prev:
                prev_starts = prev_ctx.family_starts(family)
                seed(
                    ("family_starts", family),
                    self._regrow(("family_starts", family), prev_starts, new_starts),
                )
                seed(
                    ("family_intervals", family, True),
                    self._regrow(
                        ("family_intervals", family, True),
                        prev_ctx.family_intervals(family),
                        _merge.interval_pieces(
                            [prev_starts] + new_starts,
                            [empty] + [c.family_intervals(family) for c in here],
                        ),
                    ),
                )
                seed(
                    ("durations", family),
                    self._regrow(
                        ("durations", family),
                        prev_ctx.durations(family),
                        [c.durations(family) for c in here],
                    ),
                )
                # The previous offsets are already global (their own
                # merge rebased them from zero), so rebasing the new
                # shards' offsets continues from the previous flat end.
                prev_fp = prev_ctx.family_participants(family)
                off_pieces: list[np.ndarray] = []
                base = prev_fp[0][-1]
                for offsets, _flat in new_fp:
                    off_pieces.append(offsets[1:] + base)
                    base = base + offsets[-1]
                seed(
                    fp_key,
                    (
                        self._regrow((fp_key, 0), prev_fp[0], off_pieces),
                        self._regrow(
                            (fp_key, 1), prev_fp[1], [f for _o, f in new_fp]
                        ),
                    ),
                )
                prev_disp = prev_ctx.attack_dispersions(family)
                seed(
                    disp_key,
                    (
                        self._regrow(
                            (disp_key, 0), prev_disp[0], [p[0] for p in new_disp]
                        ),
                        self._regrow(
                            (disp_key, 1), prev_disp[1], [p[1] for p in new_disp]
                        ),
                    ),
                )
            else:
                # Family first seen in the appended shards: fresh buffers.
                seed(
                    ("family_starts", family),
                    self._grow(("family_starts", family), new_starts),
                )
                seed(
                    ("family_intervals", family, True),
                    self._grow(
                        ("family_intervals", family, True),
                        _merge.interval_pieces(
                            new_starts,
                            [c.family_intervals(family) for c in here],
                        ),
                    ),
                )
                seed(
                    ("durations", family),
                    self._grow(
                        ("durations", family),
                        [c.durations(family) for c in here],
                    ),
                )
                off_pieces, flat_pieces = _merge.csr_pieces(new_fp)
                seed(
                    fp_key,
                    (
                        self._grow((fp_key, 0), off_pieces),
                        self._grow((fp_key, 1), flat_pieces),
                    ),
                )
                seed(
                    disp_key,
                    (
                        self._grow((disp_key, 0), [p[0] for p in new_disp]),
                        self._grow((disp_key, 1), [p[1] for p in new_disp]),
                    ),
                )
            self._seed_partial_family_views(seed, partial, ds, family)
            pairs = partial.weekly_pairs[family]
            seed(("weekly_shift_pairs", family), pairs)
            seed(
                ("weekly_shift", family),
                _shift._finish_weekly_shift(ds, family, *pairs),
            )
            if in_prev:
                prev_ts, prev_values = prev_ctx.snapshot_dispersions(family)
                cut = int(np.searchsorted(prev_ts, cutoff, side="left"))
                parts = [(prev_ts[:cut], prev_values[:cut])]
                parts += [
                    self.shard_snapshot_dispersions(k, family)
                    for k in new_family_indices.get(family, [])
                ]
                parts.append(
                    _geolocation._snapshot_dispersions(ctx, family, ts=strip_ts)
                )
                seed(
                    ("snapshot_dispersions", family),
                    _merge.merge_snapshot_dispersions(parts),
                )
            # A family first seen in the appended shards has no previous
            # series to extend; its view builds lazily with the full
            # kernel, which is the flat computation itself.
        return ctx

    def merged_reference(self) -> AnalysisContext:
        """The retained serial left-fold merge (the parity reference).

        This is the pre-tree implementation, kept verbatim as the
        ``_reference_*``-style pin for :meth:`merged`: a serial walk
        over all K shards with the conservative boundary-suspect rescan.
        Builds a fresh context on every call (never cached, no counters)
        so CI's merge-parity step can diff it against :meth:`merged`.
        """
        from . import geolocation as _geolocation
        from . import merge as _merge
        from . import shift as _shift

        for index in range(self.n_shards):
            self.build_shard(index)

        ds = self._store.merged_dataset()
        ctx = AnalysisContext.of(ds)
        bases = [int(b) for b in self._store.shard_bases()]
        shards = [self.shard_context(k) for k in range(self.n_shards)]
        shard_ds = [c.dataset for c in shards]
        seed = ctx.seed_view

        seed(("bot_coords_radians",), self._shared_bot_coords())
        for gkey, column in (
            ("family_attack_index", "family_idx"),
            ("botnet_attack_index", "botnet_id"),
            ("target_attack_index", "target_idx"),
        ):
            parts = [
                c._groups_by(gkey, getattr(c.dataset, column)) for c in shards
            ]
            seed((gkey,), _merge.merge_grouped_indices(parts, bases))
        seed(
            ("attack_intervals",),
            _merge.merge_intervals(
                [c.dataset.start for c in shards],
                [c.attack_intervals() for c in shards],
            ),
        )
        seed(("durations",), _merge.merge_concat([c.durations() for c in shards]))
        seed(
            ("target_country_idx",),
            _merge.merge_concat([c.target_country_idx() for c in shards]),
        )
        seed(
            ("target_org_idx",),
            _merge.merge_concat([c.target_org_idx() for c in shards]),
        )
        seed(
            ("target_country_counts",),
            _merge.merge_counts([c.target_country_counts() for c in shards]),
        )
        seed(
            ("target_org_counts",),
            _merge.merge_counts([c.target_org_counts() for c in shards]),
        )
        seed(
            ("protocol_breakdown",),
            _merge.merge_protocol_breakdown(
                [c.protocol_breakdown() for c in shards]
            ),
        )
        seed(
            ("protocol_popularity",),
            _merge.merge_protocol_popularity(
                [c.protocol_popularity() for c in shards]
            ),
        )
        seed(
            ("daily_distribution", None),
            _merge.merge_daily_distributions(
                [c.daily_distribution(None) for c in shards], ds, None
            ),
        )
        ctx.victim_org_type_counts()

        suspect = _merge.find_boundary_suspects(shard_ds, ds.victims.n_targets)
        seed(
            ("collaborations",),
            _merge.merge_scan_events(
                [c.collaborations() for c in shards],
                bases,
                suspect,
                ds,
                "collaborations",
            ),
        )
        seed(
            ("chains",),
            _merge.merge_scan_events(
                [c.chains() for c in shards], bases, suspect, ds, "chains"
            ),
        )

        present: dict[str, list[int]] = {}
        for k in range(self.n_shards):
            for family in self.shard_families(k):
                present.setdefault(family, []).append(k)
        strip_ts = self._strip_ts()
        for family, in_shards in present.items():
            here = [shards[k] for k in in_shards]
            seed(
                ("family_starts", family),
                _merge.merge_concat([c.family_starts(family) for c in here]),
            )
            seed(
                ("family_intervals", family, True),
                _merge.merge_intervals(
                    [c.family_starts(family) for c in here],
                    [c.family_intervals(family) for c in here],
                ),
            )
            seed(
                ("durations", family),
                _merge.merge_concat([c.durations(family) for c in here]),
            )
            seed(
                ("family_participants", family),
                _merge.merge_csr([c.family_participants(family) for c in here]),
            )
            seed(
                ("attack_dispersions", family),
                _merge.merge_series([c.attack_dispersions(family) for c in here]),
            )
            seed(
                ("family_target_country_counts", family),
                _merge.merge_counts(
                    [c.family_target_country_counts(family) for c in here]
                ),
            )
            seed(
                ("daily_distribution", family),
                _merge.merge_daily_distributions(
                    [c.daily_distribution(family) for c in here], ds, family
                ),
            )
            pairs = _merge.merge_weekly_pairs(
                [c.weekly_shift_pairs(family) for c in here]
            )
            seed(("weekly_shift_pairs", family), pairs)
            seed(
                ("weekly_shift", family),
                _shift._finish_weekly_shift(ds, family, *pairs),
            )
            interiors = [
                self.shard_snapshot_dispersions(k, family) for k in in_shards
            ]
            strip = _geolocation._snapshot_dispersions(ctx, family, ts=strip_ts)
            seed(
                ("snapshot_dispersions", family),
                _merge.merge_snapshot_dispersions(interiors + [strip]),
            )
        return ctx


def _shard_build_worker(
    sctx: "ShardedAnalysisContext", index: int
) -> list[tuple[Hashable, Any]]:
    """Build one shard's mergeable views; return the view delta.

    Runs in-process or in a forked worker (same contract as
    :func:`_prewarm_worker`): views memoize on the shard's own context,
    and the delta — minus the pre-seeded shared geo matrix — is the only
    pickle a forked fan-out pays for.
    """
    ctx = sctx.shard_context(index)
    before = set(ctx._views)
    with _obs_registry().span(f"shard:{index}"):
        ds = ctx.dataset
        ctx._groups_by("family_attack_index", ds.family_idx)
        ctx._groups_by("botnet_attack_index", ds.botnet_id)
        ctx._groups_by("target_attack_index", ds.target_idx)
        ctx.attack_intervals()
        ctx.durations()
        ctx.target_country_idx()
        ctx.target_org_idx()
        ctx.target_country_counts()
        ctx.target_org_counts()
        ctx.protocol_breakdown()
        ctx.protocol_popularity()
        ctx.daily_distribution(None)
        ctx.collaborations()
        ctx.chains()
        # Rebase scan events to global rows here, in the (parallel) map
        # phase, so the merge only has to stitch the boundaries.
        sctx.shard_scan_events(index, "collaborations")
        sctx.shard_scan_events(index, "chains")
        for family in sctx.shard_families(index):
            ctx.family_starts(family)
            ctx.family_intervals(family)
            ctx.durations(family)
            ctx.family_participants(family)
            ctx.attack_dispersions(family)
            ctx.family_target_country_counts(family)
            ctx.daily_distribution(family)
            ctx.weekly_shift_pairs(family)
            sctx.shard_snapshot_dispersions(index, family)
    return [(k, v) for k, v in ctx.materialized().items() if k not in before]


def _prewarm_worker(ctx: "AnalysisContext", spec: tuple) -> list[tuple[Hashable, Any]]:
    """One prewarm task: build a related view group, return the delta.

    Runs in-process (serial mode) or in a forked worker; either way it
    builds through the context's own accessors, so the views memoize and
    instrument exactly as a lazy build would.  The return value is the
    set of views this task materialised — the only pickle a forked
    fan-out pays for.  Forecasts mirror the paper's Darkshell call:
    families with too few points are skipped, not raised.
    """
    before = set(ctx._views)
    kind = spec[0]
    if kind == "family":
        family = spec[1]
        ctx.family_participants(family)
        ctx.attack_dispersions(family)
        ctx.family_starts(family)
        ctx.family_intervals(family)
        ctx.durations(family)
        ctx.weekly_shift(family)
    elif kind == "forecast":
        try:
            ctx.dispersion_forecast(spec[1])
        except ValueError:
            pass
    elif kind == "collaborations":
        ctx.collaborations()
    elif kind == "chains":
        ctx.chains()
    elif kind == "attack_intervals":
        ctx.attack_intervals()
    elif kind == "globals":
        from . import intervals as _intervals

        ctx.workload_summary()
        ctx.protocol_breakdown()
        ctx.protocol_popularity()
        ctx.daily_distribution(None)
        ctx.target_country_idx()
        ctx.target_org_idx()
        ctx.target_country_counts()
        ctx.victim_org_type_counts()
        _intervals.simultaneous_attacks(ctx)
    else:  # pragma: no cover - spec list and worker evolve together
        raise ValueError(f"unknown prewarm spec {spec!r}")
    return [(k, v) for k, v in ctx.materialized().items() if k not in before]
