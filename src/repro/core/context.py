"""AnalysisContext: the shared derived-view layer over one dataset.

Nearly every table and figure of the paper re-derives the same
intermediates from the raw attack columns — per-family attack indices,
sorted interval arrays, per-family dispersion series, victim marginals,
the collaboration/chain structures.  :class:`AnalysisContext` wraps an
immutable :class:`~repro.core.dataset.AttackDataset` and memoizes those
views so they are computed **once** and shared by every consumer: the
``core`` analyses, all 18 experiment modules, the CLI and the defense
policies.

Design notes:

* Views are lazy: nothing is computed until a consumer asks.
* Memoization is thread-safe with per-key locks, so independent
  experiments can run concurrently (``registry.run_all(jobs=N)``) while
  still computing each shared view exactly once.
* The actual analysis code stays in the domain modules (``intervals``,
  ``geolocation``, ``collaboration``, …) as module-private ``_impl``
  functions; the context only orchestrates and caches.  Builders resolve
  the impls through the module object at call time, so tests can spy on
  them with ``monkeypatch``.
* Views with picklable values can be exported/imported as a *snapshot*
  (:meth:`export_views` / :meth:`import_views`); :mod:`repro.io.cache`
  stores snapshots next to the dataset pickle so repeat CLI invocations
  skip the derivation work entirely.

``AnalysisContext.of`` attaches the context to the dataset instance, so
code that still passes a raw ``AttackDataset`` around transparently
shares one context per dataset.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Hashable, Union

import numpy as np

from ..obs import registry as _obs_registry
from .dataset import AttackDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..monitor.schemas import Protocol
    from .collaboration import CollabEvent
    from .consecutive import AttackChain
    from .overview import DailyDistribution, WorkloadSummary
    from .prediction import DispersionForecast
    from .shift import WeeklyShift

__all__ = ["AnalysisContext", "AnalysisSource", "ShardedAnalysisContext"]

#: Anything the analyses accept: the raw dataset or its context.
AnalysisSource = Union[AttackDataset, "AnalysisContext"]

#: Attribute used to attach the shared context to a dataset instance.
_CONTEXT_ATTR = "_analysis_context"
_ATTACH_LOCK = threading.Lock()


class AnalysisContext:
    """Lazily-computed, memoized derived views over one dataset.

    ``epoch`` tags the context with the revision of the data it was built
    from.  Batch datasets are epoch 0; the streaming layer
    (:mod:`repro.stream`) bumps the epoch on every append and hands out a
    fresh context per snapshot, so consumers holding an older context
    keep a coherent (if stale) set of views while new consumers see the
    incrementally-updated ones.

    >>> from repro import api
    >>> ctx = api.context(api.generate(scale=0.005))
    >>> ctx.epoch
    0
    >>> ctx.view(("durations",), lambda: ctx.dataset.end - ctx.dataset.start).size
    258
    """

    def __init__(self, ds: AttackDataset, *, epoch: int = 0) -> None:
        if not isinstance(ds, AttackDataset):
            raise TypeError(f"AnalysisContext wraps an AttackDataset, got {type(ds).__name__}")
        self._ds = ds
        self.epoch = int(epoch)
        self._views: dict[Hashable, Any] = {}
        self._meta_lock = threading.Lock()
        self._key_locks: dict[Hashable, threading.Lock] = {}
        #: Per-view-kind (hit counter, miss counter, build histogram),
        #: resolved from the default registry once per kind and cached so
        #: the hot hit path costs one dict lookup + one counter add.
        self._view_obs: dict[str, tuple] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, source: AnalysisSource) -> "AnalysisContext":
        """Coerce a dataset (or context) to the dataset's shared context.

        The context is attached to the dataset instance on first use, so
        every consumer of the same dataset shares one set of views.  Use
        the plain constructor instead when an *unshared* context is
        needed (e.g. cold-start benchmarks).
        """
        if isinstance(source, AnalysisContext):
            return source
        if not isinstance(source, AttackDataset):
            raise TypeError(
                f"expected AttackDataset or AnalysisContext, got {type(source).__name__}"
            )
        ctx = source.__dict__.get(_CONTEXT_ATTR)
        if ctx is None:
            with _ATTACH_LOCK:
                ctx = source.__dict__.get(_CONTEXT_ATTR)
                if ctx is None:
                    ctx = cls(source)
                    source.__dict__[_CONTEXT_ATTR] = ctx
        return ctx

    @classmethod
    def attach(cls, ds: AttackDataset, *, epoch: int = 0) -> "AnalysisContext":
        """Create a context and install it as the dataset's shared one.

        Unlike :meth:`of`, the caller controls the epoch tag; used by the
        streaming layer when it materialises a snapshot.  Raises if the
        dataset already carries a context.
        """
        ctx = cls(ds, epoch=epoch)
        with _ATTACH_LOCK:
            if ds.__dict__.get(_CONTEXT_ATTR) is not None:
                raise ValueError("dataset already has an attached AnalysisContext")
            ds.__dict__[_CONTEXT_ATTR] = ctx
        return ctx

    @property
    def dataset(self) -> AttackDataset:
        return self._ds

    # -- memoization core --------------------------------------------------

    def _view_instruments(self, kind: str) -> tuple:
        """The (hit, miss, build-time) instruments for one view kind."""
        entry = self._view_obs.get(kind)
        if entry is None:
            reg = _obs_registry()
            entry = self._view_obs[kind] = (
                reg.counter("context.view.hit", view=kind),
                reg.counter("context.view.miss", view=kind),
                reg.histogram("context.view.build_seconds", view=kind),
            )
        return entry

    def view(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the memoized view for ``key``, building it at most once.

        Double-checked per-key locking: concurrent readers of a missing
        view serialise on that view's lock only, so two experiments can
        build *different* views in parallel while never building the
        *same* view twice.

        Every call records a ``context.view.hit`` / ``context.view.miss``
        counter tick (labelled by the key's first element — the view
        kind), and each build's latency lands in the
        ``context.view.build_seconds`` histogram under a ``view:<kind>``
        stage span.
        """
        kind = key[0] if isinstance(key, tuple) and key else str(key)
        views = self._views
        try:
            value = views[key]
        except KeyError:
            pass
        else:
            self._view_instruments(kind)[0].inc()
            return value
        with self._meta_lock:
            lock = self._key_locks.setdefault(key, threading.Lock())
        with lock:
            if key in views:
                self._view_instruments(kind)[0].inc()  # lost the build race
            else:
                _hit, miss, build_hist = self._view_instruments(kind)
                miss.inc()
                started = time.perf_counter()
                with _obs_registry().span(f"view:{kind}"):
                    views[key] = build()
                build_hist.observe(time.perf_counter() - started)
        return views[key]

    @property
    def n_views(self) -> int:
        """Number of materialised views (diagnostics / tests)."""
        return len(self._views)

    def view_keys(self) -> list[Hashable]:
        """Keys of the materialised views, in creation order."""
        return list(self._views)

    def materialized(self) -> dict[Hashable, Any]:
        """Shallow copy of the materialised views (no pickling check).

        The streaming layer walks this to carry cheap views forward
        across an append; :meth:`export_views` stays the picklable
        variant for on-disk snapshots.
        """
        return dict(self._views)

    def seed_view(self, key: Hashable, value: Any) -> bool:
        """Install a precomputed value for ``key`` if it is not built yet.

        Returns True when the value was installed.  The caller guarantees
        the value equals what the builder would produce — the streaming
        layer's incremental updaters derive it from the previous epoch's
        view plus the appended rows.
        """
        with self._meta_lock:
            if key in self._views:
                return False
            self._views[key] = value
            return True

    # -- attack groupings --------------------------------------------------

    def _groups_by(self, key: str, column: np.ndarray) -> dict[int, np.ndarray]:
        """One grouping pass: column value -> sorted attack indices."""

        def build() -> dict[int, np.ndarray]:
            order = np.argsort(column, kind="stable")
            boundaries = np.flatnonzero(np.diff(column[order]) != 0) + 1
            out: dict[int, np.ndarray] = {}
            # Stable sort keeps ascending attack indices within each
            # group, i.e. chronological order.
            for group in np.split(order, boundaries) if order.size else []:
                out[int(column[group[0]])] = group
            return out

        return self.view((key,), build)

    def family_attacks(self, family: str) -> np.ndarray:
        """Attack indices (chronological) launched by ``family``.

        One grouping pass over ``family_idx`` serves every family —
        unlike :meth:`AttackDataset.attacks_of`, which scans the full
        column per call.
        """
        groups = self._groups_by("family_attack_index", self._ds.family_idx)
        fam = self._ds.family_id(family)
        return groups.get(fam, np.zeros(0, dtype=np.int64))

    def botnet_attacks(self, botnet_id: int) -> np.ndarray:
        """Attack indices (chronological) launched by one botnet."""
        groups = self._groups_by("botnet_attack_index", self._ds.botnet_id)
        return groups.get(int(botnet_id), np.zeros(0, dtype=np.int64))

    def target_attacks(self, target_index: int) -> np.ndarray:
        """Attack indices (chronological) against one victim."""
        groups = self._groups_by("target_attack_index", self._ds.target_idx)
        return groups.get(int(target_index), np.zeros(0, dtype=np.int64))

    # -- intervals and durations -------------------------------------------

    def attack_intervals(self) -> np.ndarray:
        """Gaps between consecutive attacks across all families."""
        ds = self._ds
        return self.view(
            ("attack_intervals",),
            lambda: np.diff(ds.start) if ds.n_attacks >= 2 else np.zeros(0),
        )

    def family_starts(self, family: str) -> np.ndarray:
        """Sorted start times of one family's attacks."""
        return self.view(
            ("family_starts", family),
            lambda: np.sort(self._ds.start[self.family_attacks(family)]),
        )

    def family_intervals(self, family: str, include_simultaneous: bool = True) -> np.ndarray:
        """Gaps between consecutive attacks of one family."""

        def build() -> np.ndarray:
            if include_simultaneous:
                starts = self.family_starts(family)
                if starts.size < 2:
                    return np.zeros(0)
                return np.diff(starts)
            gaps = self.family_intervals(family, include_simultaneous=True)
            return gaps[gaps > 0]

        return self.view(("family_intervals", family, bool(include_simultaneous)), build)

    def durations(self, family: str | None = None) -> np.ndarray:
        """Per-attack durations in seconds, optionally for one family."""
        if family is None:
            return self.view(("durations",), lambda: self._ds.end - self._ds.start)
        return self.view(
            ("durations", family),
            lambda: self.durations()[self.family_attacks(family)],
        )

    # -- participants and geolocation --------------------------------------

    def bot_coords_radians(self) -> tuple[np.ndarray, np.ndarray]:
        """(lat, lon) of every bot in radians — the participant geo matrix."""
        return self.view(
            ("bot_coords_radians",),
            lambda: (np.radians(self._ds.bots.lat), np.radians(self._ds.bots.lon)),
        )

    def family_participants(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """CSR participant layout restricted to one family's attacks.

        Returns ``(offsets, flat)`` where ``flat[offsets[k] :
        offsets[k + 1]]`` are the bot indices of the family's ``k``-th
        attack (chronological order, as in :meth:`family_attacks`).
        """

        def build() -> tuple[np.ndarray, np.ndarray]:
            ds = self._ds
            idx = self.family_attacks(family)
            counts = (ds.part_offsets[idx + 1] - ds.part_offsets[idx]).astype(np.int64)
            offsets = np.zeros(idx.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            # One gather instead of a per-attack slice loop: element j of
            # segment k lives at ``part_offsets[idx[k]] + j`` in the
            # dataset-wide CSR, so the source positions are the segment
            # bases repeated per element plus each element's within-
            # segment rank.
            total = int(offsets[-1])
            base = np.repeat(ds.part_offsets[idx].astype(np.int64), counts)
            rank = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
            flat = np.asarray(ds.participants)[base + rank]
            return offsets, flat

        return self.view(("family_participants", family), build)

    def attack_dispersions(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-attack dispersion values for one family, in time order."""

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._attack_dispersions(self, family)

        return self.view(("attack_dispersions", family), build)

    def snapshot_dispersions(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """Hourly-snapshot dispersion series for one family (§II-B view)."""

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._snapshot_dispersions(self, family)

        return self.view(("snapshot_dispersions", family), build)

    # -- victim marginals --------------------------------------------------

    def target_country_idx(self) -> np.ndarray:
        """Per-attack country index of the victim."""
        return self.view(
            ("target_country_idx",),
            lambda: self._ds.victims.country_idx[self._ds.target_idx],
        )

    def target_org_idx(self) -> np.ndarray:
        """Per-attack organization index of the victim."""
        return self.view(
            ("target_org_idx",),
            lambda: self._ds.victims.org_idx[self._ds.target_idx],
        )

    def target_country_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Global victim-country marginal: ``(country indices, counts)``."""
        return self.view(
            ("target_country_counts",),
            lambda: np.unique(self.target_country_idx(), return_counts=True),
        )

    def target_org_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Global victim-organization marginal: ``(org indices, counts)``."""
        return self.view(
            ("target_org_counts",),
            lambda: np.unique(self.target_org_idx(), return_counts=True),
        )

    def family_target_country_counts(self, family: str) -> tuple[np.ndarray, np.ndarray]:
        """One family's victim-country marginal."""
        return self.view(
            ("family_target_country_counts", family),
            lambda: np.unique(
                self.target_country_idx()[self.family_attacks(family)], return_counts=True
            ),
        )

    def victim_org_type_counts(self) -> dict[str, int]:
        """Attacks per victim-organization type."""

        def build() -> dict[str, int]:
            from . import targets as _targets

            return _targets._victim_org_types(self)

        return self.view(("victim_org_type_counts",), build)

    # -- overview ----------------------------------------------------------

    def workload_summary(self) -> "WorkloadSummary":
        """Table III populations (computed once)."""

        def build():
            from . import overview as _overview

            return _overview._workload_summary(self._ds)

        return self.view(("workload_summary",), build)

    def protocol_breakdown(self) -> "list[tuple[Protocol, str, int]]":
        """Table II cells (protocol, family, attacks)."""

        def build():
            from . import overview as _overview

            return _overview._protocol_breakdown(self._ds)

        return self.view(("protocol_breakdown",), build)

    def protocol_popularity(self) -> "dict[Protocol, int]":
        """Fig 1 totals per protocol."""

        def build():
            from . import overview as _overview

            return _overview._protocol_popularity(self._ds)

        return self.view(("protocol_popularity",), build)

    def daily_distribution(self, family: str | None = None) -> "DailyDistribution":
        """Fig 2 daily series (all attacks or one family)."""

        def build():
            from . import overview as _overview

            return _overview._daily_attack_counts(self, family)

        return self.view(("daily_distribution", family), build)

    # -- shift -------------------------------------------------------------

    def weekly_shift_pairs(self, family: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The mergeable half of the weekly shift: attack weeks plus
        unique (week, bot) participation pairs (see ``shift._weekly_pairs``)."""

        def build():
            from . import shift as _shift

            return _shift._weekly_pairs(self, family)

        return self.view(("weekly_shift_pairs", family), build)

    def weekly_shift(self, family: str) -> "WeeklyShift":
        """Fig 8 weekly source-shift series for one family."""

        def build():
            from . import shift as _shift

            return _shift._weekly_shift(self, family)

        return self.view(("weekly_shift", family), build)

    # -- detected structure ------------------------------------------------

    def collaborations(self) -> "list[CollabEvent]":
        """Concurrent collaborations under the paper's default windows."""

        def build():
            from . import collaboration as _collaboration

            return _collaboration._detect_collaborations(
                self._ds,
                _collaboration.START_WINDOW_SECONDS,
                _collaboration.DURATION_WINDOW_SECONDS,
            )

        return self.view(("collaborations",), build)

    def chains(self) -> "list[AttackChain]":
        """Consecutive-attack chains under the paper's default margin."""

        def build():
            from . import consecutive as _consecutive

            return _consecutive._detect_chains(
                self._ds, _consecutive.CHAIN_MARGIN_SECONDS, 2
            )

        return self.view(("chains",), build)

    # -- prediction --------------------------------------------------------

    def dispersion_forecast(self, family: str) -> "DispersionForecast":
        """Table IV ARIMA forecast for one family (default protocol).

        Raises ``ValueError`` for families with too few points; the
        *exception* is not memoized, but the underlying dispersion
        series is, so retries stay cheap.
        """

        def build():
            from . import prediction as _prediction

            return _prediction._predict_family_dispersion(self, family)

        return self.view(("dispersion_forecast", family), build)

    # -- prewarm -----------------------------------------------------------

    def _prewarm_specs(self, families: list[str]) -> list[tuple]:
        """Independent prewarm tasks, skipping already-materialised work.

        A family task is emitted when any of its views is missing; the
        global scans are emitted individually.  On a warm (streaming)
        context the carried views therefore suppress their tasks and
        only the invalidated keys are rebuilt.
        """
        views = self._views
        specs: list[tuple] = []
        for kind in ("collaborations", "chains", "attack_intervals", "globals"):
            key_probe = {
                "collaborations": ("collaborations",),
                "chains": ("chains",),
                "attack_intervals": ("attack_intervals",),
                "globals": ("workload_summary",),
            }[kind]
            if key_probe not in views:
                specs.append((kind,))
        for family in families:
            family_keys = (
                ("family_participants", family),
                ("attack_dispersions", family),
                ("family_starts", family),
                ("family_intervals", family, True),
                ("durations", family),
                ("weekly_shift", family),
            )
            if any(key not in views for key in family_keys):
                specs.append(("family", family))
        from ..experiments.table4_prediction import PAPER_TABLE4

        for family in PAPER_TABLE4:
            if family in families and ("dispersion_forecast", family) not in views:
                specs.append(("forecast", family))
        return specs

    def prewarm(self, jobs: int | None = 1, families: list[str] | None = None) -> int:
        """Build the battery's independent views ahead of time.

        Fans per-family view builds (participants, dispersions, starts,
        intervals, durations, weekly shift), the Table IV forecasts and
        the collaboration/chain scans across the :mod:`repro.par` pool
        (``jobs=None`` picks the default worker count; on platforms
        without ``fork``, or with fewer CPUs than workers, the same
        tasks run serially).  Results are installed via
        :meth:`seed_view`, so a view that is already materialised — for
        example carried across a streaming epoch — is neither rebuilt
        nor overwritten.  Returns the number of views that became
        materialised; the result set is identical for every ``jobs``.

        Observability: the whole pass runs under a ``prewarm`` stage
        span; ``prewarm.tasks`` counts the tasks dispatched and
        ``prewarm.seeded`` the views newly installed.
        """
        from .. import par

        reg = _obs_registry()
        with reg.span("prewarm"):
            if families is None:
                families = list(self._ds.active_families)
            # Cheap shared dependencies built in the parent so forked
            # workers inherit them instead of rebuilding per task.
            self._groups_by("family_attack_index", self._ds.family_idx)
            self.bot_coords_radians()
            self.durations()
            specs = self._prewarm_specs(families)
            reg.counter("prewarm.tasks").inc(len(specs))
            before = set(self._views)
            if specs:
                results = par.parallel_map(
                    _prewarm_worker,
                    specs,
                    jobs=par.resolve_jobs(jobs),
                    payload=self,
                    label="prewarm",
                )
                for pairs in results:
                    for key, value in pairs:
                        self.seed_view(key, value)
            seeded = len(set(self._views) - before)
            reg.counter("prewarm.seeded").inc(seeded)
        return seeded

    # -- snapshotting ------------------------------------------------------

    def export_views(self) -> dict[Hashable, Any]:
        """Picklable snapshot of the materialised views.

        Values that cannot be pickled (none today, but snapshots must
        degrade gracefully as views evolve) are skipped.
        """
        import pickle

        out: dict[Hashable, Any] = {}
        for key, value in list(self._views.items()):
            try:
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                continue
            out[key] = value
        return out

    def import_views(self, views: dict[Hashable, Any]) -> int:
        """Restore a snapshot produced by :meth:`export_views`.

        Existing views win over imported ones (they were computed from
        this dataset in this process).  Returns the number of views
        actually restored.
        """
        restored = 0
        with self._meta_lock:
            for key, value in views.items():
                if key not in self._views:
                    self._views[key] = value
                    restored += 1
        return restored


class ShardedAnalysisContext:
    """Map-reduce analysis over a time-sharded dataset.

    Wraps a :class:`~repro.io.colstore.ShardedDatasetStore` and owns one
    :class:`AnalysisContext` per shard.  :meth:`build` fans the
    per-shard view derivations across the :mod:`repro.par` pool, and
    :meth:`merged` combines them — through the
    :mod:`repro.core.merge` combinators, bitwise-identically to an
    unsharded build — into a single :class:`AnalysisContext` over the
    concatenated dataset, which downstream consumers (the experiment
    battery, the report renderers) use unchanged.

    The two views that cross shard boundaries are handled explicitly:
    interval arrays gain the boundary gaps, and the collaboration/chain
    scans rescan only the targets whose attacks could link across a
    boundary.  Hourly-snapshot dispersions are evaluated per shard on
    each shard's *interior* grid (snapshots whose 24-hour lookback stays
    inside the shard) plus one boundary-strip pass on the merged
    context.

    Observability: each per-shard build runs under a ``shard:<i>`` span
    inside the ``shard.build`` stage; the merge runs under
    ``shard.merge`` and ticks ``shard.merge.views`` per seeded view and
    ``shard.merge.stitched_targets`` per rescanned target.

    >>> from repro import api
    >>> from repro.io.colstore import ShardedDatasetStore
    >>> store = ShardedDatasetStore.partition(api.generate(scale=0.005), shards=2)
    >>> sctx = api.context(store)
    >>> _ = sctx.build(jobs=1)
    >>> sctx.merged().dataset.n_attacks == store.n_attacks
    True
    """

    def __init__(self, store) -> None:
        self._store = store
        self._shard_ctxs: list[AnalysisContext | None] = [None] * store.n_shards
        self._merged: AnalysisContext | None = None
        self._shared_coords: tuple[np.ndarray, np.ndarray] | None = None
        self._lock = threading.Lock()

    @property
    def store(self):
        return self._store

    @property
    def n_shards(self) -> int:
        return self._store.n_shards

    # -- per-shard layer ---------------------------------------------------

    def _shared_bot_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """The bot geo matrix, computed once (registries are shared)."""
        if self._shared_coords is None:
            bots = self._store.load_shard(0).bots
            self._shared_coords = (np.radians(bots.lat), np.radians(bots.lon))
        return self._shared_coords

    def shard_context(self, index: int) -> AnalysisContext:
        """The (lazily created) analysis context of one shard."""
        ctx = self._shard_ctxs[index]
        if ctx is None:
            with self._lock:
                ctx = self._shard_ctxs[index]
                if ctx is None:
                    ctx = AnalysisContext.of(self._store.load_shard(index))
                    # Shards share the registries, so the (large) geo
                    # matrix is computed once and seeded everywhere.
                    ctx.seed_view(("bot_coords_radians",), self._shared_bot_coords())
                    self._shard_ctxs[index] = ctx
        return ctx

    def shard_families(self, index: int) -> list[str]:
        """Families with at least one attack in shard ``index``."""
        ctx = self.shard_context(index)
        groups = ctx._groups_by("family_attack_index", ctx.dataset.family_idx)
        return [ctx.dataset.family_name(k) for k in sorted(groups)]

    def _interior_ts(self, index: int) -> np.ndarray:
        """Grid snapshots whose 24-hour lookback stays inside shard ``index``."""
        from ..monitor.snapshots import LOOKBACK_SECONDS
        from . import geolocation as _geolocation

        grid = _geolocation._snapshot_grid(self._store.window)
        edges = np.asarray(self._store.edges, dtype=float)
        lo = -np.inf if index == 0 else float(edges[index]) + LOOKBACK_SECONDS
        hi = np.inf if index == self.n_shards - 1 else float(edges[index + 1])
        return grid[(grid >= lo) & (grid < hi)]

    def _strip_ts(self) -> np.ndarray:
        """Grid snapshots interior to no shard (the boundary strips)."""
        from . import geolocation as _geolocation

        grid = _geolocation._snapshot_grid(self._store.window)
        covered = np.zeros(grid.size, dtype=bool)
        for index in range(self.n_shards):
            covered |= np.isin(grid, self._interior_ts(index))
        return grid[~covered]

    def shard_snapshot_dispersions(
        self, index: int, family: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's interior-grid snapshot dispersion series."""
        ctx = self.shard_context(index)

        def build() -> tuple[np.ndarray, np.ndarray]:
            from . import geolocation as _geolocation

            return _geolocation._snapshot_dispersions(
                ctx, family, ts=self._interior_ts(index)
            )

        return ctx.view(("snapshot_dispersions_interior", family), build)

    def build_shard(self, index: int) -> AnalysisContext:
        """Materialise one shard's mergeable views (idempotent)."""
        _shard_build_worker(self, index)
        return self.shard_context(index)

    def build(self, jobs: int | None = 1) -> int:
        """Build every shard's mergeable views, possibly in parallel.

        Fans :func:`_shard_build_worker` across the :mod:`repro.par`
        pool (same serial fallback rules as prewarm) and seeds each
        worker's view delta back into the parent's shard contexts.
        Returns the total number of views materialised across shards.
        """
        from .. import par

        with _obs_registry().span("shard.build"):
            indices = list(range(self.n_shards))
            # Touch every shard context in the parent so forked workers
            # inherit the datasets (and shared geo matrix) copy-on-write.
            for index in indices:
                self.shard_context(index)
            results = par.parallel_map(
                _shard_build_worker,
                indices,
                jobs=par.resolve_jobs(jobs),
                payload=self,
                label="shard_build",
            )
            for index, pairs in zip(indices, results):
                ctx = self.shard_context(index)
                for key, value in pairs:
                    ctx.seed_view(key, value)
        return sum(self.shard_context(i).n_views for i in range(self.n_shards))

    # -- the reduce step ---------------------------------------------------

    def merged(self) -> AnalysisContext:
        """The merged context: every mergeable view seeded, bitwise equal
        to an unsharded build over the concatenated dataset."""
        if self._merged is not None:
            return self._merged
        from . import merge as _merge
        from . import shift as _shift

        for index in range(self.n_shards):
            self.build_shard(index)

        reg = _obs_registry()
        merged_views = reg.counter("shard.merge.views")
        stitched = reg.counter("shard.merge.stitched_targets")
        with reg.span("shard.merge"):
            ds = self._store.merged_dataset()
            ctx = AnalysisContext.of(ds)
            bases = [int(b) for b in self._store.shard_bases()]
            shards = [self.shard_context(k) for k in range(self.n_shards)]
            shard_ds = [c.dataset for c in shards]

            def seed(key: Hashable, value: Any) -> None:
                if ctx.seed_view(key, value):
                    merged_views.inc()

            seed(("bot_coords_radians",), self._shared_bot_coords())
            for gkey, column in (
                ("family_attack_index", "family_idx"),
                ("botnet_attack_index", "botnet_id"),
                ("target_attack_index", "target_idx"),
            ):
                parts = [
                    c._groups_by(gkey, getattr(c.dataset, column)) for c in shards
                ]
                seed((gkey,), _merge.merge_grouped_indices(parts, bases))
            seed(
                ("attack_intervals",),
                _merge.merge_intervals(
                    [c.dataset.start for c in shards],
                    [c.attack_intervals() for c in shards],
                ),
            )
            seed(("durations",), _merge.merge_concat([c.durations() for c in shards]))
            seed(
                ("target_country_idx",),
                _merge.merge_concat([c.target_country_idx() for c in shards]),
            )
            seed(
                ("target_org_idx",),
                _merge.merge_concat([c.target_org_idx() for c in shards]),
            )
            seed(
                ("target_country_counts",),
                _merge.merge_counts([c.target_country_counts() for c in shards]),
            )
            seed(
                ("target_org_counts",),
                _merge.merge_counts([c.target_org_counts() for c in shards]),
            )
            seed(
                ("protocol_breakdown",),
                _merge.merge_protocol_breakdown(
                    [c.protocol_breakdown() for c in shards]
                ),
            )
            seed(
                ("protocol_popularity",),
                _merge.merge_protocol_popularity(
                    [c.protocol_popularity() for c in shards]
                ),
            )
            seed(
                ("daily_distribution", None),
                _merge.merge_daily_distributions(
                    [c.daily_distribution(None) for c in shards], ds, None
                ),
            )
            # Walks ascending org order over the seeded marginal — the
            # same order the unsharded builder uses.
            ctx.victim_org_type_counts()

            suspect = _merge.find_boundary_suspects(shard_ds, ds.victims.n_targets)
            stitched.inc(int(suspect.sum()))
            seed(
                ("collaborations",),
                _merge.merge_scan_events(
                    [c.collaborations() for c in shards],
                    bases,
                    suspect,
                    ds,
                    "collaborations",
                ),
            )
            seed(
                ("chains",),
                _merge.merge_scan_events(
                    [c.chains() for c in shards], bases, suspect, ds, "chains"
                ),
            )

            present: dict[str, list[int]] = {}
            for k in range(self.n_shards):
                for family in self.shard_families(k):
                    present.setdefault(family, []).append(k)
            strip_ts = self._strip_ts()
            for family, in_shards in present.items():
                here = [shards[k] for k in in_shards]
                seed(
                    ("family_starts", family),
                    _merge.merge_concat([c.family_starts(family) for c in here]),
                )
                seed(
                    ("family_intervals", family, True),
                    _merge.merge_intervals(
                        [c.family_starts(family) for c in here],
                        [c.family_intervals(family) for c in here],
                    ),
                )
                seed(
                    ("durations", family),
                    _merge.merge_concat([c.durations(family) for c in here]),
                )
                seed(
                    ("family_participants", family),
                    _merge.merge_csr([c.family_participants(family) for c in here]),
                )
                seed(
                    ("attack_dispersions", family),
                    _merge.merge_series([c.attack_dispersions(family) for c in here]),
                )
                seed(
                    ("family_target_country_counts", family),
                    _merge.merge_counts(
                        [c.family_target_country_counts(family) for c in here]
                    ),
                )
                seed(
                    ("daily_distribution", family),
                    _merge.merge_daily_distributions(
                        [c.daily_distribution(family) for c in here], ds, family
                    ),
                )
                pairs = _merge.merge_weekly_pairs(
                    [c.weekly_shift_pairs(family) for c in here]
                )
                seed(("weekly_shift_pairs", family), pairs)
                seed(
                    ("weekly_shift", family),
                    _shift._finish_weekly_shift(ds, family, *pairs),
                )
                interiors = [
                    self.shard_snapshot_dispersions(k, family) for k in in_shards
                ]
                from . import geolocation as _geolocation

                strip = _geolocation._snapshot_dispersions(ctx, family, ts=strip_ts)
                seed(
                    ("snapshot_dispersions", family),
                    _merge.merge_snapshot_dispersions(interiors + [strip]),
                )
            self._merged = ctx
        return self._merged


def _shard_build_worker(
    sctx: "ShardedAnalysisContext", index: int
) -> list[tuple[Hashable, Any]]:
    """Build one shard's mergeable views; return the view delta.

    Runs in-process or in a forked worker (same contract as
    :func:`_prewarm_worker`): views memoize on the shard's own context,
    and the delta — minus the pre-seeded shared geo matrix — is the only
    pickle a forked fan-out pays for.
    """
    ctx = sctx.shard_context(index)
    before = set(ctx._views)
    with _obs_registry().span(f"shard:{index}"):
        ds = ctx.dataset
        ctx._groups_by("family_attack_index", ds.family_idx)
        ctx._groups_by("botnet_attack_index", ds.botnet_id)
        ctx._groups_by("target_attack_index", ds.target_idx)
        ctx.attack_intervals()
        ctx.durations()
        ctx.target_country_idx()
        ctx.target_org_idx()
        ctx.target_country_counts()
        ctx.target_org_counts()
        ctx.protocol_breakdown()
        ctx.protocol_popularity()
        ctx.daily_distribution(None)
        ctx.collaborations()
        ctx.chains()
        for family in sctx.shard_families(index):
            ctx.family_starts(family)
            ctx.family_intervals(family)
            ctx.durations(family)
            ctx.family_participants(family)
            ctx.attack_dispersions(family)
            ctx.family_target_country_counts(family)
            ctx.daily_distribution(family)
            ctx.weekly_shift_pairs(family)
            sctx.shard_snapshot_dispersions(index, family)
    return [(k, v) for k, v in ctx.materialized().items() if k not in before]


def _prewarm_worker(ctx: "AnalysisContext", spec: tuple) -> list[tuple[Hashable, Any]]:
    """One prewarm task: build a related view group, return the delta.

    Runs in-process (serial mode) or in a forked worker; either way it
    builds through the context's own accessors, so the views memoize and
    instrument exactly as a lazy build would.  The return value is the
    set of views this task materialised — the only pickle a forked
    fan-out pays for.  Forecasts mirror the paper's Darkshell call:
    families with too few points are skipped, not raised.
    """
    before = set(ctx._views)
    kind = spec[0]
    if kind == "family":
        family = spec[1]
        ctx.family_participants(family)
        ctx.attack_dispersions(family)
        ctx.family_starts(family)
        ctx.family_intervals(family)
        ctx.durations(family)
        ctx.weekly_shift(family)
    elif kind == "forecast":
        try:
            ctx.dispersion_forecast(spec[1])
        except ValueError:
            pass
    elif kind == "collaborations":
        ctx.collaborations()
    elif kind == "chains":
        ctx.chains()
    elif kind == "attack_intervals":
        ctx.attack_intervals()
    elif kind == "globals":
        from . import intervals as _intervals

        ctx.workload_summary()
        ctx.protocol_breakdown()
        ctx.protocol_popularity()
        ctx.daily_distribution(None)
        ctx.target_country_idx()
        ctx.target_org_idx()
        ctx.target_country_counts()
        ctx.victim_org_type_counts()
        _intervals.simultaneous_attacks(ctx)
    else:  # pragma: no cover - spec list and worker evolve together
        raise ValueError(f"unknown prewarm spec {spec!r}")
    return [(k, v) for k, v in ctx.materialized().items() if k not in before]
