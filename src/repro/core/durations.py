"""Attack-duration analyses (§III-C, Figs 6-7).

The duration of an attack is ``end_time - timestamp``.  The paper's
headline numbers: mean 10,308 s, median 1,766 s, std 18,475 s, 80 % of
attacks under 13,882 s (≈ 4 hours) — the suggested detection window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .context import AnalysisContext, AnalysisSource
from .stats import SeriesSummary, ecdf, summarize

__all__ = [
    "durations",
    "DurationSummary",
    "duration_summary",
    "duration_cdf",
    "duration_timeline",
]


def durations(source: AnalysisSource, family: str | None = None) -> np.ndarray:
    """Per-attack durations in seconds, optionally for one family."""
    return AnalysisContext.of(source).durations(family)


@dataclass(frozen=True)
class DurationSummary:
    """§III-C headline statistics plus the four-hour share."""

    stats: SeriesSummary
    under_60s_fraction: float
    under_4h_fraction: float
    p80_hours: float


def duration_summary(source: AnalysisSource, family: str | None = None) -> DurationSummary:
    """Fig 7's quoted statistics for the duration distribution."""
    d = durations(source, family)
    if d.size == 0:
        raise ValueError("no attacks to summarise")
    stats = summarize(d)
    return DurationSummary(
        stats=stats,
        under_60s_fraction=float(np.mean(d < 60.0)),
        under_4h_fraction=float(np.mean(d < 4 * 3600.0)),
        p80_hours=stats.p80 / 3600.0,
    )


def duration_cdf(
    source: AnalysisSource, family: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 7: the empirical CDF of attack durations."""
    d = durations(source, family)
    if d.size == 0:
        raise ValueError("no attacks to summarise")
    return ecdf(d)


def duration_timeline(source: AnalysisSource) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fig 6: (day index, duration, family index) per attack over time.

    Attacks are in chronological order; within a day, simultaneous
    attacks keep the dataset's (IP-based) tie-break order, mirroring the
    paper's plotting convention.
    """
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    days = ((ds.start - ds.window.start) // 86400).astype(np.int64)
    return days, ctx.durations(), ds.family_idx.astype(np.int64)
