"""Overview analyses: workload summary, protocol mix, daily distribution.

Implements the paper's §II-D/§III-A characterizations:

* Table III — summary of attacker- and victim-side populations;
* Table II / Fig 1 — protocol preferences per family and overall;
* Fig 2 — daily attack counts, the 243/day average, and the 2012-08-30
  maximum.

The population scans and count series are memoized on the shared
:class:`AnalysisContext`; the private ``_impl`` functions hold the raw
computations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..monitor.schemas import Protocol
from .context import AnalysisContext, AnalysisSource
from .dataset import AttackDataset

__all__ = [
    "SideSummary",
    "WorkloadSummary",
    "workload_summary",
    "protocol_breakdown",
    "protocol_popularity",
    "DailyDistribution",
    "daily_attack_counts",
    "PeriodicityProfile",
    "periodicity_profile",
]


@dataclass(frozen=True)
class SideSummary:
    """One side (attackers or victims) of Table III."""

    n_ips: int
    n_cities: int
    n_countries: int
    n_organizations: int
    n_asns: int


@dataclass(frozen=True)
class WorkloadSummary:
    """Table III: the full workload summary."""

    attackers: SideSummary
    victims: SideSummary
    n_attacks: int
    n_botnets: int
    n_traffic_types: int


def workload_summary(source: AnalysisSource) -> WorkloadSummary:
    """Compute Table III from the joined dataset (memoized)."""
    return AnalysisContext.of(source).workload_summary()


def _distinct_count(column: np.ndarray) -> int:
    """``np.unique(column).size`` without the sort for small-int columns.

    Table III only needs cardinalities.  Entity-index columns (cities,
    countries, orgs, small ASN tables) are non-negative integers drawn
    from a compact id space, so a boolean scatter is O(n) instead of the
    O(n log n) sort ``np.unique`` pays on the ~1.9 M-row bot columns.
    Anything else (IPs span the full uint32 range) falls back to
    ``np.unique``.
    """
    if column.size and np.issubdtype(column.dtype, np.integer):
        lo = int(column.min())
        hi = int(column.max())
        if lo >= 0 and hi < 4 * column.size + 1024:
            seen = np.zeros(hi + 1, dtype=bool)
            seen[column] = True
            return int(np.count_nonzero(seen))
    return int(np.unique(column).size)


def _workload_summary(ds: AttackDataset) -> WorkloadSummary:
    bots = ds.bots
    victims = ds.victims
    attackers = SideSummary(
        n_ips=int(np.unique(bots.ip).size),
        n_cities=_distinct_count(bots.city_idx),
        n_countries=_distinct_count(bots.country_idx),
        n_organizations=_distinct_count(bots.org_idx),
        n_asns=_distinct_count(bots.asn),
    )
    victim_side = SideSummary(
        n_ips=int(np.unique(victims.ip).size),
        n_cities=_distinct_count(victims.city_idx),
        n_countries=_distinct_count(victims.country_idx),
        n_organizations=_distinct_count(victims.org_idx),
        n_asns=_distinct_count(victims.asn),
    )
    return WorkloadSummary(
        attackers=attackers,
        victims=victim_side,
        n_attacks=ds.n_attacks,
        n_botnets=len(ds.botnets),
        n_traffic_types=len(Protocol),
    )


def protocol_breakdown(source: AnalysisSource) -> list[tuple[Protocol, str, int]]:
    """Table II: attacks per (protocol, family), protocol-major order.

    Only non-zero cells are returned, protocols ordered as in the paper's
    table (HTTP, TCP, UDP, UNDETERMINED, ICMP, UNKNOWN, SYN), families
    alphabetical within a protocol.
    """
    return AnalysisContext.of(source).protocol_breakdown()


def _protocol_breakdown(ds: AttackDataset) -> list[tuple[Protocol, str, int]]:
    rows: list[tuple[Protocol, str, int]] = []
    for proto in Protocol:
        mask = ds.protocol == int(proto)
        if not mask.any():
            continue
        fams, counts = np.unique(ds.family_idx[mask], return_counts=True)
        cells = sorted(
            (ds.family_name(int(f)), int(c)) for f, c in zip(fams, counts)
        )
        rows.extend((proto, fam, count) for fam, count in cells)
    return rows


def protocol_popularity(source: AnalysisSource) -> dict[Protocol, int]:
    """Fig 1: total attacks per protocol (all protocols, zeros included)."""
    return AnalysisContext.of(source).protocol_popularity()


def _protocol_popularity(ds: AttackDataset) -> dict[Protocol, int]:
    counts = np.bincount(ds.protocol, minlength=len(Protocol))
    return {proto: int(counts[int(proto)]) for proto in Protocol}


@dataclass(frozen=True)
class DailyDistribution:
    """Fig 2: the daily attack time series and its headline numbers."""

    counts: np.ndarray           # attacks per day index
    mean_per_day: float
    max_per_day: int
    max_day_index: int
    max_day_label: str
    max_day_top_family: str

    @property
    def n_days(self) -> int:
        return self.counts.size


@dataclass(frozen=True)
class PeriodicityProfile:
    """§III-A's periodicity check: are attacks user-driven?

    Web traffic shows strong diurnal/weekly cycles; DDoS attacks are
    bot-driven and should not.  Because attacks arrive in bursts (waves
    and campaigns), per-bin chi-square tests over-reject; the robust
    signal is the *autocorrelation of the count series at the periodic
    lag* — hourly counts at lag 24, daily counts at lag 7 — which is
    near zero for aperiodic processes regardless of burstiness.
    """

    hour_of_day: np.ndarray        # 24 counts (display)
    day_of_week: np.ndarray        # 7 counts (display)
    diurnal_acf: float             # hourly-count autocorrelation at lag 24
    weekly_acf: float              # daily-count autocorrelation at lag 7

    @property
    def diurnal_pattern_detected(self) -> bool:
        return self.diurnal_acf > 0.3

    @property
    def weekly_pattern_detected(self) -> bool:
        return self.weekly_acf > 0.3


def periodicity_profile(
    source: AnalysisSource, family: str | None = None
) -> PeriodicityProfile:
    """Hour-of-day / day-of-week histograms plus periodic-lag ACFs."""
    from ..timeseries.acf import acf

    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    starts = ds.start if family is None else ds.start[ctx.family_attacks(family)]
    if starts.size == 0:
        raise ValueError("no attacks to profile")
    rel = starts - ds.window.start
    hour_counts = np.bincount(((rel % 86400) // 3600).astype(np.int64), minlength=24)
    day_counts = np.bincount((rel // 86400).astype(np.int64) % 7, minlength=7)

    hourly_series = np.bincount(
        (rel // 3600).astype(np.int64), minlength=ds.window.n_hours
    ).astype(float)
    daily_series = np.bincount(
        (rel // 86400).astype(np.int64), minlength=ds.window.n_days
    ).astype(float)
    diurnal = float(acf(hourly_series, 24)[24]) if hourly_series.size > 25 else 0.0
    weekly = float(acf(daily_series, 7)[7]) if daily_series.size > 8 else 0.0
    return PeriodicityProfile(
        hour_of_day=hour_counts,
        day_of_week=day_counts,
        diurnal_acf=diurnal,
        weekly_acf=weekly,
    )


def daily_attack_counts(
    source: AnalysisSource, family: str | None = None
) -> DailyDistribution:
    """Fig 2: number of attacks per day (optionally for one family)."""
    return AnalysisContext.of(source).daily_distribution(family)


def _daily_attack_counts(ctx: AnalysisContext, family: str | None) -> DailyDistribution:
    ds = ctx.dataset
    if family is None:
        starts = ds.start
        fam_col = ds.family_idx
    else:
        idx = ctx.family_attacks(family)
        starts = ds.start[idx]
        fam_col = ds.family_idx[idx]
    days = ((starts - ds.window.start) // 86400).astype(np.int64)
    n_days = max(ds.window.n_days, int(days.max()) + 1 if days.size else 1)
    counts = np.bincount(days, minlength=n_days)
    max_day = int(np.argmax(counts))
    on_max = days == max_day
    if on_max.any():
        fams, fam_counts = np.unique(fam_col[on_max], return_counts=True)
        top_family = ds.family_name(int(fams[np.argmax(fam_counts)]))
    else:
        top_family = ""
    return DailyDistribution(
        counts=counts,
        mean_per_day=float(counts[: ds.window.n_days].mean()),
        max_per_day=int(counts[max_day]),
        max_day_index=max_day,
        max_day_label=ds.window.day_label(max_day),
        max_day_top_family=top_family,
    )
