"""Prediction analyses (§IV-A Figs 12-13 + Table IV; abstract finding 2).

Two predictors are implemented:

* **Source dispersion forecasting** — fit an ARIMA model to the first
  half of a family's geolocation-distance series and predict the rest
  with rolling one-step forecasts, exactly the paper's protocol.  The
  Table IV comparison (mean / std / cosine similarity) comes from
  :func:`repro.timeseries.metrics.compare_forecast`.

* **Next-attack-time prediction** — for targets hit repeatedly, the
  inter-attack intervals show strong patterns (§III-B); fitting the
  interval series predicts when the next attack on that target starts.

The default-protocol forecast is memoized on the shared
:class:`AnalysisContext` (Table IV and the CLI ``predict`` subcommand
share it), and both predictors consume context views — the dispersion
series and the per-target attack index — instead of rescanning columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.arima import ARIMA, ARIMAFit
from ..timeseries.metrics import ForecastComparison, compare_forecast, error_rates
from ..timeseries.order_selection import select_order
from .context import AnalysisContext, AnalysisSource
from .geolocation import SYMMETRY_TOLERANCE_KM

__all__ = [
    "DispersionForecast",
    "predict_family_dispersion",
    "predict_all_families",
    "NextAttackPrediction",
    "predict_next_attack_time",
    "MIN_SERIES_POINTS",
]

#: Minimum series length to train on (the paper drops Darkshell for lack
#: of data points).
MIN_SERIES_POINTS = 40

#: The paper's fixed ARIMA order (the default protocol).
DEFAULT_ORDER = (2, 1, 2)


@dataclass(frozen=True)
class DispersionForecast:
    """Figs 12-13 / Table IV material for one family."""

    family: str
    order: tuple[int, int, int]
    train: np.ndarray
    truth: np.ndarray
    prediction: np.ndarray
    errors: np.ndarray
    comparison: ForecastComparison
    fit: ARIMAFit


def _dispersion_series(
    ctx: AnalysisContext, family: str, asymmetric_only: bool
) -> np.ndarray:
    """A family's dispersion values in time order.

    Table IV's ground-truth means match the *asymmetric* component of the
    distributions (e.g. Blackenergy ≈ 3,970 km), so by default the
    symmetric (≈0) snapshots are removed before modelling — they would
    otherwise dominate the series with zeros.
    """
    _, values = ctx.attack_dispersions(family)
    if asymmetric_only:
        values = values[values >= SYMMETRY_TOLERANCE_KM]
    return values


def predict_family_dispersion(
    source: AnalysisSource,
    family: str,
    order: tuple[int, int, int] | None = DEFAULT_ORDER,
    train_fraction: float = 0.5,
    asymmetric_only: bool = True,
) -> DispersionForecast:
    """Train on the first half of the dispersion series, predict the rest.

    ``order=None`` runs an AIC grid search instead of the fixed ARIMA
    order (the ablation benchmark compares both).  Raises ``ValueError``
    when the family has too few points — the paper makes the same call
    for Darkshell.  The default protocol is memoized on the shared
    context.
    """
    ctx = AnalysisContext.of(source)
    if order == DEFAULT_ORDER and train_fraction == 0.5 and asymmetric_only:
        return ctx.dispersion_forecast(family)
    return _predict_family_dispersion(ctx, family, order, train_fraction, asymmetric_only)


def _predict_family_dispersion(
    ctx: AnalysisContext,
    family: str,
    order: tuple[int, int, int] | None = DEFAULT_ORDER,
    train_fraction: float = 0.5,
    asymmetric_only: bool = True,
) -> DispersionForecast:
    if not 0.1 <= train_fraction <= 0.9:
        raise ValueError(f"train_fraction out of [0.1, 0.9]: {train_fraction}")
    series = _dispersion_series(ctx, family, asymmetric_only)
    if series.size < MIN_SERIES_POINTS:
        raise ValueError(
            f"{family}: only {series.size} usable dispersion points "
            f"(need {MIN_SERIES_POINTS}); not enough data to train"
        )
    split = int(series.size * train_fraction)
    train, test = series[:split], series[split:]
    if order is None:
        search = select_order(train, max_p=2, max_d=1, max_q=2)
        fit = search.best_fit
        chosen = search.best_order
    else:
        fit = ARIMA(order).fit(train)
        chosen = order
    prediction = fit.rolling_forecast(test)
    # Dispersion values are non-negative by definition; clamp the model.
    prediction = np.maximum(prediction, 0.0)
    return DispersionForecast(
        family=family,
        order=chosen,
        train=train,
        truth=test,
        prediction=prediction,
        errors=error_rates(test, prediction),
        comparison=compare_forecast(test, prediction),
        fit=fit,
    )


def _forecast_family_task(ctx: AnalysisContext, family: str) -> DispersionForecast:
    """Worker body for :func:`predict_all_families` (one family per task)."""
    return _predict_family_dispersion(ctx, family)


def predict_all_families(
    source: AnalysisSource,
    families: list[str] | None = None,
    *,
    jobs: int | None = 1,
) -> dict[str, DispersionForecast]:
    """Default-protocol dispersion forecasts for every eligible family.

    The per-family ARIMA fits are independent, so with ``jobs > 1`` they
    fan out across worker processes via :func:`repro.par.parallel_map`
    (``jobs=None`` picks the default worker count).  The parent
    pre-computes each family's dispersion series — the memoized views
    travel to forked workers for free — and families below
    :data:`MIN_SERIES_POINTS` are skipped rather than raised, mirroring
    the paper's treatment of Darkshell.  Results are seeded into the
    shared context, so a later Table IV run reuses them.
    """
    from .. import par

    ctx = AnalysisContext.of(source)
    if families is None:
        families = list(ctx.dataset.active_families)
    eligible = [
        family
        for family in families
        if _dispersion_series(ctx, family, True).size >= MIN_SERIES_POINTS
    ]
    forecasts = par.parallel_map(
        _forecast_family_task,
        eligible,
        jobs=par.resolve_jobs(jobs),
        payload=ctx,
        label="forecast",
    )
    out: dict[str, DispersionForecast] = {}
    for family, forecast in zip(eligible, forecasts):
        ctx.view(("dispersion_forecast", family), lambda f=forecast: f)
        out[family] = forecast
    return out


@dataclass(frozen=True)
class NextAttackPrediction:
    """Start-time prediction for the next attack on one target."""

    target_index: int
    n_attacks: int
    last_attack_at: float
    predicted_next_at: float
    predicted_interval: float
    interval_mean: float
    interval_std: float


def predict_next_attack_time(
    source: AnalysisSource, target_index: int, min_attacks: int = 5
) -> NextAttackPrediction:
    """Predict when the given target will be attacked next.

    Uses the target's inter-attack interval series: an AR(1) one-step
    forecast when there is enough history, otherwise the mean interval.
    Raises ``ValueError`` for targets without enough repeat attacks.
    """
    ctx = AnalysisContext.of(source)
    # The per-target grouped index replaces a full-column mask per call;
    # attack indices are chronological, so the starts arrive sorted.
    starts = ctx.dataset.start[ctx.target_attacks(int(target_index))]
    if starts.size < min_attacks:
        raise ValueError(
            f"target {target_index} was attacked {starts.size} times; "
            f"need at least {min_attacks} for interval prediction"
        )
    intervals = np.diff(starts)
    if intervals.size >= MIN_SERIES_POINTS:
        fit = ARIMA((1, 0, 0)).fit(intervals)
        predicted = float(max(fit.forecast(1)[0], 0.0))
    else:
        predicted = float(np.mean(intervals))
    last = float(starts[-1])
    return NextAttackPrediction(
        target_index=int(target_index),
        n_attacks=int(starts.size),
        last_attack_at=last,
        predicted_next_at=last + predicted,
        predicted_interval=predicted,
        interval_mean=float(np.mean(intervals)),
        interval_std=float(np.std(intervals)),
    )
