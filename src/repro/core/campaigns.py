"""Campaign analysis: rounds of attacks against the same target (§III-D).

The overview summary observes that "multiple rounds of attacks could be
launched against the same target within a short interval of up to
several hours" and that repeat-attack targets are where interval
investigation pays off.  This module groups each target's attacks into
*campaigns* — maximal runs where the gap to the previous attack stays
under a threshold (default: six hours) — and characterises them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import AttackDataset

__all__ = ["Campaign", "detect_campaigns", "CampaignSummary", "campaign_summary"]

DEFAULT_ROUND_GAP_SECONDS = 6 * 3600.0


@dataclass(frozen=True)
class Campaign:
    """A burst of repeated attacks on one target."""

    target_index: int
    attack_indices: tuple[int, ...]
    start: float
    end: float
    families: tuple[str, ...]

    @property
    def rounds(self) -> int:
        return len(self.attack_indices)

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def is_multi_family(self) -> bool:
        return len(set(self.families)) > 1


def detect_campaigns(
    ds: AttackDataset,
    round_gap: float = DEFAULT_ROUND_GAP_SECONDS,
    min_rounds: int = 2,
) -> list[Campaign]:
    """Group each target's attacks into campaigns.

    Consecutive attacks on one target belong to the same campaign when
    the next one starts within ``round_gap`` seconds of the previous
    *start* (rounds may overlap).  Only campaigns with at least
    ``min_rounds`` attacks are returned, ordered by start time.
    """
    if round_gap <= 0:
        raise ValueError(f"round_gap must be positive: {round_gap}")
    if min_rounds < 1:
        raise ValueError(f"min_rounds must be >= 1: {min_rounds}")
    campaigns: list[Campaign] = []
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    boundaries = np.flatnonzero(np.diff(targets) != 0) + 1
    for group in np.split(order, boundaries):
        starts = ds.start[group]
        run_break = np.flatnonzero(np.diff(starts) > round_gap) + 1
        for run in np.split(group, run_break):
            if run.size < min_rounds:
                continue
            campaigns.append(
                Campaign(
                    target_index=int(ds.target_idx[run[0]]),
                    attack_indices=tuple(int(i) for i in run),
                    start=float(ds.start[run[0]]),
                    end=float(ds.end[run].max()),
                    families=tuple(
                        ds.family_name(int(ds.family_idx[i])) for i in run
                    ),
                )
            )
    campaigns.sort(key=lambda c: c.start)
    return campaigns


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate view of the campaign structure."""

    n_campaigns: int
    n_targets_hit_repeatedly: int
    mean_rounds: float
    max_rounds: int
    median_span_hours: float
    multi_family_fraction: float
    #: Fraction of all attacks that belong to some campaign.
    attacks_in_campaigns_fraction: float


def campaign_summary(
    ds: AttackDataset, campaigns: list[Campaign] | None = None
) -> CampaignSummary:
    """Summarise detected campaigns (§III-D's 'multiple rounds' claim)."""
    if campaigns is None:
        campaigns = detect_campaigns(ds)
    if not campaigns:
        raise ValueError("no campaigns detected")
    rounds = np.array([c.rounds for c in campaigns])
    spans = np.array([c.span for c in campaigns])
    covered = sum(c.rounds for c in campaigns)
    return CampaignSummary(
        n_campaigns=len(campaigns),
        n_targets_hit_repeatedly=len({c.target_index for c in campaigns}),
        mean_rounds=float(rounds.mean()),
        max_rounds=int(rounds.max()),
        median_span_hours=float(np.median(spans) / 3600.0),
        multi_family_fraction=float(np.mean([c.is_multi_family for c in campaigns])),
        attacks_in_campaigns_fraction=float(covered / ds.n_attacks),
    )
