"""Mergeable-result combinators for sharded analysis (map-reduce views).

Each combinator takes the per-shard value of one derived view and
reconstructs the value a single :class:`~repro.core.context.AnalysisContext`
over the merged dataset would compute — **bitwise** identical, pinned by
the shard-merge parity tests (``tests/core/test_shard_merge.py``).

The trivially mergeable views are concatenations (durations, per-family
starts, dispersion series) or re-reductions (marginal counts, weekly
(week, bot) pair tables, daily histograms).  Two families of views need
care at shard boundaries:

* **Intervals** — consecutive-gap arrays gain one extra gap per shard
  boundary (last start of the previous non-empty shard to the first
  start of the next one).
* **Collaboration / chain scans** — a run of attacks on one target can
  straddle a boundary.  :func:`find_boundary_suspects` flags every
  target whose shard-edge attacks *could* link under the paper's
  windows; events on non-suspect targets pass through with their attack
  indices rebased, suspect targets are rescanned on the merged columns
  (a per-target-independent computation, so the rescan of the suspect
  subset equals the global scan restricted to those targets).

All index-valued outputs are **global** attack indices: shard ``k``'s
local index ``i`` maps to ``bases[k] + i`` where ``bases`` are the
cumulative shard sizes.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..monitor.schemas import Protocol
from .collaboration import (
    DURATION_WINDOW_SECONDS,
    START_WINDOW_SECONDS,
    CollabEvent,
    _detect_collaborations,
)
from .consecutive import CHAIN_MARGIN_SECONDS, AttackChain, _detect_chains
from .overview import DailyDistribution

if TYPE_CHECKING:  # pragma: no cover - types only
    from .dataset import AttackDataset

__all__ = [
    "merge_grouped_indices",
    "merge_concat",
    "merge_series",
    "merge_csr",
    "merge_counts",
    "merge_intervals",
    "merge_weekly_pairs",
    "merge_daily_distributions",
    "finish_daily_distribution",
    "merge_protocol_breakdown",
    "merge_protocol_popularity",
    "merge_snapshot_dispersions",
    "find_boundary_suspects",
    "merge_scan_events",
    "rebase_scan_events",
    "scan_order",
    "stitch_scan_events",
    "seam_stitch_scan_events",
    "ShardPartial",
    "make_shard_partial",
    "combine_partials",
    "sketch_summaries",
]


# -- plain concatenations --------------------------------------------------


def merge_concat(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-shard arrays in shard (chronological) order."""
    return np.concatenate(list(parts))


class GrowBuffer:
    """A 1-D concatenation with reserved tail capacity.

    Concat-shaped merged views (durations, per-family starts, CSR flats,
    dispersion series, ...) are suffix-extended by an append: the merged
    array after one more shard is the old array plus the new shard's
    rows.  Rebuilding them with :func:`merge_concat` re-copies every row
    on every re-merge.  A ``GrowBuffer`` copies the pieces once into a
    buffer with ``reserve`` fractional headroom; later appends write
    only the new pieces into the reserved tail, and the previously
    returned view stays valid because it covers an immutable prefix of
    the same buffer.

    ``extend`` returns ``None`` once the headroom is exhausted — callers
    rebuild a fresh ``GrowBuffer``, which restores the reserve.
    """

    def __init__(self, pieces: Sequence[np.ndarray], *, reserve: float = 0.5):
        n = sum(int(p.size) for p in pieces)
        self._buf = np.empty(n + max(int(n * reserve), 16), dtype=pieces[0].dtype)
        self.n = 0
        self.view = self._buf[:0]
        self.extend(pieces)

    def extend(self, pieces: Sequence[np.ndarray]) -> np.ndarray | None:
        """Append ``pieces`` in place; ``None`` if headroom is exhausted."""
        add = sum(int(p.size) for p in pieces)
        if self.n + add > self._buf.size:
            return None
        for p in pieces:
            self._buf[self.n : self.n + p.size] = p
            self.n += int(p.size)
        self.view = self._buf[: self.n]
        return self.view


def merge_series(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge aligned ``(timestamps, values)`` pairs by concatenation.

    Shards partition by start time, so shard-order concatenation of
    chronological per-shard series is the global chronological series.
    """
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def merge_grouped_indices(
    parts: Sequence[dict[int, np.ndarray]], bases: Sequence[int]
) -> dict[int, np.ndarray]:
    """Merge per-shard grouping dicts (column value -> attack indices).

    Per-shard groups hold local indices in chronological order; rebasing
    and concatenating in shard order keeps each group chronological.
    The output dict is built in ascending key order — the same insertion
    order the unsharded ``np.split`` grouping pass produces.
    """
    keys = sorted({k for part in parts for k in part})
    out: dict[int, np.ndarray] = {}
    for key in keys:
        pieces = [
            part[key] + np.int64(base)
            for part, base in zip(parts, bases)
            if key in part
        ]
        out[key] = np.concatenate(pieces)
    return out


def csr_pieces(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """The ``(offset_pieces, flat_pieces)`` of the merged CSR layout.

    Exposed separately from :func:`merge_csr` so the incremental merge
    can write the pieces into growable buffers instead of concatenating.
    """
    offset_pieces = [np.zeros(1, dtype=np.int64)]
    base = np.int64(0)
    for offsets, _flat in parts:
        offset_pieces.append(offsets[1:] + base)
        base += offsets[-1]
    return offset_pieces, [flat for _offsets, flat in parts]


def merge_csr(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard CSR ``(offsets, flat)`` layouts in shard order.

    ``flat`` entries are global bot indices (the registries are shared
    across shards), so only the offsets need rebasing.
    """
    offset_pieces, flat_pieces = csr_pieces(parts)
    return np.concatenate(offset_pieces), np.concatenate(flat_pieces)


# -- re-reductions ---------------------------------------------------------


def merge_counts(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``np.unique(..., return_counts=True)`` marginals."""
    uniq = np.concatenate([p[0] for p in parts])
    counts = np.concatenate([p[1] for p in parts])
    if uniq.size == 0:
        return uniq, counts
    order = np.argsort(uniq, kind="stable")
    u_sorted = uniq[order]
    first = np.empty(u_sorted.size, dtype=bool)
    first[0] = True
    first[1:] = u_sorted[1:] != u_sorted[:-1]
    starts = np.flatnonzero(first)
    return u_sorted[starts], np.add.reduceat(counts[order], starts)


def interval_pieces(
    starts_parts: Sequence[np.ndarray], diff_parts: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """The concat pieces of the merged gap array (see merge_intervals).

    Passing an empty diff array for an already-merged leading part
    yields only the pieces *after* it — one boundary gap per seam plus
    the new parts' gap arrays — which is what the incremental merge
    appends to its growable buffer.
    """
    pieces: list[np.ndarray] = []
    prev_last: float | None = None
    for starts, diffs in zip(starts_parts, diff_parts):
        if starts.size == 0:
            continue
        if prev_last is not None:
            pieces.append(np.array([starts[0] - prev_last], dtype=np.float64))
        if diffs.size:
            pieces.append(diffs)
        prev_last = float(starts[-1])
    return pieces


def merge_intervals(
    starts_parts: Sequence[np.ndarray], diff_parts: Sequence[np.ndarray]
) -> np.ndarray:
    """Merge per-shard consecutive-gap arrays, adding the boundary gaps.

    ``np.diff`` is an elementwise subtraction, so the global gap array is
    exactly the per-shard gap arrays interleaved with one boundary gap
    (first start of a non-empty shard minus the last start of the
    previous non-empty one) per internal boundary.
    """
    pieces = interval_pieces(starts_parts, diff_parts)
    if not pieces:
        return np.zeros(0)
    return np.concatenate(pieces)


def merge_weekly_pairs(
    parts: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Union per-shard ``(weeks_u, u_week, u_bot)`` weekly-shift tables.

    A (week, bot) pair may appear in several shards (the bot attacked in
    that week on both sides of a boundary); the merged table re-sorts and
    dedupes, which reproduces the global sorted-unique pair table.
    """
    weeks_u = np.unique(np.concatenate([p[0] for p in parts]))
    cw = np.concatenate([p[1] for p in parts])
    cb = np.concatenate([p[2] for p in parts])
    if cw.size == 0:
        return weeks_u, cw, cb
    order = np.lexsort((cb, cw))
    w_sorted = cw[order]
    b_sorted = cb[order]
    first = np.empty(w_sorted.size, dtype=bool)
    first[0] = True
    first[1:] = (w_sorted[1:] != w_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    return weeks_u, w_sorted[first], b_sorted[first]


def merge_daily_distributions(
    parts: Sequence[DailyDistribution], ds: "AttackDataset", family: str | None
) -> DailyDistribution:
    """Pad-sum per-shard daily histograms and recompute the headline.

    The counts are integer sums, so the padded sum is exact; the busiest
    day's top family is re-derived with the unsharded kernel's own
    expression over the merged columns (one vectorised pass).
    """
    n_days = max(p.counts.size for p in parts)
    counts = np.zeros(n_days, dtype=parts[0].counts.dtype)
    for p in parts:
        counts[: p.counts.size] += p.counts
    return finish_daily_distribution(counts, ds, family)


def finish_daily_distribution(
    counts: np.ndarray,
    ds: "AttackDataset",
    family: str | None,
    days: np.ndarray | None = None,
) -> DailyDistribution:
    """Build a :class:`DailyDistribution` from already-summed day counts.

    ``days`` optionally supplies the per-attack day index column (the
    same elementwise expression computed below) so re-merges can keep it
    in a growable buffer instead of recomputing it over every row.
    """
    max_day = int(np.argmax(counts))
    if family is not None:
        top_family = family if counts[max_day] > 0 else ""
    else:
        if days is None:
            days = ((ds.start - ds.window.start) // 86400).astype(np.int64)
        on_max = days == max_day
        if on_max.any():
            fams, fam_counts = np.unique(ds.family_idx[on_max], return_counts=True)
            top_family = ds.family_name(int(fams[np.argmax(fam_counts)]))
        else:
            top_family = ""
    return DailyDistribution(
        counts=counts,
        mean_per_day=float(counts[: ds.window.n_days].mean()),
        max_per_day=int(counts[max_day]),
        max_day_index=max_day,
        max_day_label=ds.window.day_label(max_day),
        max_day_top_family=top_family,
    )


def merge_protocol_breakdown(
    parts: Sequence[list[tuple[Protocol, str, int]]]
) -> list[tuple[Protocol, str, int]]:
    """Sum per-shard Table II cells, protocol-major / family-sorted."""
    totals: dict[tuple[int, str], int] = {}
    for rows in parts:
        for proto, fam, count in rows:
            key = (int(proto), fam)
            totals[key] = totals.get(key, 0) + int(count)
    out: list[tuple[Protocol, str, int]] = []
    for proto in Protocol:
        cells = sorted(
            (fam, count) for (p, fam), count in totals.items() if p == int(proto)
        )
        out.extend((proto, fam, count) for fam, count in cells)
    return out


def merge_protocol_popularity(
    parts: Sequence[dict[Protocol, int]]
) -> dict[Protocol, int]:
    """Sum per-shard Fig 1 protocol totals (all protocols, zeros kept)."""
    return {proto: sum(int(p[proto]) for p in parts) for proto in Protocol}


def merge_snapshot_dispersions(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard-interior plus boundary-strip snapshot series.

    Every grid timestamp is evaluated by exactly one part (a shard's
    interior or the merged-context strip pass), so a stable sort by
    timestamp is a pure permutation back into grid order.
    """
    ts = np.concatenate([p[0] for p in parts])
    values = np.concatenate([p[1] for p in parts])
    order = np.argsort(ts, kind="stable")
    return ts[order], values[order]


# -- boundary-stitched scans -----------------------------------------------


def _target_segments(
    ds,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-target scan-edge state: (targets, first start, last start, last end).

    ``last end`` is the end of the last-*started* attack — the attack the
    chain kernel would link the next shard's first attack against.
    """
    n = ds.n_attacks
    if n == 0:
        empty_f = np.zeros(0)
        return np.zeros(0, dtype=np.int64), empty_f, empty_f, empty_f
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    starts = ds.start[order]
    ends = ds.end[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = targets[1:] != targets[:-1]
    firsts = np.flatnonzero(new)
    lasts = np.concatenate((firsts[1:], [n])) - 1
    return (
        targets[firsts].astype(np.int64),
        starts[firsts],
        starts[lasts],
        ends[lasts],
    )


def find_boundary_suspects(datasets: Sequence, n_targets: int) -> np.ndarray:
    """Boolean mask of targets whose scans may link across a boundary.

    Walks the shards in time order carrying, per target, the start and
    end of its last-started attack so far.  A target becomes suspect when
    its first attack in a later shard falls within the collaboration
    start window of the carried start, or within the chain margin of the
    carried end (conservative: the chain kernel's additional >1 s
    stagger condition is ignored — the rescan settles it exactly).
    """
    last_start = np.full(n_targets, -np.inf)
    last_end = np.full(n_targets, -np.inf)
    seen = np.zeros(n_targets, dtype=bool)
    suspect = np.zeros(n_targets, dtype=bool)
    for ds in datasets:
        targets, first_start, seg_last_start, seg_last_end = _target_segments(ds)
        if targets.size == 0:
            continue
        cross = seen[targets] & (
            (first_start - last_start[targets] <= START_WINDOW_SECONDS)
            | (np.abs(first_start - last_end[targets]) <= CHAIN_MARGIN_SECONDS)
        )
        suspect[targets[cross]] = True
        seen[targets] = True
        last_start[targets] = seg_last_start
        last_end[targets] = seg_last_end
    return suspect


class _AttackSlice:
    """Column view of the merged dataset restricted to a row subset.

    Quacks like an :class:`AttackDataset` for exactly the columns the
    collaboration/chain kernels touch.  Rows are given in ascending
    global order, so the kernels' stable ``lexsort`` preserves the same
    tie order the global scan would use.
    """

    def __init__(self, ds, rows: np.ndarray) -> None:
        self._ds = ds
        self.n_attacks = int(rows.size)
        self.start = ds.start[rows]
        self.end = ds.end[rows]
        self.target_idx = ds.target_idx[rows]
        self.botnet_id = ds.botnet_id[rows]
        self.family_idx = ds.family_idx[rows]

    def family_name(self, family_id: int) -> str:
        return self._ds.family_name(family_id)


def merge_scan_events(
    parts: Sequence[list],
    bases: Sequence[int],
    suspect: np.ndarray,
    merged_ds,
    kind: str,
) -> "list[CollabEvent] | list[AttackChain]":
    """Merge per-shard collaboration/chain event lists.

    Events on non-suspect targets pass through with rebased attack
    indices; suspect targets are rescanned on the merged columns and the
    rescan's local indices mapped back through the row subset.  Both
    scans group strictly per target, so the union reproduces the global
    scan; the final sort key ``(start, target)`` matches the global
    enumeration order exactly (runs are enumerated target-major, so the
    global ``sort(key=start)`` leaves equal-start events in ascending
    target order).
    """
    events = []
    for shard_events, base in zip(parts, bases):
        offset = int(base)
        for event in shard_events:
            if suspect[event.target_index]:
                continue
            events.append(
                dataclasses.replace(
                    event,
                    attack_indices=tuple(int(i) + offset for i in event.attack_indices),
                )
            )
    if suspect.any():
        rows = np.flatnonzero(suspect[merged_ds.target_idx])
        shim = _AttackSlice(merged_ds, rows)
        if kind == "collaborations":
            rescanned = _detect_collaborations(
                shim, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS
            )
        elif kind == "chains":
            rescanned = _detect_chains(shim, CHAIN_MARGIN_SECONDS, 2)
        else:
            raise ValueError(f"unknown scan kind {kind!r}")
        for event in rescanned:
            events.append(
                dataclasses.replace(
                    event,
                    attack_indices=tuple(
                        int(rows[i]) for i in event.attack_indices
                    ),
                )
            )
    events.sort(key=lambda e: (e.start, e.target_index))
    return events


# -- vectorised boundary stitch --------------------------------------------
#
# The suspect-rescan path above is the retained reference: simple, pinned
# by the parity tests, and O(per-event Python work).  The functions below
# reproduce it with array passes: rebasing happens once per shard build
# (:func:`rebase_scan_events`), and the merge regenerates only the runs
# that actually cross a shard boundary instead of every run on a suspect
# target.  Both paths are exact — shards are contiguous time slices, so a
# shard's per-target rows are a contiguous run of that target's global
# rows, local scan events are consistent fragments of global ones, and
# any fragment belonging to a boundary-crossing run is dropped and
# regenerated from the merged columns.


def rebase_scan_events(events: Sequence, base: int) -> list:
    """Shift scan-event attack indices into the global index space."""
    base = int(base)
    if base == 0 or not events:
        return list(events)
    out = []
    if isinstance(events[0], CollabEvent):
        for e in events:
            out.append(
                CollabEvent(
                    attack_indices=tuple(i + base for i in e.attack_indices),
                    target_index=e.target_index,
                    families=e.families,
                    botnet_ids=e.botnet_ids,
                    start=e.start,
                    is_inter_family=e.is_inter_family,
                )
            )
    elif isinstance(events[0], AttackChain):
        for e in events:
            out.append(
                AttackChain(
                    attack_indices=tuple(i + base for i in e.attack_indices),
                    target_index=e.target_index,
                    families=e.families,
                    start=e.start,
                    end=e.end,
                    gaps=e.gaps,
                )
            )
    else:
        for e in events:
            out.append(
                dataclasses.replace(
                    e, attack_indices=tuple(i + base for i in e.attack_indices)
                )
            )
    return out


def scan_order(grouped: dict[int, np.ndarray], n: int) -> np.ndarray:
    """Scan enumeration order from a merged target grouping dict.

    The kernels enumerate rows by ``lexsort((start, target_idx))``.  The
    dataset is globally start-sorted, so each target's ascending-index
    group *is* its start order (stable ties included), and the groups are
    already keyed ascending — target-major concatenation reproduces the
    lexsort without sorting anything.
    """
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(list(grouped.values()))


def _linked_mask(
    targets: np.ndarray, starts: np.ndarray, ends: np.ndarray, kind: str
) -> np.ndarray:
    """Adjacent-pair link mask in scan order (``mask[i]`` links ``i, i+1``).

    For collaborations a "link" means *same run* (start-window adjacency);
    for chains it is the kernel's chain-link predicate.
    """
    same_target = targets[1:] == targets[:-1]
    if kind == "collaborations":
        return same_target & (starts[1:] - starts[:-1] <= START_WINDOW_SECONDS)
    if kind == "chains":
        return (
            same_target
            & (np.abs(starts[1:] - ends[:-1]) <= CHAIN_MARGIN_SECONDS)
            & (starts[1:] - starts[:-1] > 1.0)
        )
    raise ValueError(f"unknown scan kind {kind!r}")


def _materialize_row_runs(ds, row_segs: Sequence[np.ndarray], kind: str) -> list:
    """Regenerate the scan events of boundary-crossing runs.

    ``row_segs`` holds one ascending global-row array per crossing run.
    Collaboration runs are rescanned through :class:`_AttackSlice` (the
    kernel may split a run into several events or none; runs on the same
    target are separated by more than the start window, and different
    targets never merge, so the slice rescan is exact).  Chains map
    one-to-one onto linked runs, so they are materialised directly —
    rescanning a slice would be *wrong* here: the >1 s stagger condition
    means omitted in-between rows can break links the slice cannot see.
    """
    if not row_segs:
        return []
    if kind == "collaborations":
        rows = np.sort(np.concatenate(list(row_segs)))
        shim = _AttackSlice(ds, rows)
        fresh = _detect_collaborations(
            shim, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS
        )
        return [
            dataclasses.replace(
                e, attack_indices=tuple(int(rows[i]) for i in e.attack_indices)
            )
            for e in fresh
        ]
    if kind != "chains":
        raise ValueError(f"unknown scan kind {kind!r}")
    chains = []
    for seg in row_segs:
        s = ds.start[seg]
        e = ds.end[seg]
        chains.append(
            AttackChain(
                attack_indices=tuple(int(i) for i in seg),
                target_index=int(ds.target_idx[seg[0]]),
                families=tuple(
                    ds.family_name(int(k)) for k in ds.family_idx[seg]
                ),
                start=float(s[0]),
                end=float(e[-1]),
                gaps=tuple(float(g) for g in (s[1:] - e[:-1])),
            )
        )
    return chains


def _merge_sorted_events(kept: list, fresh: list) -> list:
    """Merge kept (already sorted) and few fresh events by (start, target).

    Equal-start events only arise across targets, and both scans emit at
    most one event per (start, target) — the key is a total order that
    matches the global kernel's stable target-major enumeration.
    """
    key = lambda e: (e.start, e.target_index)  # noqa: E731
    if not fresh:
        return kept
    fresh = sorted(fresh, key=key)
    if not kept:
        return fresh
    if len(fresh) <= 32:
        out = kept
        for e in fresh:
            bisect.insort(out, e, key=key)
        return out
    starts = np.fromiter(
        (e.start for e in kept), dtype=np.float64, count=len(kept)
    )
    out = []
    prev = 0
    for e in fresh:
        pos = int(np.searchsorted(starts, e.start, side="left"))
        while (
            pos < len(kept)
            and kept[pos].start == e.start
            and kept[pos].target_index < e.target_index
        ):
            pos += 1
        pos = max(pos, prev)
        out.extend(kept[prev:pos])
        out.append(e)
        prev = pos
    out.extend(kept[prev:])
    return out


def stitch_scan_events(
    parts: Sequence[list],
    ds,
    grouped: dict[int, np.ndarray],
    bases: Sequence[int],
    kind: str,
) -> tuple[list, set[int]]:
    """Merge per-shard event lists already carrying global attack indices.

    Vectorised replacement for :func:`merge_scan_events`: one array pass
    finds the runs whose rows span more than one shard, every per-shard
    event belonging to such a run is dropped, and only those runs are
    regenerated from the merged columns.  Returns ``(events, targets)``
    where ``targets`` is the set of target ids that needed stitching.

    When nothing crosses a boundary, the shard-order concatenation is
    already globally sorted (per-shard lists are start-sorted and shard
    start ranges are disjoint) and is returned as-is.
    """
    n = int(ds.n_attacks)
    if n == 0:
        return [], set()
    order = scan_order(grouped, n)
    targets = ds.target_idx[order]
    starts = ds.start[order]
    ends = ds.end[order]
    linked = _linked_mask(targets, starts, ends, kind)
    bases_arr = np.asarray(list(bases), dtype=np.int64)
    part_of = np.searchsorted(bases_arr, order, side="right") - 1
    cross_adj = linked & (part_of[1:] != part_of[:-1])
    if not cross_adj.any():
        return [e for part in parts for e in part], set()
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    new_run[1:] = ~linked
    run_id = np.cumsum(new_run) - 1
    crossing = np.zeros(int(run_id[-1]) + 1, dtype=bool)
    crossing[run_id[1:][cross_adj]] = True
    in_crossing = np.zeros(n, dtype=bool)
    in_crossing[order[crossing[run_id]]] = True
    kept = [
        e
        for part in parts
        for e in part
        if not in_crossing[e.attack_indices[0]]
    ]
    run_first = np.flatnonzero(new_run)
    run_last = np.concatenate((run_first[1:], [n]))
    segs = [
        order[run_first[r] : run_last[r]] for r in np.flatnonzero(crossing)
    ]
    fresh = _materialize_row_runs(ds, segs, kind)
    stitched = {int(ds.target_idx[seg[0]]) for seg in segs}
    return _merge_sorted_events(kept, fresh), stitched


def seam_stitch_scan_events(
    prev_events: Sequence,
    new_parts: Sequence[list],
    ds,
    grouped: dict[int, np.ndarray],
    bases: Sequence[int],
    kind: str,
) -> tuple[list, set[int]]:
    """Incremental stitch after an append: touch only the new seams.

    ``prev_events`` is the previous merged context's event list (rows
    ``[0, bases[1])``); ``new_parts`` are the appended shards' rebased
    lists.  Instead of an O(n) scan, each seam is probed per target: a
    searchsorted into the target's merged row group finds the adjacent
    pair straddling the seam, and the run is grown outwards only while
    the link predicate holds.  Dropped previous events all have
    ``start >= `` the earliest crossing run's first start, so the kept
    prefix is a bisect, not a filter.
    """
    seams = [int(b) for b in bases[1:]]
    row_starts = ds.start
    row_ends = ds.end

    if kind == "collaborations":

        def linked(a: int, b: int) -> bool:
            return row_starts[b] - row_starts[a] <= START_WINDOW_SECONDS

    elif kind == "chains":

        def linked(a: int, b: int) -> bool:
            return (
                abs(row_starts[b] - row_ends[a]) <= CHAIN_MARGIN_SECONDS
                and row_starts[b] - row_starts[a] > 1.0
            )

    else:
        raise ValueError(f"unknown scan kind {kind!r}")

    seen: set[tuple[int, int, int]] = set()
    segs: list[np.ndarray] = []
    for target, g in grouped.items():
        for seam in seams:
            pos = int(np.searchsorted(g, seam))
            if pos == 0 or pos == g.size:
                continue
            if not linked(g[pos - 1], g[pos]):
                continue
            lo, hi = pos - 1, pos + 1
            while lo > 0 and linked(g[lo - 1], g[lo]):
                lo -= 1
            while hi < g.size and linked(g[hi - 1], g[hi]):
                hi += 1
            # Maximal runs from different seams are equal or disjoint —
            # abutting-but-unlinked neighbours must stay separate runs.
            if (target, lo, hi) not in seen:
                seen.add((target, lo, hi))
                segs.append(g[lo:hi])
    prev_events = list(prev_events)
    if not segs:
        return prev_events + [e for part in new_parts for e in part], set()
    crossing_rows = {int(i) for seg in segs for i in seg}
    threshold = min(float(row_starts[seg[0]]) for seg in segs)
    cut = bisect.bisect_left(prev_events, threshold, key=lambda e: e.start)
    kept = prev_events[:cut]
    kept.extend(
        e for e in prev_events[cut:] if e.attack_indices[0] not in crossing_rows
    )
    for part in new_parts:
        kept.extend(e for e in part if e.attack_indices[0] not in crossing_rows)
    fresh = _materialize_row_runs(ds, segs, kind)
    stitched = {int(ds.target_idx[seg[0]]) for seg in segs}
    return _merge_sorted_events(kept, fresh), stitched


# -- tree-reducible shard partials -----------------------------------------


@dataclasses.dataclass
class ShardPartial:
    """The re-reduction state of one contiguous shard range ``[lo, hi)``.

    Everything in here merges under :func:`combine_partials` — a small,
    associative algebra (integer sums, sorted-unique unions), bitwise
    stable under any tree shape, and cheap to pickle for the subtree
    cache.  The concatenation-shaped views (index groupings, per-family
    series, scan events) stay out: they are linear-size and assembled
    once during finalisation instead of being copied at every level.
    """

    lo: int
    hi: int
    target_country_counts: tuple[np.ndarray, np.ndarray]
    target_org_counts: tuple[np.ndarray, np.ndarray]
    protocol_breakdown: list[tuple[Protocol, str, int]]
    protocol_popularity: dict[Protocol, int]
    #: family name (or ``None`` for the headline) -> per-day counts
    daily_counts: dict[str | None, np.ndarray]
    #: family name -> ``(weeks_u, u_week, u_bot)`` weekly-shift table
    weekly_pairs: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]]
    #: family name -> ``(uniq, counts)`` target-country marginal
    family_country_counts: dict[str, tuple[np.ndarray, np.ndarray]]
    families: tuple[str, ...]


def make_shard_partial(ctx, families: Sequence[str], index: int) -> ShardPartial:
    """Extract one shard's :class:`ShardPartial` from its built context."""
    daily: dict[str | None, np.ndarray] = {
        None: ctx.daily_distribution(None).counts
    }
    for family in families:
        daily[family] = ctx.daily_distribution(family).counts
    return ShardPartial(
        lo=index,
        hi=index + 1,
        target_country_counts=ctx.target_country_counts(),
        target_org_counts=ctx.target_org_counts(),
        protocol_breakdown=ctx.protocol_breakdown(),
        protocol_popularity=ctx.protocol_popularity(),
        daily_counts=daily,
        weekly_pairs={f: ctx.weekly_shift_pairs(f) for f in families},
        family_country_counts={
            f: ctx.family_target_country_counts(f) for f in families
        },
        families=tuple(families),
    )


def _pad_sum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.zeros(max(a.size, b.size), dtype=a.dtype)
    out[: a.size] += a
    out[: b.size] += b
    return out


def combine_partials(a: ShardPartial, b: ShardPartial) -> ShardPartial:
    """Combine two adjacent shard partials (``a`` left of ``b``)."""
    if a.hi != b.lo:
        raise ValueError(f"non-adjacent partials: [{a.lo},{a.hi}) + [{b.lo},{b.hi})")
    daily: dict[str | None, np.ndarray] = {}
    for key in dict.fromkeys([*a.daily_counts, *b.daily_counts]):
        pa = a.daily_counts.get(key)
        pb = b.daily_counts.get(key)
        daily[key] = pa if pb is None else pb if pa is None else _pad_sum(pa, pb)
    weekly: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for key in dict.fromkeys([*a.weekly_pairs, *b.weekly_pairs]):
        pa = a.weekly_pairs.get(key)
        pb = b.weekly_pairs.get(key)
        weekly[key] = (
            pa if pb is None else pb if pa is None else merge_weekly_pairs([pa, pb])
        )
    fam_counts: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for key in dict.fromkeys([*a.family_country_counts, *b.family_country_counts]):
        pa = a.family_country_counts.get(key)
        pb = b.family_country_counts.get(key)
        fam_counts[key] = (
            pa if pb is None else pb if pa is None else merge_counts([pa, pb])
        )
    return ShardPartial(
        lo=a.lo,
        hi=b.hi,
        target_country_counts=merge_counts(
            [a.target_country_counts, b.target_country_counts]
        ),
        target_org_counts=merge_counts([a.target_org_counts, b.target_org_counts]),
        protocol_breakdown=merge_protocol_breakdown(
            [a.protocol_breakdown, b.protocol_breakdown]
        ),
        protocol_popularity=merge_protocol_popularity(
            [a.protocol_popularity, b.protocol_popularity]
        ),
        daily_counts=daily,
        weekly_pairs=weekly,
        family_country_counts=fam_counts,
        families=tuple(sorted(set(a.families) | set(b.families))),
    )


# -- sketch summaries ------------------------------------------------------


def sketch_summaries(summaries):
    """Reduce per-shard :class:`~repro.sketch.AttackStreamSummary` values.

    The sketch counterpart of the exact combinators above: every member
    structure merges under its own associative algebra (Count-Min adds,
    HLL maxes, KLL compacts), so any merge tree over the same shards
    answers queries under the same documented error contract.  The only
    boundary artefact is the one inter-attack interval spanning each
    shard edge, which no shard observed (see
    :meth:`repro.sketch.AttackStreamSummary.merge`) — the exact-interval
    combinator :func:`merge_intervals` reinserts such gaps, the sketch
    one cannot.

    The inputs are left untouched (the reduce starts from a copy).
    Raises ``ValueError`` on an empty sequence — an empty *summary* is a
    fine identity, but the caller must pick its parameters.
    """
    parts = list(summaries)
    if not parts:
        raise ValueError("sketch_summaries needs at least one summary")
    merged = parts[0].copy()
    for part in parts[1:]:
        merged.merge(part)
    return merged
