"""Mergeable-result combinators for sharded analysis (map-reduce views).

Each combinator takes the per-shard value of one derived view and
reconstructs the value a single :class:`~repro.core.context.AnalysisContext`
over the merged dataset would compute — **bitwise** identical, pinned by
the shard-merge parity tests (``tests/core/test_shard_merge.py``).

The trivially mergeable views are concatenations (durations, per-family
starts, dispersion series) or re-reductions (marginal counts, weekly
(week, bot) pair tables, daily histograms).  Two families of views need
care at shard boundaries:

* **Intervals** — consecutive-gap arrays gain one extra gap per shard
  boundary (last start of the previous non-empty shard to the first
  start of the next one).
* **Collaboration / chain scans** — a run of attacks on one target can
  straddle a boundary.  :func:`find_boundary_suspects` flags every
  target whose shard-edge attacks *could* link under the paper's
  windows; events on non-suspect targets pass through with their attack
  indices rebased, suspect targets are rescanned on the merged columns
  (a per-target-independent computation, so the rescan of the suspect
  subset equals the global scan restricted to those targets).

All index-valued outputs are **global** attack indices: shard ``k``'s
local index ``i`` maps to ``bases[k] + i`` where ``bases`` are the
cumulative shard sizes.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..monitor.schemas import Protocol
from .collaboration import (
    DURATION_WINDOW_SECONDS,
    START_WINDOW_SECONDS,
    _detect_collaborations,
)
from .consecutive import CHAIN_MARGIN_SECONDS, _detect_chains
from .overview import DailyDistribution

if TYPE_CHECKING:  # pragma: no cover - types only
    from .collaboration import CollabEvent
    from .consecutive import AttackChain
    from .dataset import AttackDataset

__all__ = [
    "merge_grouped_indices",
    "merge_concat",
    "merge_series",
    "merge_csr",
    "merge_counts",
    "merge_intervals",
    "merge_weekly_pairs",
    "merge_daily_distributions",
    "merge_protocol_breakdown",
    "merge_protocol_popularity",
    "merge_snapshot_dispersions",
    "find_boundary_suspects",
    "merge_scan_events",
    "sketch_summaries",
]


# -- plain concatenations --------------------------------------------------


def merge_concat(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-shard arrays in shard (chronological) order."""
    return np.concatenate(list(parts))


def merge_series(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge aligned ``(timestamps, values)`` pairs by concatenation.

    Shards partition by start time, so shard-order concatenation of
    chronological per-shard series is the global chronological series.
    """
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def merge_grouped_indices(
    parts: Sequence[dict[int, np.ndarray]], bases: Sequence[int]
) -> dict[int, np.ndarray]:
    """Merge per-shard grouping dicts (column value -> attack indices).

    Per-shard groups hold local indices in chronological order; rebasing
    and concatenating in shard order keeps each group chronological.
    The output dict is built in ascending key order — the same insertion
    order the unsharded ``np.split`` grouping pass produces.
    """
    keys = sorted({k for part in parts for k in part})
    out: dict[int, np.ndarray] = {}
    for key in keys:
        pieces = [
            part[key] + np.int64(base)
            for part, base in zip(parts, bases)
            if key in part
        ]
        out[key] = np.concatenate(pieces)
    return out


def merge_csr(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard CSR ``(offsets, flat)`` layouts in shard order.

    ``flat`` entries are global bot indices (the registries are shared
    across shards), so only the offsets need rebasing.
    """
    offset_pieces = [np.zeros(1, dtype=np.int64)]
    base = np.int64(0)
    for offsets, _flat in parts:
        offset_pieces.append(offsets[1:] + base)
        base += offsets[-1]
    return (
        np.concatenate(offset_pieces),
        np.concatenate([flat for _offsets, flat in parts]),
    )


# -- re-reductions ---------------------------------------------------------


def merge_counts(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``np.unique(..., return_counts=True)`` marginals."""
    uniq = np.concatenate([p[0] for p in parts])
    counts = np.concatenate([p[1] for p in parts])
    if uniq.size == 0:
        return uniq, counts
    order = np.argsort(uniq, kind="stable")
    u_sorted = uniq[order]
    first = np.empty(u_sorted.size, dtype=bool)
    first[0] = True
    first[1:] = u_sorted[1:] != u_sorted[:-1]
    starts = np.flatnonzero(first)
    return u_sorted[starts], np.add.reduceat(counts[order], starts)


def merge_intervals(
    starts_parts: Sequence[np.ndarray], diff_parts: Sequence[np.ndarray]
) -> np.ndarray:
    """Merge per-shard consecutive-gap arrays, adding the boundary gaps.

    ``np.diff`` is an elementwise subtraction, so the global gap array is
    exactly the per-shard gap arrays interleaved with one boundary gap
    (first start of a non-empty shard minus the last start of the
    previous non-empty one) per internal boundary.
    """
    pieces: list[np.ndarray] = []
    prev_last: float | None = None
    for starts, diffs in zip(starts_parts, diff_parts):
        if starts.size == 0:
            continue
        if prev_last is not None:
            pieces.append(np.array([starts[0] - prev_last], dtype=np.float64))
        if diffs.size:
            pieces.append(diffs)
        prev_last = float(starts[-1])
    if not pieces:
        return np.zeros(0)
    return np.concatenate(pieces)


def merge_weekly_pairs(
    parts: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Union per-shard ``(weeks_u, u_week, u_bot)`` weekly-shift tables.

    A (week, bot) pair may appear in several shards (the bot attacked in
    that week on both sides of a boundary); the merged table re-sorts and
    dedupes, which reproduces the global sorted-unique pair table.
    """
    weeks_u = np.unique(np.concatenate([p[0] for p in parts]))
    cw = np.concatenate([p[1] for p in parts])
    cb = np.concatenate([p[2] for p in parts])
    if cw.size == 0:
        return weeks_u, cw, cb
    order = np.lexsort((cb, cw))
    w_sorted = cw[order]
    b_sorted = cb[order]
    first = np.empty(w_sorted.size, dtype=bool)
    first[0] = True
    first[1:] = (w_sorted[1:] != w_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    return weeks_u, w_sorted[first], b_sorted[first]


def merge_daily_distributions(
    parts: Sequence[DailyDistribution], ds: "AttackDataset", family: str | None
) -> DailyDistribution:
    """Pad-sum per-shard daily histograms and recompute the headline.

    The counts are integer sums, so the padded sum is exact; the busiest
    day's top family is re-derived with the unsharded kernel's own
    expression over the merged columns (one vectorised pass).
    """
    n_days = max(p.counts.size for p in parts)
    counts = np.zeros(n_days, dtype=parts[0].counts.dtype)
    for p in parts:
        counts[: p.counts.size] += p.counts
    max_day = int(np.argmax(counts))
    if family is not None:
        top_family = family if counts[max_day] > 0 else ""
    else:
        days = ((ds.start - ds.window.start) // 86400).astype(np.int64)
        on_max = days == max_day
        if on_max.any():
            fams, fam_counts = np.unique(ds.family_idx[on_max], return_counts=True)
            top_family = ds.family_name(int(fams[np.argmax(fam_counts)]))
        else:
            top_family = ""
    return DailyDistribution(
        counts=counts,
        mean_per_day=float(counts[: ds.window.n_days].mean()),
        max_per_day=int(counts[max_day]),
        max_day_index=max_day,
        max_day_label=ds.window.day_label(max_day),
        max_day_top_family=top_family,
    )


def merge_protocol_breakdown(
    parts: Sequence[list[tuple[Protocol, str, int]]]
) -> list[tuple[Protocol, str, int]]:
    """Sum per-shard Table II cells, protocol-major / family-sorted."""
    totals: dict[tuple[int, str], int] = {}
    for rows in parts:
        for proto, fam, count in rows:
            key = (int(proto), fam)
            totals[key] = totals.get(key, 0) + int(count)
    out: list[tuple[Protocol, str, int]] = []
    for proto in Protocol:
        cells = sorted(
            (fam, count) for (p, fam), count in totals.items() if p == int(proto)
        )
        out.extend((proto, fam, count) for fam, count in cells)
    return out


def merge_protocol_popularity(
    parts: Sequence[dict[Protocol, int]]
) -> dict[Protocol, int]:
    """Sum per-shard Fig 1 protocol totals (all protocols, zeros kept)."""
    return {proto: sum(int(p[proto]) for p in parts) for proto in Protocol}


def merge_snapshot_dispersions(
    parts: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard-interior plus boundary-strip snapshot series.

    Every grid timestamp is evaluated by exactly one part (a shard's
    interior or the merged-context strip pass), so a stable sort by
    timestamp is a pure permutation back into grid order.
    """
    ts = np.concatenate([p[0] for p in parts])
    values = np.concatenate([p[1] for p in parts])
    order = np.argsort(ts, kind="stable")
    return ts[order], values[order]


# -- boundary-stitched scans -----------------------------------------------


def _target_segments(
    ds,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-target scan-edge state: (targets, first start, last start, last end).

    ``last end`` is the end of the last-*started* attack — the attack the
    chain kernel would link the next shard's first attack against.
    """
    n = ds.n_attacks
    if n == 0:
        empty_f = np.zeros(0)
        return np.zeros(0, dtype=np.int64), empty_f, empty_f, empty_f
    order = np.lexsort((ds.start, ds.target_idx))
    targets = ds.target_idx[order]
    starts = ds.start[order]
    ends = ds.end[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    new[1:] = targets[1:] != targets[:-1]
    firsts = np.flatnonzero(new)
    lasts = np.concatenate((firsts[1:], [n])) - 1
    return (
        targets[firsts].astype(np.int64),
        starts[firsts],
        starts[lasts],
        ends[lasts],
    )


def find_boundary_suspects(datasets: Sequence, n_targets: int) -> np.ndarray:
    """Boolean mask of targets whose scans may link across a boundary.

    Walks the shards in time order carrying, per target, the start and
    end of its last-started attack so far.  A target becomes suspect when
    its first attack in a later shard falls within the collaboration
    start window of the carried start, or within the chain margin of the
    carried end (conservative: the chain kernel's additional >1 s
    stagger condition is ignored — the rescan settles it exactly).
    """
    last_start = np.full(n_targets, -np.inf)
    last_end = np.full(n_targets, -np.inf)
    seen = np.zeros(n_targets, dtype=bool)
    suspect = np.zeros(n_targets, dtype=bool)
    for ds in datasets:
        targets, first_start, seg_last_start, seg_last_end = _target_segments(ds)
        if targets.size == 0:
            continue
        cross = seen[targets] & (
            (first_start - last_start[targets] <= START_WINDOW_SECONDS)
            | (np.abs(first_start - last_end[targets]) <= CHAIN_MARGIN_SECONDS)
        )
        suspect[targets[cross]] = True
        seen[targets] = True
        last_start[targets] = seg_last_start
        last_end[targets] = seg_last_end
    return suspect


class _AttackSlice:
    """Column view of the merged dataset restricted to a row subset.

    Quacks like an :class:`AttackDataset` for exactly the columns the
    collaboration/chain kernels touch.  Rows are given in ascending
    global order, so the kernels' stable ``lexsort`` preserves the same
    tie order the global scan would use.
    """

    def __init__(self, ds, rows: np.ndarray) -> None:
        self._ds = ds
        self.n_attacks = int(rows.size)
        self.start = ds.start[rows]
        self.end = ds.end[rows]
        self.target_idx = ds.target_idx[rows]
        self.botnet_id = ds.botnet_id[rows]
        self.family_idx = ds.family_idx[rows]

    def family_name(self, family_id: int) -> str:
        return self._ds.family_name(family_id)


def merge_scan_events(
    parts: Sequence[list],
    bases: Sequence[int],
    suspect: np.ndarray,
    merged_ds,
    kind: str,
) -> "list[CollabEvent] | list[AttackChain]":
    """Merge per-shard collaboration/chain event lists.

    Events on non-suspect targets pass through with rebased attack
    indices; suspect targets are rescanned on the merged columns and the
    rescan's local indices mapped back through the row subset.  Both
    scans group strictly per target, so the union reproduces the global
    scan; the final sort key ``(start, target)`` matches the global
    enumeration order exactly (runs are enumerated target-major, so the
    global ``sort(key=start)`` leaves equal-start events in ascending
    target order).
    """
    events = []
    for shard_events, base in zip(parts, bases):
        offset = int(base)
        for event in shard_events:
            if suspect[event.target_index]:
                continue
            events.append(
                dataclasses.replace(
                    event,
                    attack_indices=tuple(int(i) + offset for i in event.attack_indices),
                )
            )
    if suspect.any():
        rows = np.flatnonzero(suspect[merged_ds.target_idx])
        shim = _AttackSlice(merged_ds, rows)
        if kind == "collaborations":
            rescanned = _detect_collaborations(
                shim, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS
            )
        elif kind == "chains":
            rescanned = _detect_chains(shim, CHAIN_MARGIN_SECONDS, 2)
        else:
            raise ValueError(f"unknown scan kind {kind!r}")
        for event in rescanned:
            events.append(
                dataclasses.replace(
                    event,
                    attack_indices=tuple(
                        int(rows[i]) for i in event.attack_indices
                    ),
                )
            )
    events.sort(key=lambda e: (e.start, e.target_index))
    return events


# -- sketch summaries ------------------------------------------------------


def sketch_summaries(summaries):
    """Reduce per-shard :class:`~repro.sketch.AttackStreamSummary` values.

    The sketch counterpart of the exact combinators above: every member
    structure merges under its own associative algebra (Count-Min adds,
    HLL maxes, KLL compacts), so any merge tree over the same shards
    answers queries under the same documented error contract.  The only
    boundary artefact is the one inter-attack interval spanning each
    shard edge, which no shard observed (see
    :meth:`repro.sketch.AttackStreamSummary.merge`) — the exact-interval
    combinator :func:`merge_intervals` reinserts such gaps, the sketch
    one cannot.

    The inputs are left untouched (the reduce starts from a copy).
    Raises ``ValueError`` on an empty sequence — an empty *summary* is a
    fine identity, but the caller must pick its parameters.
    """
    parts = list(summaries)
    if not parts:
        raise ValueError("sketch_summaries needs at least one summary")
    merged = parts[0].copy()
    for part in parts[1:]:
        merged.merge(part)
    return merged
