"""Table IV + Figs 12-13: ARIMA geolocation-distance prediction."""

from __future__ import annotations

import numpy as np

from ..core.context import AnalysisContext, AnalysisSource
from ..core.prediction import predict_family_dispersion
from .base import Experiment, ExperimentResult

#: Table IV: family -> (truth mean, truth std, cosine similarity).
PAPER_TABLE4 = {
    "blackenergy": (3970.6, 2294.4, 0.960),
    "pandora": (569.2, 1842.5, 0.946),
    "dirtjumper": (1229.1, 1033.7, 0.848),
    "optima": (3545.8, 1717.8, 0.941),
    "colddeath": (341.6, 933.8, 0.809),
}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("table4_prediction")
    for family, (paper_mean, paper_std, paper_sim) in PAPER_TABLE4.items():
        if family not in ds.active_families:
            continue
        try:
            forecast = predict_family_dispersion(ctx, family)
        except ValueError as exc:
            result.add(f"{family}: skipped", None, str(exc))
            continue
        c = forecast.comparison
        result.add(f"{family}: truth mean (km)", f"{paper_mean:.0f}", f"{c.truth_mean:.0f}")
        result.add(f"{family}: truth std (km)", f"{paper_std:.0f}", f"{c.truth_std:.0f}")
        result.add(f"{family}: prediction mean (km)", None, f"{c.prediction_mean:.0f}")
        result.add(f"{family}: cosine similarity", f"{paper_sim:.3f}", f"{c.similarity:.3f}")
        result.add(
            f"{family}: median error rate (Figs 12-13)",
            None,
            f"{float(np.median(forecast.errors)):.2f}",
        )
    result.notes = (
        "Darkshell is excluded for lack of data points, as in the paper; "
        "similarity >= ~0.8 is the reproduction target"
    )
    return result


EXPERIMENT = Experiment(
    id="table4_prediction",
    title="Geolocation distance prediction statistics",
    section="IV-A (Table IV, Figs 12-13)",
    run=run,
)
