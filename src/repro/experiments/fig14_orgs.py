"""Fig 14: organization-level target affinity (Pandora, February 2013)."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.targets import organization_affinity, victim_org_types
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig14_orgs")
    spots = organization_affinity(ctx, "pandora", year=2013, month=2)
    result.add("pandora Feb-2013 organizations hit", None, len(spots))
    if spots:
        hotspot = spots[0]
        result.add(
            "largest hotspot",
            "in Russia or USA",
            f"{hotspot.organization} ({hotspot.country_code}, {hotspot.attack_count} attacks)",
        )
        hot_countries = {s.country_code for s in spots[:5]}
        result.add("hotspots include RU", "true", str("RU" in hot_countries).lower())
    types = victim_org_types(ctx)
    total = sum(types.values())
    infra = sum(
        types.get(t, 0) for t in ("hosting", "cloud", "datacenter", "registrar", "backbone")
    )
    result.add(
        "attacks on hosting/cloud/DC/registrar/backbone",
        "most attacks",
        f"{infra}/{total} ({infra / total:.0%})" if total else "n/a",
    )
    return result


EXPERIMENT = Experiment(
    id="fig14_orgs",
    title="Organization-level target affinity",
    section="IV-B2 (Fig 14)",
    run=run,
)
