"""Per-table/figure experiment modules and the registry."""

from .base import Experiment, ExperimentResult, Row
from .registry import ALL_EXPERIMENTS, get_experiment, run_all

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Row",
    "ALL_EXPERIMENTS",
    "get_experiment",
    "run_all",
]
