"""Fig 17: CDF of gaps between consecutive (multistage) attacks."""

from __future__ import annotations

from ..core.consecutive import chain_summary, detect_chains
from ..core.context import AnalysisContext, AnalysisSource
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig17_consecutive")
    chains = detect_chains(ctx)
    if not chains:
        result.add("chains detected", ">0", 0)
        return result
    summary = chain_summary(ctx, chains)
    result.add("chains detected", None, summary.n_chains)
    result.add("intra-family only", "true", str(summary.intra_family_only).lower())
    result.add(
        "families with chains",
        "darkshell, ddoser, dirtjumper, nitol",
        ", ".join(summary.families),
    )
    result.add("gaps <= 10 s", "~0.65", f"{summary.under_10s_fraction:.2f}")
    result.add("gaps <= 30 s", "~0.80", f"{summary.under_30s_fraction:.2f}")
    result.add("gap median (s)", 3, f"{summary.gap_median:.1f}")
    result.add("gap std (s)", 23, f"{summary.gap_std:.1f}")
    return result


EXPERIMENT = Experiment(
    id="fig17_consecutive",
    title="Distribution of consecutive-attack intervals",
    section="V-B (Fig 17)",
    run=run,
)
