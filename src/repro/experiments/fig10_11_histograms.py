"""Figs 10-11: asymmetric dispersion histograms for Pandora and Blackenergy."""

from __future__ import annotations

import numpy as np

from ..core.context import AnalysisContext, AnalysisSource
from ..core.geolocation import dispersion_histogram, dispersion_profile
from .base import Experiment, ExperimentResult

PAPER = {
    "pandora": {"symmetric": 0.767, "asym_mean": 566.0},
    "blackenergy": {"symmetric": 0.895, "asym_mean": 4304.0},
}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig10_11_histograms")
    for family, paper in PAPER.items():
        if family not in ds.active_families or ctx.family_attacks(family).size < 10:
            continue
        profile = dispersion_profile(ctx, family)
        result.add(
            f"{family}: symmetric fraction",
            f"{paper['symmetric']:.3f}",
            f"{profile.symmetric_fraction:.3f}",
        )
        result.add(
            f"{family}: asymmetric mean (km)",
            f"{paper['asym_mean']:.0f}",
            f"{profile.asymmetric_mean_km:.0f}",
        )
        edges, counts = dispersion_histogram(ctx, family)
        if counts.size:
            mode_bin = float(edges[int(np.argmax(counts))])
            result.add(f"{family}: histogram mode bin (km)", None, f"{mode_bin:.0f}")
    if "pandora" in ds.active_families and "blackenergy" in ds.active_families:
        p = dispersion_profile(ctx, "pandora").asymmetric_mean_km
        b = dispersion_profile(ctx, "blackenergy").asymmetric_mean_km
        result.add("blackenergy mean >> pandora mean", "4304 vs 566", f"{b:.0f} vs {p:.0f}")
    return result


EXPERIMENT = Experiment(
    id="fig10_11_histograms",
    title="Asymmetric geolocation histograms (Pandora, Blackenergy)",
    section="IV-A (Figs 10-11)",
    run=run,
)
