"""Figs 6-7: attack durations (timeline + CDF)."""

from __future__ import annotations

import numpy as np

from ..core.context import AnalysisContext, AnalysisSource
from ..core.durations import duration_summary, duration_timeline
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig7_durations")
    s = duration_summary(ctx)
    result.add("mean duration (s)", 10308, f"{s.stats.mean:.0f}")
    result.add("median duration (s)", 1766, f"{s.stats.median:.0f}")
    result.add("std of duration (s)", 18475, f"{s.stats.std:.0f}")
    result.add("p80 duration (h)", "3.86 (13882 s)", f"{s.p80_hours:.2f}")
    result.add("share under 60 s", "<0.10", f"{s.under_60s_fraction:.2f}")
    result.add("share under 4 h", "~0.80", f"{s.under_4h_fraction:.2f}")
    days, durations, _fams = duration_timeline(ctx)
    in_band = float(np.mean((durations >= 100.0) & (durations <= 10000.0)))
    result.add("Fig 6 band 100-10000 s share", "majority", f"{in_band:.2f}")
    result.add("timeline days covered", None, int(np.unique(days).size))
    return result


EXPERIMENT = Experiment(
    id="fig7_durations",
    title="Attack duration distribution",
    section="III-C (Figs 6-7)",
    run=run,
)
