"""Fig 8: weekly source shift patterns (existing vs new countries)."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.shift import aggregate_shift, weekly_shift
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig8_shift")
    total = aggregate_shift(ctx)
    result.add("weeks with activity", None, total.weeks.size)
    result.add("bots from existing countries (total)", "~10^4 scale", total.total_existing)
    result.add("bots from new countries (total)", "~10^3 scale", total.total_new)
    ratio = total.affinity_ratio
    result.add(
        "existing:new ratio",
        ">= 10 (order of magnitude)",
        f"{ratio:.1f}" if ratio != float("inf") else "inf",
    )
    for family in ds.active_families:
        if ctx.family_attacks(family).size < 10:
            continue
        shift = weekly_shift(ctx, family)
        result.add(
            f"{family}: existing/new bots",
            None,
            f"{shift.total_existing}/{shift.total_new}",
        )
    result.notes = "affinity: sources stay within a fixed country set, rare expansions"
    return result


EXPERIMENT = Experiment(
    id="fig8_shift",
    title="Botnet shift patterns over time (weekly)",
    section="IV-A (Fig 8)",
    run=run,
)
