"""Table III: summary of the workload (attacker and victim populations)."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.overview import workload_summary
from .base import Experiment, ExperimentResult

PAPER_ATTACKERS = {
    "bot_ips": 310950,
    "cities": 2897,
    "countries": 186,
    "organizations": 3498,
    "asn": 3973,
}
PAPER_VICTIMS = {
    "target_ips": 9026,
    "cities": 616,
    "countries": 84,
    "organizations": 1074,
    "asn": 1260,
}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("table3_summary")
    s = workload_summary(ctx)
    result.add("attackers / bot_ips", PAPER_ATTACKERS["bot_ips"], s.attackers.n_ips)
    result.add("attackers / cities", PAPER_ATTACKERS["cities"], s.attackers.n_cities)
    result.add("attackers / countries", PAPER_ATTACKERS["countries"], s.attackers.n_countries)
    result.add(
        "attackers / organizations", PAPER_ATTACKERS["organizations"], s.attackers.n_organizations
    )
    result.add("attackers / asn", PAPER_ATTACKERS["asn"], s.attackers.n_asns)
    result.add("victims / target_ips", PAPER_VICTIMS["target_ips"], s.victims.n_ips)
    result.add("victims / cities", PAPER_VICTIMS["cities"], s.victims.n_cities)
    result.add("victims / countries", PAPER_VICTIMS["countries"], s.victims.n_countries)
    result.add(
        "victims / organizations", PAPER_VICTIMS["organizations"], s.victims.n_organizations
    )
    result.add("victims / asn", PAPER_VICTIMS["asn"], s.victims.n_asns)
    result.add("ddos_id", 50704, s.n_attacks)
    result.add("botnet_id", 674, s.n_botnets)
    result.add("traffic types", 7, s.n_traffic_types)
    result.notes = (
        "synthetic world keeps one ASN per organization, so the asn counts "
        "track the organization counts (the paper's differ slightly)"
    )
    return result


EXPERIMENT = Experiment(
    id="table3_summary",
    title="Summary of the workload information",
    section="II-D (Table III)",
    run=run,
)
