"""Table II + Fig 1: protocol preferences per family and overall popularity."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.overview import protocol_breakdown, protocol_popularity
from ..monitor.schemas import Protocol
from .base import Experiment, ExperimentResult

#: The paper's Table II cells: (protocol, family) -> attacks.
PAPER_TABLE2 = {
    (Protocol.HTTP, "colddeath"): 826,
    (Protocol.HTTP, "darkshell"): 999,
    (Protocol.HTTP, "dirtjumper"): 34620,
    (Protocol.HTTP, "blackenergy"): 3048,
    (Protocol.HTTP, "nitol"): 591,
    (Protocol.HTTP, "optima"): 567,
    (Protocol.HTTP, "pandora"): 6906,
    (Protocol.HTTP, "yzf"): 177,
    (Protocol.TCP, "blackenergy"): 199,
    (Protocol.TCP, "nitol"): 345,
    (Protocol.TCP, "yzf"): 182,
    (Protocol.UDP, "aldibot"): 26,
    (Protocol.UDP, "blackenergy"): 71,
    (Protocol.UDP, "ddoser"): 126,
    (Protocol.UDP, "yzf"): 187,
    (Protocol.UNDETERMINED, "darkshell"): 1530,
    (Protocol.ICMP, "blackenergy"): 147,
    (Protocol.UNKNOWN, "optima"): 126,
    (Protocol.SYN, "blackenergy"): 31,
}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("table2_protocols")
    measured = {(p, f): c for p, f, c in protocol_breakdown(ctx)}
    for (proto, family), paper_count in sorted(
        PAPER_TABLE2.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
    ):
        result.add(
            f"{proto.name}/{family}",
            paper_count,
            measured.pop((proto, family), 0),
        )
    for (proto, family), count in sorted(measured.items()):
        result.add(f"{proto.name}/{family} (extra)", 0, count)
    popularity = protocol_popularity(ctx)
    top = max(popularity, key=lambda p: popularity[p])
    result.add("dominant protocol (Fig 1)", "HTTP", top.name)
    result.notes = "exact at scale=1.0 by construction; shape (HTTP dominant) at any scale"
    return result


EXPERIMENT = Experiment(
    id="table2_protocols",
    title="Protocol preferences of each botnet family",
    section="II-D (Table II, Fig 1)",
    run=run,
)
