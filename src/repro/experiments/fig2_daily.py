"""Fig 2: the daily attack distribution."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.overview import daily_attack_counts
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig2_daily")
    daily = daily_attack_counts(ctx)
    result.add("mean attacks per day", 243, f"{daily.mean_per_day:.0f}")
    result.add("max attacks in one day", 983, daily.max_per_day)
    result.add("max day", "2012-08-30", daily.max_day_label)
    result.add("max-day top family", "dirtjumper", daily.max_day_top_family)
    active_days = int((daily.counts > 0).sum())
    result.add("days with activity", None, f"{active_days}/{daily.n_days}")
    result.notes = "no diurnal/weekly periodicity is expected (attacks are not user-driven)"
    return result


EXPERIMENT = Experiment(
    id="fig2_daily",
    title="Daily attack distribution",
    section="III-A (Fig 2)",
    run=run,
)
