"""Fig 15: Dirtjumper's intra-family collaboration structure."""

from __future__ import annotations

from ..core.collaboration import detect_collaborations, intra_family_stats
from ..core.context import AnalysisContext, AnalysisSource
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig15_intra")
    events = detect_collaborations(ctx)
    stats = intra_family_stats(ctx, "dirtjumper", events)
    result.add("dirtjumper intra-family events", 756, stats.n_events)
    result.add(
        "mean botnets per collaboration", "2.19", f"{stats.mean_botnets_per_event:.2f}"
    )
    result.add(
        "events with equal magnitudes ('same bar height')",
        "most",
        f"{stats.equal_magnitude_fraction:.0%}",
    )
    result.add("plotted (time, botnet, magnitude) points", None, len(stats.points))
    return result


EXPERIMENT = Experiment(
    id="fig15_intra",
    title="Intra-family collaborations of Dirtjumper",
    section="V-A (Fig 15)",
    run=run,
)
