"""Fig 16: the Dirtjumper × Pandora inter-family collaboration campaign."""

from __future__ import annotations

import numpy as np

from ..core.collaboration import detect_collaborations, pair_analysis
from ..core.context import AnalysisContext, AnalysisSource
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    result = ExperimentResult("fig16_pair")
    events = detect_collaborations(ctx)
    pa = pair_analysis(ctx, "dirtjumper", "pandora", events)
    result.add("collaboration events", 118, pa.n_events)
    result.add("unique targets", 96, pa.n_targets)
    result.add("target countries", 16, pa.n_countries)
    result.add("target organizations", 58, pa.n_organizations)
    result.add("target ASes", 61, pa.n_asns)
    if pa.top_countries:
        result.add(
            "top country",
            "RU (31)",
            f"{pa.top_countries[0][0]} ({pa.top_countries[0][1]})",
        )
    result.add("dirtjumper mean duration (s)", 5083, f"{pa.mean_duration_a:.0f}")
    result.add("pandora mean duration (s)", 6420, f"{pa.mean_duration_b:.0f}")
    if pa.series:
        mags = np.array([(m_a, m_b) for _t, _da, _db, m_a, m_b in pa.series], dtype=float)
        rel = np.abs(mags[:, 0] - mags[:, 1]) / np.maximum(mags.max(axis=1), 1.0)
        result.add(
            "events with near-equal magnitudes", "most", f"{float(np.mean(rel <= 0.25)):.0%}"
        )
    result.add("campaign span (weeks)", "~16 (Oct-Dec 2012)", f"{pa.span_weeks:.1f}")
    return result


EXPERIMENT = Experiment(
    id="fig16_pair",
    title="Inter-family collaborations: Dirtjumper and Pandora",
    section="V-A (Fig 16)",
    run=run,
)
