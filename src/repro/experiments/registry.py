"""Registry of every reproduced table and figure.

:func:`run_all` is the battery entry point.  It coerces the source to
one shared :class:`~repro.core.context.AnalysisContext` so derived views
(grouped attack indices, dispersion series, collaboration/chain scans)
are computed once across the whole battery, and can fan the experiments
out over a thread pool with ``jobs > 1``.  Results always come back in
paper order regardless of completion order, so the rendered output is
identical for any job count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..core.context import AnalysisContext, AnalysisSource
from ..obs import registry as _obs_registry
from .base import Experiment, ExperimentResult
from .fig2_daily import EXPERIMENT as FIG2
from .fig3_intervals import EXPERIMENT as FIG3
from .fig4_interval_clusters import EXPERIMENT as FIG4
from .fig5_family_cdf import EXPERIMENT as FIG5
from .fig7_durations import EXPERIMENT as FIG7
from .fig8_shift import EXPERIMENT as FIG8
from .fig9_geo_cdf import EXPERIMENT as FIG9
from .fig10_11_histograms import EXPERIMENT as FIG10_11
from .fig14_orgs import EXPERIMENT as FIG14
from .fig15_intra import EXPERIMENT as FIG15
from .fig16_pair import EXPERIMENT as FIG16
from .fig17_consecutive import EXPERIMENT as FIG17
from .fig18_chains import EXPERIMENT as FIG18
from .table2_protocols import EXPERIMENT as TABLE2
from .table3_summary import EXPERIMENT as TABLE3
from .table4_prediction import EXPERIMENT as TABLE4
from .table5_countries import EXPERIMENT as TABLE5
from .table6_collaboration import EXPERIMENT as TABLE6

__all__ = ["ALL_EXPERIMENTS", "get_experiment", "run_all"]

ALL_EXPERIMENTS: tuple[Experiment, ...] = (
    TABLE2,
    TABLE3,
    FIG2,
    FIG3,
    FIG4,
    FIG5,
    FIG7,
    FIG8,
    FIG9,
    FIG10_11,
    TABLE4,
    TABLE5,
    FIG14,
    TABLE6,
    FIG15,
    FIG16,
    FIG17,
    FIG18,
)


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (e.g. ``"table4_prediction"``)."""
    for experiment in ALL_EXPERIMENTS:
        if experiment.id == experiment_id:
            return experiment
    known = ", ".join(e.id for e in ALL_EXPERIMENTS)
    raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")


def run_all(source: AnalysisSource, jobs: int = 1) -> list[ExperimentResult]:
    """Run every experiment against one shared context, in paper order.

    ``jobs > 1`` spreads the experiments over a thread pool (the heavy
    lifting is numpy, which releases the GIL); the context's per-view
    locks guarantee each shared view is still computed exactly once.
    Output order — and, because the views are deterministic, the values
    themselves — do not depend on ``jobs``.

    The battery is observable: every experiment runs under its own stage
    span nested in an ``experiments`` stage (even on pool threads), the
    ``experiments.jobs`` gauge records the fan-out, and
    ``experiments.completed`` counts finished experiments — see
    ``docs/OBSERVABILITY.md``.
    """
    ctx = AnalysisContext.of(source)
    reg = _obs_registry()
    reg.gauge("experiments.jobs").set(jobs)
    completed = reg.counter("experiments.completed")
    with reg.span("experiments") as battery:

        def run_one(experiment: Experiment) -> ExperimentResult:
            with reg.span(experiment.id, parent=battery):
                result = experiment.run(ctx)
            completed.inc()
            return result

        if jobs <= 1:
            return [run_one(experiment) for experiment in ALL_EXPERIMENTS]
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(run_one, ALL_EXPERIMENTS))
