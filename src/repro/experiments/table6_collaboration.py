"""Table VI: intra- and inter-family collaboration statistics."""

from __future__ import annotations

from ..core.collaboration import collaboration_table, detect_collaborations
from ..core.context import AnalysisContext, AnalysisSource
from .base import Experiment, ExperimentResult

PAPER_TABLE6 = {
    "blackenergy": (0, 1),
    "colddeath": (0, 1),
    "darkshell": (253, 0),
    "ddoser": (134, 0),
    "dirtjumper": (756, 121),
    "nitol": (17, 0),
    "optima": (1, 1),
    "pandora": (10, 118),
    "yzf": (66, 0),
}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("table6_collaboration")
    events = detect_collaborations(ctx)
    table = collaboration_table(ds, events)
    for family, (paper_intra, paper_inter) in PAPER_TABLE6.items():
        if family not in table:
            continue
        result.add(f"{family}: intra-family", paper_intra, table[family]["intra"])
        result.add(f"{family}: inter-family", paper_inter, table[family]["inter"])
    intra_events = [e for e in events if not e.is_inter_family]
    if table:
        hub = max(table, key=lambda f: table[f]["intra"])
        result.add("intra-family hub", "dirtjumper", hub)
        inter_families = {f for e in events if e.is_inter_family for f in e.families}
        result.add(
            "dirtjumper in every inter-family collab",
            "true",
            str(
                all("dirtjumper" in e.families for e in events if e.is_inter_family)
            ).lower() if any(e.is_inter_family for e in events) else "n/a",
        )
    result.add("total intra-family events", 1103, len(intra_events))
    result.notes = (
        "the paper's Ddoser count (134) exceeds its verified attacks (126); "
        "the generator stages 20 instead — see EXPERIMENTS.md"
    )
    return result


EXPERIMENT = Experiment(
    id="table6_collaboration",
    title="Botnet collaboration statistics",
    section="V (Table VI)",
    run=run,
)
