"""Fig 9: geolocation-distance CDF per family."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.geolocation import dispersion_profile
from .base import Experiment, ExperimentResult

#: Families Fig 9 reports (>= 10 active days) with the paper's readings.
PAPER_SYMMETRIC_AT_ZERO = {"dirtjumper": 0.40, "pandora": 0.40}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig9_geo_cdf")
    for family in ds.active_families:
        if ctx.family_attacks(family).size < 10:
            continue
        profile = dispersion_profile(ctx, family)
        paper = PAPER_SYMMETRIC_AT_ZERO.get(family)
        result.add(
            f"{family}: fraction at ~0 km",
            f">{paper:.2f}" if paper else None,
            f"{profile.symmetric_fraction:.2f}",
        )
        result.add(
            f"{family}: mean dispersion (km)",
            None,
            f"{profile.mean_km:.0f}",
        )
    result.notes = (
        "Dirtjumper and Pandora show the largest symmetric mass, as in the paper"
    )
    return result


EXPERIMENT = Experiment(
    id="fig9_geo_cdf",
    title="Geolocation distribution CDF per family",
    section="IV-A (Fig 9)",
    run=run,
)
