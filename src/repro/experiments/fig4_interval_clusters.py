"""Fig 4: interval clusters — the shared 6-7 min / 20-40 min / 2-3 h modes."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.intervals import interval_clusters
from .base import Experiment, ExperimentResult

#: Buckets the paper singles out as the common modes.
MODE_BUCKETS = ("6-7 min", "20-40 min", "2-3 h")
#: Same-width sibling buckets used as the comparison baseline.
CONTROL_BUCKETS = {"6-7 min": "7-20 min", "20-40 min": "40 min-2 h", "2-3 h": "3-24 h"}


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig4_interval_clusters")
    families_with_modes = 0
    n_families = 0
    for family in ds.active_families:
        clusters = interval_clusters(ctx, family)
        total = sum(clusters.values())
        if total < 20:
            continue
        n_families += 1
        # A family "shares the modes" when the three highlighted buckets
        # are well-populated relative to their width (the paper's visual
        # reading of Fig 4).
        mode_mass = sum(clusters[b] for b in MODE_BUCKETS)
        if mode_mass / total >= 0.15:
            families_with_modes += 1
        result.add(
            f"{family}: 6-7m/20-40m/2-3h of {total}",
            None,
            "/".join(str(clusters[b]) for b in MODE_BUCKETS),
        )
    result.add(
        "families sharing the three modes",
        "all characterized families",
        f"{families_with_modes}/{n_families}",
    )
    return result


EXPERIMENT = Experiment(
    id="fig4_interval_clusters",
    title="Attack interval distributions (bucketed)",
    section="III-B (Fig 4)",
    run=run,
)
