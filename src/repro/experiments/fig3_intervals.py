"""Fig 3: attack-interval CDF, all attacks and family-confined."""

from __future__ import annotations

import numpy as np

from ..core.context import AnalysisContext, AnalysisSource
from ..core.intervals import attack_intervals, interval_summary, simultaneous_attacks
from ..core.stats import ecdf_at
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig3_intervals")
    gaps = attack_intervals(ctx)
    all_zero = float(np.mean(gaps == 0)) if gaps.size else 0.0
    result.add("simultaneous fraction (all families)", ">0.55", f"{all_zero:.2f}")

    fam_fracs = []
    for family in ds.active_families:
        idx = ctx.family_attacks(family)
        if idx.size < 2:
            continue
        fam_gaps = np.diff(np.sort(ds.start[idx]))
        fam_fracs.append(float(np.mean(fam_gaps == 0)))
    result.add(
        "simultaneous fraction (per family, max)",
        ">0.50",
        f"{max(fam_fracs):.2f}" if fam_fracs else "n/a",
    )
    summary = interval_summary(ctx, family="dirtjumper")
    result.add("dirtjumper mean interval (s)", None, f"{summary.stats.mean:.0f}")
    result.add("dirtjumper p80 interval (s)", None, f"{summary.p80_seconds:.0f}")
    result.add(
        "CDF at 1081 s (all attacks)", "0.80 (family-based)",
        f"{float(ecdf_at(gaps, [1081.0])[0]):.2f}",
    )
    sim = simultaneous_attacks(ctx)
    result.add("single-family simultaneous events", 3692, sim.single_family_events)
    result.add("multi-family simultaneous events", 956, sim.multi_family_events)
    if sim.pair_counts:
        (a, b), count = sim.pair_counts[0]
        result.add("top simultaneous pair", "dirtjumper+blackenergy (391)", f"{a}+{b} ({count})")
    result.notes = "zero-gap mass and long tail are the contract; event counts are stochastic"
    return result


EXPERIMENT = Experiment(
    id="fig3_intervals",
    title="Attack interval CDF (all vs per family)",
    section="III-B (Fig 3)",
    run=run,
)
