"""Fig 18: consecutive attacks over time with magnitudes."""

from __future__ import annotations

import numpy as np

from ..core.consecutive import chain_summary, chain_timeline, detect_chains
from ..core.context import AnalysisContext, AnalysisSource
from ..simulation.clock import to_datetime
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig18_chains")
    chains = detect_chains(ctx)
    if not chains:
        result.add("chains detected", ">0", 0)
        return result
    summary = chain_summary(ctx, chains)
    longest = max(chains, key=lambda c: c.length)
    result.add("longest chain length", 22, summary.longest_chain_length)
    result.add("longest chain family", "ddoser", summary.longest_chain_family)
    result.add(
        "longest chain duration (min)", ">18", f"{summary.longest_chain_duration / 60.0:.1f}"
    )
    result.add(
        "longest chain date",
        "2012-08-30",
        to_datetime(longest.start).strftime("%Y-%m-%d"),
    )
    dots = chain_timeline(ctx, chains)
    result.add("timeline dots", None, len(dots))
    # Magnitude stability within chains (except Dirtjumper's outliers).
    stable = 0
    for chain in chains:
        mags = np.array([ds.magnitude[i] for i in chain.attack_indices], dtype=float)
        if mags.size and (mags.max() - mags.min()) / max(mags.max(), 1.0) <= 0.3:
            stable += 1
    result.add(
        "chains with stable magnitudes", "most", f"{stable}/{len(chains)}"
    )
    return result


EXPERIMENT = Experiment(
    id="fig18_chains",
    title="Consecutive attacks over time",
    section="V-B (Fig 18)",
    run=run,
)
