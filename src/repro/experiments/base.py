"""Experiment framework: paper-vs-measured rows for every table/figure.

Each experiment module exposes an :data:`EXPERIMENT` instance whose
``run(source)`` returns an :class:`ExperimentResult` — a list of rows,
each a ``(label, paper value, measured value)`` triple (paper value may
be ``None`` when the paper reports no number for that row).  ``source``
is an :class:`~repro.core.context.AnalysisContext` or a raw dataset;
calling the experiment coerces to the shared context so a battery of
experiments reuses one set of memoized derived views.  The benchmark
harness times ``run`` and prints the rows; ``EXPERIMENTS.md`` is the
curated record of one full-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.context import AnalysisContext, AnalysisSource

__all__ = ["Row", "ExperimentResult", "Experiment"]


@dataclass(frozen=True)
class Row:
    """One comparison row of an experiment."""

    label: str
    paper: str | None
    measured: str

    def render(self) -> str:
        """One aligned ``label paper= measured=`` line."""
        paper = self.paper if self.paper is not None else "-"
        return f"{self.label:<42s} paper={paper:<16s} measured={self.measured}"


@dataclass
class ExperimentResult:
    """Everything an experiment reports."""

    experiment_id: str
    rows: list[Row] = field(default_factory=list)
    notes: str = ""

    def add(self, label: str, paper, measured) -> None:
        """Append a comparison row (``paper=None`` renders as ``-``)."""
        self.rows.append(
            Row(
                label=label,
                paper=None if paper is None else str(paper),
                measured=str(measured),
            )
        )

    def render(self) -> str:
        """The experiment's full plain-text block."""
        lines = [f"== {self.experiment_id} =="]
        lines.extend(row.render() for row in self.rows)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A reproducible table/figure of the paper."""

    id: str
    title: str
    section: str
    run: Callable[[AnalysisSource], ExperimentResult]

    def __call__(self, source: AnalysisSource) -> ExperimentResult:
        return self.run(AnalysisContext.of(source))
