"""Table V: country-level DDoS target statistics."""

from __future__ import annotations

from ..core.context import AnalysisContext, AnalysisSource
from ..core.targets import country_breakdown, top_target_countries
from .base import Experiment, ExperimentResult

#: Table V: family -> (n countries, top-5 [(cc, attacks)]).
PAPER_TABLE5 = {
    "aldibot": (14, [("US", 32), ("FR", 11), ("ES", 8), ("VE", 8), ("DE", 4)]),
    "blackenergy": (20, [("NL", 949), ("US", 820), ("SG", 729), ("RU", 262), ("DE", 219)]),
    "colddeath": (16, [("IN", 801), ("PK", 345), ("BW", 125), ("TH", 117), ("ID", 112)]),
    "darkshell": (13, [("CN", 1880), ("KR", 1004), ("US", 694), ("HK", 385), ("JP", 86)]),
    "ddoser": (19, [("MX", 452), ("VE", 191), ("UY", 83), ("CL", 66), ("US", 48)]),
    "dirtjumper": (71, [("US", 9674), ("RU", 8391), ("DE", 3750), ("UA", 3412), ("NL", 1626)]),
    "nitol": (12, [("CN", 778), ("US", 176), ("CA", 15), ("GB", 10), ("NL", 6)]),
    "optima": (12, [("RU", 171), ("DE", 155), ("US", 123), ("UA", 9), ("KG", 7)]),
    "pandora": (43, [("RU", 2115), ("DE", 155), ("US", 123), ("UA", 9), ("KG", 7)]),
    "yzf": (11, [("RU", 120), ("UA", 105), ("US", 65), ("DE", 39), ("NL", 19)]),
}

#: §IV-B1's global top-5 target countries.
PAPER_GLOBAL_TOP5 = [("US", 13738), ("RU", 11451), ("DE", 5048), ("UA", 4078), ("NL", 2816)]


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("table5_countries")
    for family, (paper_n, paper_top) in PAPER_TABLE5.items():
        if family not in ds.active_families or ctx.family_attacks(family).size == 0:
            continue
        breakdown = country_breakdown(ctx, family)
        result.add(f"{family}: # target countries", paper_n, breakdown.n_countries)
        result.add(
            f"{family}: top country",
            f"{paper_top[0][0]} ({paper_top[0][1]})",
            f"{breakdown.top[0][0]} ({breakdown.top[0][1]})" if breakdown.top else "n/a",
        )
        measured_codes = [cc for cc, _n in breakdown.top]
        paper_codes = [cc for cc, _n in paper_top]
        overlap = len(set(measured_codes) & set(paper_codes))
        result.add(f"{family}: top-5 overlap with paper", "5", overlap)
    top = top_target_countries(ctx)
    result.add(
        "global top-5",
        ", ".join(f"{cc}:{n}" for cc, n in PAPER_GLOBAL_TOP5),
        ", ".join(f"{cc}:{n}" for cc, n in top),
    )
    return result


EXPERIMENT = Experiment(
    id="table5_countries",
    title="Country-level DDoS target statistics",
    section="IV-B1 (Table V)",
    run=run,
)
