"""Fig 5: per-family interval CDFs (simultaneous attacks included)."""

from __future__ import annotations

import numpy as np

from ..core.context import AnalysisContext, AnalysisSource
from ..core.intervals import family_intervals
from .base import Experiment, ExperimentResult


def run(source: AnalysisSource) -> ExperimentResult:
    ctx = AnalysisContext.of(source)
    ds = ctx.dataset
    result = ExperimentResult("fig5_family_cdf")
    for family in ds.active_families:
        gaps = family_intervals(ctx, family, include_simultaneous=True)
        if gaps.size == 0:
            continue
        zero = float(np.mean(gaps == 0))
        sub60 = float(np.mean(gaps < 60.0))
        result.add(f"{family}: P(gap=0) / P(gap<60s)", None, f"{zero:.2f} / {sub60:.2f}")
    for family in ("aldibot", "optima"):
        if family not in ds.active_families:
            continue
        gaps = family_intervals(ctx, family, include_simultaneous=True)
        if gaps.size == 0:
            continue
        result.add(
            f"{family}: no intervals under 60 s",
            "true",
            str(bool(np.all(gaps >= 60.0))).lower(),
        )
    result.notes = "Aldibot and Optima space their attacks at least a minute apart (§III-B)"
    return result


EXPERIMENT = Experiment(
    id="fig5_family_cdf",
    title="Per-family CDF of attack intervals",
    section="III-B (Fig 5)",
    run=run,
)
