"""repro.obs: dependency-free observability for the pipeline.

Three pieces, all process-local and import-cycle-free (nothing in here
imports the rest of ``repro``):

* **metrics** — :class:`MetricsRegistry` with counters, gauges and
  fixed-bucket histograms, optionally labelled;
* **spans** — ``span(name)`` context-manager timers that accumulate a
  nested *stage tree* (wall + per-thread CPU time per stage);
* **manifests** — :class:`RunManifest`, the JSON record of one run:
  config hash, seed, dataset shape, stage tree, peak RSS, every metric
  (cache hit/miss counts included) and per-experiment timings.

The instrumented layers report to the default registry
(:func:`registry`); ``ddos-repro profile`` and the ``--metrics`` flag
surface it from the CLI.  The metric name catalogue lives in
``docs/OBSERVABILITY.md`` and is enforced by a test.

>>> import repro.obs as obs
>>> obs.reset()
>>> with obs.span("demo"):
...     obs.counter("demo.items").inc(3)
>>> obs.registry().counter("demo.items").value
3
>>> obs.registry().stage_tree().find("demo").n_calls
1
>>> obs.reset()
"""

from __future__ import annotations

from .manifest import RunManifest, peak_rss_bytes
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .registry import ObsRegistry, registry, reset
from .report import render_metrics_summary, render_stage_tree
from .spans import SpanNode, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsRegistry",
    "SpanNode",
    "SpanRecorder",
    "RunManifest",
    "DEFAULT_BUCKETS",
    "registry",
    "reset",
    "span",
    "counter",
    "gauge",
    "histogram",
    "peak_rss_bytes",
    "render_stage_tree",
    "render_metrics_summary",
]


def span(name: str, parent: SpanNode | None = None):
    """Open a stage span on the default registry.

    >>> import repro.obs as obs
    >>> obs.reset()
    >>> with obs.span("load"):
    ...     pass
    >>> obs.registry().stage_tree().find("load").n_calls
    1
    >>> obs.reset()
    """
    return registry().span(name, parent=parent)


def counter(name: str, **labels: str) -> Counter:
    """The default registry's counter for ``(name, labels)``.

    >>> import repro.obs as obs
    >>> obs.reset()
    >>> obs.counter("demo.count").inc()
    >>> obs.counter("demo.count").value
    1
    >>> obs.reset()
    """
    return registry().counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    """The default registry's gauge for ``(name, labels)``.

    >>> import repro.obs as obs
    >>> obs.gauge("demo.level").set(2.5)
    >>> obs.gauge("demo.level").value
    2.5
    >>> obs.reset()
    """
    return registry().gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] | None = None, **labels: str) -> Histogram:
    """The default registry's histogram for ``(name, labels)``.

    >>> import repro.obs as obs
    >>> obs.histogram("demo.seconds").observe(0.2)
    >>> obs.histogram("demo.seconds").count
    1
    >>> obs.reset()
    """
    return registry().histogram(name, buckets, **labels)
