"""ObsRegistry: one object holding a run's metrics *and* its stage tree.

The instrumented layers (``datagen``, ``io``, ``core.context``,
``stream``, ``experiments``) all talk to the process-local default
registry via :func:`repro.obs.registry`, so a CLI invocation, a test, or
an embedding application sees one coherent picture without threading a
handle through every call.  Code that wants isolation (tests, nested
profiling runs) instantiates its own :class:`ObsRegistry` — every
instrument and span method lives on the instance.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .spans import SpanNode, SpanRecorder

__all__ = ["ObsRegistry", "registry", "reset"]


class ObsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` that also records a stage tree.

    >>> from repro.obs import ObsRegistry
    >>> reg = ObsRegistry()
    >>> with reg.span("ingest"):
    ...     reg.counter("ingest.records").inc(10)
    >>> reg.stage_tree().find("ingest").n_calls
    1
    >>> reg.counter("ingest.records").value
    10
    """

    def __init__(self) -> None:
        super().__init__()
        self._spans = SpanRecorder()

    def span(self, name: str, parent: SpanNode | None = None):
        """Open a stage span (see :meth:`SpanRecorder.span`)."""
        return self._spans.span(name, parent=parent)

    def current_span(self) -> SpanNode | None:
        """The innermost open span on the calling thread."""
        return self._spans.current()

    def phases(self):
        """Sequential sibling spans (see :meth:`SpanRecorder.phases`)."""
        return self._spans.phases()

    def stage_tree(self) -> SpanNode:
        """Root of the accumulated stage tree."""
        return self._spans.tree()

    def reset(self) -> None:
        """Drop all instruments and the stage tree."""
        super().reset()
        self._spans.reset()


_DEFAULT = ObsRegistry()


def registry() -> ObsRegistry:
    """The process-local default registry all instrumentation reports to.

    >>> import repro.obs as obs
    >>> obs.registry() is obs.registry()
    True
    """
    return _DEFAULT


def reset() -> None:
    """Clear the default registry (metrics and stage tree).

    >>> import repro.obs as obs
    >>> obs.registry().counter("demo.count").inc()
    >>> obs.reset()
    >>> "demo.count" in obs.registry().names()
    False
    """
    _DEFAULT.reset()
