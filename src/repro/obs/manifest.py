"""RunManifest: the machine-readable record of one pipeline run.

A manifest captures everything needed to interpret — and re-run — a
pipeline invocation: the config hash and seed, the dataset shape, the
stage tree (per-stage wall/CPU time), peak RSS, every metric the run
emitted (cache hit/miss counts included) and the per-experiment wall
times.  ``ddos-repro --metrics PATH`` writes one after any subcommand,
``ddos-repro profile`` writes one next to the cache directory, and
:func:`repro.api.run_all` accepts ``manifest=PATH``.

The JSON schema is documented (and version-pinned) in
``docs/OBSERVABILITY.md``; ``schema_version`` bumps on incompatible
changes so downstream dashboards can reject manifests they don't
understand.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .spans import SpanNode

if TYPE_CHECKING:  # pragma: no cover - types only
    from .registry import ObsRegistry

__all__ = ["RunManifest", "peak_rss_bytes"]

#: Bump on incompatible manifest layout changes.
MANIFEST_SCHEMA_VERSION = 1


def peak_rss_bytes() -> int | None:
    """The process's peak resident set size in bytes (None if unknown).

    Uses ``resource.getrusage``; on Linux ``ru_maxrss`` is in KiB, on
    macOS in bytes.  Platforms without the ``resource`` module (Windows)
    return None rather than a guess.

    >>> from repro.obs import peak_rss_bytes
    >>> rss = peak_rss_bytes()
    >>> rss is None or rss > 0
    True
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


@dataclass
class RunManifest:
    """Everything observable about one run, ready to serialise.

    Build one from the live registry with :meth:`collect`:

    >>> import repro.obs as obs
    >>> reg = obs.ObsRegistry()
    >>> with reg.span("demo"):
    ...     reg.counter("ingest.records").inc(3)
    >>> m = obs.RunManifest.collect(reg, seed=7, scale=0.02)
    >>> m.seed, "demo" in m.stages.get("children", {})
    (7, True)
    >>> sorted(m.metrics) == ['ingest.records']
    True
    """

    schema_version: int = MANIFEST_SCHEMA_VERSION
    created_unix: float = 0.0
    argv: list[str] = field(default_factory=list)
    seed: int | None = None
    scale: float | None = None
    config_key: str | None = None
    dataset_shape: dict[str, int] = field(default_factory=dict)
    peak_rss_bytes: int | None = None
    stages: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    experiments: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def collect(
        cls,
        registry: "ObsRegistry",
        *,
        seed: int | None = None,
        scale: float | None = None,
        config_key: str | None = None,
        dataset: Any = None,
        argv: list[str] | None = None,
    ) -> "RunManifest":
        """Snapshot the registry (metrics + stage tree) into a manifest.

        ``dataset`` may be an :class:`~repro.core.dataset.AttackDataset`
        (or anything exposing the same shape attributes); its row counts
        become ``dataset_shape``.  Per-experiment timings are read from
        the ``experiments`` stage's children, as recorded by
        :func:`repro.experiments.registry.run_all`.
        """
        tree = registry.stage_tree()
        experiments = []
        exp_node = tree.find("experiments")
        if exp_node is not None:
            for child in sorted(exp_node.children.values(), key=lambda c: -c.wall_seconds):
                experiments.append(
                    {
                        "id": child.name,
                        "n_runs": child.n_calls,
                        "wall_seconds": child.wall_seconds,
                        "cpu_seconds": child.cpu_seconds,
                    }
                )
        return cls(
            created_unix=time.time(),
            argv=list(sys.argv if argv is None else argv),
            seed=seed,
            scale=scale,
            config_key=config_key,
            dataset_shape=_dataset_shape(dataset),
            peak_rss_bytes=peak_rss_bytes(),
            stages=tree.to_dict(),
            metrics=registry.snapshot(),
            experiments=experiments,
        )

    def to_dict(self) -> dict[str, Any]:
        """The manifest as a plain JSON-able dict."""
        return {
            "schema_version": self.schema_version,
            "created_unix": self.created_unix,
            "argv": self.argv,
            "seed": self.seed,
            "scale": self.scale,
            "config_key": self.config_key,
            "dataset_shape": self.dataset_shape,
            "peak_rss_bytes": self.peak_rss_bytes,
            "stages": self.stages,
            "metrics": self.metrics,
            "experiments": self.experiments,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The manifest serialised as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def stage_tree(self) -> SpanNode:
        """Rehydrate :attr:`stages` into :class:`SpanNode` form."""
        return _node_from_dict("run", self.stages)


def _dataset_shape(dataset: Any) -> dict[str, int]:
    if dataset is None:
        return {}
    shape: dict[str, int] = {}
    for label, attr in (
        ("n_attacks", "n_attacks"),
        ("n_bots", None),
        ("n_victims", None),
        ("n_botnets", None),
        ("n_families", None),
    ):
        try:
            if attr is not None:
                shape[label] = int(getattr(dataset, attr))
            elif label == "n_bots":
                shape[label] = int(dataset.bots.n_bots)
            elif label == "n_victims":
                shape[label] = int(dataset.victims.n_targets)
            elif label == "n_botnets":
                shape[label] = len(dataset.botnets)
            elif label == "n_families":
                shape[label] = len(dataset.families)
        except (AttributeError, TypeError):
            continue
    return shape


def _node_from_dict(name: str, data: dict[str, Any]) -> SpanNode:
    node = SpanNode(
        name=name,
        n_calls=int(data.get("n_calls", 0)),
        wall_seconds=float(data.get("wall_seconds", 0.0)),
        cpu_seconds=float(data.get("cpu_seconds", 0.0)),
    )
    for child_name, child_data in data.get("children", {}).items():
        node.children[child_name] = _node_from_dict(child_name, child_data)
    return node
