"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately dependency-free (no Prometheus client, no
OpenTelemetry): the pipeline's instrumentation must work in the same
minimal environment as the library itself.  Instruments are identified
by a **name** (dotted, unit-suffixed where applicable — the catalogue in
``docs/OBSERVABILITY.md`` is the authoritative list) plus an optional
set of string **labels**; asking for the same ``(name, labels)`` twice
returns the same instrument, so call sites never hold global state of
their own.

Hot-path cost: ``Counter.inc`` / ``Gauge.set`` / ``Histogram.observe``
are one uncontended lock acquisition plus an add — cheap enough for the
per-view cache-hit accounting in :class:`repro.core.context.AnalysisContext`
(the instrumentation-overhead budget is enforced by the benchmarks).
Call sites that need an instrument repeatedly should resolve it once and
keep the reference, as the context layer does.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket edges in seconds: 1 ms … ~2 min, roughly
#: geometric.  Observations above the last edge land in the +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """A monotonically increasing count.

    >>> from repro.obs import MetricsRegistry
    >>> c = MetricsRegistry().counter("ingest.records")
    >>> c.inc(); c.inc(4)
    >>> c.value
    5
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot: ``{"type": "counter", "value": ...}``."""
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that goes up and down (jobs in flight, lag seconds, …).

    >>> from repro.obs import MetricsRegistry
    >>> g = MetricsRegistry().gauge("experiments.jobs")
    >>> g.set(4)
    >>> g.value
    4.0
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the gauge."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot: ``{"type": "gauge", "value": ...}``."""
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Observations bucketed under fixed, pre-declared edges.

    Cumulative-style buckets are materialised only in :meth:`to_dict`;
    the hot path is one ``bisect`` plus two adds.

    >>> from repro.obs import MetricsRegistry
    >>> h = MetricsRegistry().histogram("stage.seconds", buckets=(0.1, 1.0))
    >>> for v in (0.05, 0.5, 5.0):
    ...     h.observe(v)
    >>> h.count, h.sum
    (3, 5.55)
    >>> h.bucket_counts           # per-bucket, last is the +Inf overflow
    [1, 1, 1]
    """

    __slots__ = ("_lock", "_edges", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must be sorted and distinct, got {buckets!r}")
        self._lock = threading.Lock()
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= edge`` lands in that bucket)."""
        value = float(value)
        slot = bisect_left(self._edges, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def edges(self) -> tuple[float, ...]:
        return self._edges

    @property
    def bucket_counts(self) -> list[int]:
        """Per-bucket counts; the trailing entry is the +Inf overflow."""
        return list(self._counts)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 before the first observation)."""
        return self._sum / self._count if self._count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot with edges, per-bucket counts, sum and count."""
        return {
            "type": "histogram",
            "edges": list(self._edges),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """The process-local instrument store.

    One registry normally exists per process (:func:`repro.obs.registry`);
    standalone instances are handy in tests.  Instruments are created on
    first use and shared after that; asking for an existing name with a
    different instrument type raises ``TypeError``.

    >>> from repro.obs import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("context.view.hit", view="durations").inc()
    >>> reg.counter("context.view.hit", view="durations").value
    1
    >>> sorted(reg.names())
    ['context.view.hit']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, _LabelKey], Any] = {}

    def _get(self, name: str, labels: dict[str, str], factory) -> Any:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = factory()
                    self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        inst = self._get(name, labels, Counter)
        if not isinstance(inst, Counter):
            raise TypeError(f"{name} is registered as {type(inst).__name__}, not Counter")
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        inst = self._get(name, labels, Gauge)
        if not isinstance(inst, Gauge):
            raise TypeError(f"{name} is registered as {type(inst).__name__}, not Gauge")
        return inst

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        """The histogram for ``(name, labels)``; ``buckets`` only applies
        on first creation (later calls reuse the existing edges)."""
        inst = self._get(
            name, labels, lambda: Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        if not isinstance(inst, Histogram):
            raise TypeError(f"{name} is registered as {type(inst).__name__}, not Histogram")
        return inst

    # -- introspection -----------------------------------------------------

    def names(self) -> set[str]:
        """The distinct metric names registered so far (labels folded)."""
        with self._lock:
            return {name for name, _labels in self._instruments}

    def items(self) -> Iterator[tuple[str, dict[str, str], Any]]:
        """Iterate ``(name, labels, instrument)`` over a point-in-time copy."""
        with self._lock:
            entries = list(self._instruments.items())
        for (name, label_key), inst in entries:
            yield name, dict(label_key), inst

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-able dump: ``{name: [{"labels": ..., **instrument}, ...]}``.

        Series of one name are ordered by their label sets, so the
        snapshot is deterministic for a deterministic run.
        """
        out: dict[str, list[dict[str, Any]]] = {}
        for name, labels, inst in sorted(
            self.items(), key=lambda item: (item[0], sorted(item[1].items()))
        ):
            out.setdefault(name, []).append({"labels": labels, **inst.to_dict()})
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._instruments.clear()
