"""Stage-tree timers: nested ``span(name)`` context managers.

A span measures one stage of the pipeline — wall time via
``time.perf_counter`` and CPU time via ``time.thread_time`` (per-thread,
so concurrently running spans never double-count each other's CPU).
Spans nest: opening a span inside another attaches it as a child, and
re-entering the same stage name merges into one node (``n_calls`` keeps
the multiplicity), so the recorder accumulates a stable *stage tree*
rather than a trace of individual invocations.

Nesting is tracked per thread.  A span opened on a worker thread with no
enclosing span attaches to the recorder's root — unless the caller
passes an explicit ``parent`` node, which is how
:func:`repro.experiments.registry.run_all` keeps per-experiment spans
under its ``experiments`` stage even when they run on pool threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["SpanNode", "SpanRecorder"]


@dataclass
class SpanNode:
    """One accumulated stage of the tree.

    >>> from repro.obs import SpanRecorder
    >>> rec = SpanRecorder()
    >>> with rec.span("outer"):
    ...     with rec.span("inner"):
    ...         pass
    >>> node = rec.tree().children["outer"]
    >>> node.n_calls, sorted(node.children)
    (1, ['inner'])
    """

    name: str
    n_calls: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    children: dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        """The named child node, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def find(self, *path: str) -> "SpanNode | None":
        """Descend ``path`` from this node; None when any hop is missing."""
        node: SpanNode | None = self
        for name in path:
            if node is None:
                return None
            node = node.children.get(name)
        return node

    def self_seconds(self) -> float:
        """Wall time not accounted for by this node's children."""
        return max(0.0, self.wall_seconds - sum(c.wall_seconds for c in self.children.values()))

    def to_dict(self) -> dict[str, Any]:
        """JSON-able stage subtree (children sorted by wall time, desc)."""
        out: dict[str, Any] = {
            "n_calls": self.n_calls,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.children:
            out["children"] = {
                child.name: child.to_dict()
                for child in sorted(
                    self.children.values(), key=lambda c: -c.wall_seconds
                )
            }
        return out


class SpanRecorder:
    """Accumulates spans into one stage tree per process.

    >>> rec = SpanRecorder()
    >>> with rec.span("generate"):
    ...     with rec.span("world"):
    ...         pass
    >>> rec.tree().find("generate", "world").n_calls
    1
    """

    def __init__(self) -> None:
        self._root = SpanNode("run")
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> SpanNode | None:
        """The innermost open span on this thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent: SpanNode | None = None) -> Iterator[SpanNode]:
        """Time a stage; nests under this thread's open span (or ``parent``).

        The yielded node is the merged stage node — handing it to another
        thread as ``parent`` stitches that thread's spans into this one's
        subtree.
        """
        stack = self._stack()
        if parent is None:
            parent = stack[-1] if stack else self._root
        with self._lock:
            node = parent.child(name)
        stack.append(node)
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        try:
            yield node
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.thread_time() - cpu0
            stack.pop()
            with self._lock:
                node.n_calls += 1
                node.wall_seconds += wall
                node.cpu_seconds += cpu

    @contextmanager
    def phases(self) -> Iterator[Any]:
        """Sequential sibling spans: each ``phase(name)`` closes the last.

        For straight-line pipelines (the dataset generator) where wrapping
        every block in its own ``with`` would reindent half the module:

        >>> rec = SpanRecorder()
        >>> with rec.span("generate"), rec.phases() as phase:
        ...     phase("world")
        ...     phase("rosters")
        >>> sorted(rec.tree().find("generate").children)
        ['rosters', 'world']
        """
        active: list[Any] = []

        def _close() -> None:
            if active:
                active.pop().__exit__(None, None, None)

        def phase(name: str) -> None:
            _close()
            cm = self.span(name)
            cm.__enter__()
            active.append(cm)

        try:
            yield phase
        finally:
            _close()

    def tree(self) -> SpanNode:
        """The root of the accumulated stage tree (name ``"run"``)."""
        return self._root

    def reset(self) -> None:
        """Drop the accumulated tree (open spans keep their nodes alive)."""
        with self._lock:
            self._root = SpanNode("run")
