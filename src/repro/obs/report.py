"""Plain-text rendering of a profiling run: stage tree + hot metrics.

``ddos-repro profile`` prints this report after running the full
battery; the same renderers work on a :class:`~repro.obs.RunManifest`
loaded back from JSON (``RunManifest.stage_tree()``), so a saved
manifest can be re-rendered later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .spans import SpanNode

if TYPE_CHECKING:  # pragma: no cover - types only
    from .registry import ObsRegistry

__all__ = ["render_stage_tree", "render_metrics_summary"]


def render_stage_tree(root: SpanNode, *, min_seconds: float = 0.0) -> str:
    """The stage tree as indented text, siblings sorted by wall time.

    ``min_seconds`` prunes stages (and their subtrees) below the
    threshold — useful when a warm run leaves hundreds of sub-millisecond
    view builds.

    >>> from repro.obs import ObsRegistry, render_stage_tree
    >>> reg = ObsRegistry()
    >>> with reg.span("generate"):
    ...     with reg.span("world"):
    ...         pass
    >>> print(render_stage_tree(reg.stage_tree()))  # doctest: +ELLIPSIS
    stage                                         wall      cpu  calls
    generate                                   ...s  ...s      1
      world                                    ...s  ...s      1
    """
    lines = [f"{'stage':<40s}  {'wall':>8s}  {'cpu':>7s}  {'calls':>5s}"]

    def walk(node: SpanNode, depth: int) -> None:
        label = ("  " * depth + node.name)[:40]
        lines.append(
            f"{label:<40s}  {node.wall_seconds:>7.3f}s  {node.cpu_seconds:>6.3f}s  {node.n_calls:>5d}"
        )
        for child in sorted(node.children.values(), key=lambda c: -c.wall_seconds):
            if child.wall_seconds >= min_seconds:
                walk(child, depth + 1)

    for top in sorted(root.children.values(), key=lambda c: -c.wall_seconds):
        if top.wall_seconds >= min_seconds:
            walk(top, 0)
    return "\n".join(lines)


def render_metrics_summary(registry: "ObsRegistry") -> str:
    """One line per metric series: counters, gauges, histogram means.

    >>> from repro.obs import ObsRegistry, render_metrics_summary
    >>> reg = ObsRegistry()
    >>> reg.counter("ingest.records").inc(42)
    >>> print(render_metrics_summary(reg))
    ingest.records                                       42
    """
    lines = []
    for name, labels, inst in sorted(
        registry.items(), key=lambda item: (item[0], sorted(item[1].items()))
    ):
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        data = inst.to_dict()
        if data["type"] == "histogram":
            mean = data["sum"] / data["count"] if data["count"] else 0.0
            value = f"n={data['count']} mean={mean * 1000:.2f}ms"
        elif data["type"] == "gauge":
            value = f"{data['value']:g}"
        else:
            value = f"{data['value']}"
        lines.append(f"{name + label_text:<45s}  {value:>9s}")
    return "\n".join(lines)
