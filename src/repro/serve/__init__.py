"""``repro.serve`` — the long-running multi-tenant analysis service.

A stdlib-only HTTP front on the :mod:`repro.api` facade: clients POST
batches of Table I rows, the service folds them into per-tenant
streaming datasets (single writer, bounded queue, 429 backpressure),
and readers query epoch-tagged immutable snapshots — metadata, the full
rendered experiment battery, or a single experiment — plus the process
metrics registry.  For a pinned epoch the served renders are
byte-identical to a local :func:`repro.api.run_all` over the same data.

Layering (no sockets below the transport):

* :mod:`~repro.serve.server` — ``ThreadingHTTPServer`` transport and the
  :class:`AnalysisServer` lifecycle handle;
* :mod:`~repro.serve.routes` — the ``/v1`` endpoint table, transport-free;
* :mod:`~repro.serve.tenants` — per-tenant stream + writer thread +
  epoch snapshot shelf;
* :mod:`~repro.serve.codec` — JSON bodies in the JSONL row schema;
* :mod:`~repro.serve.errors` — service errors and the exception→HTTP map.

Start one from the facade (``api.serve(port=0)``), the CLI
(``ddos-repro serve``), or directly:

>>> from repro.serve import AnalysisServer
>>> with AnalysisServer(port=0) as server:
...     server.url.startswith("http://")
True
"""

from __future__ import annotations

from .errors import (
    BackpressureError,
    ConflictError,
    MethodNotAllowedError,
    NotFoundError,
    ServeError,
)
from .routes import Response, Router
from .server import AnalysisServer
from .tenants import Tenant, TenantRegistry

__all__ = [
    "AnalysisServer",
    "BackpressureError",
    "ConflictError",
    "MethodNotAllowedError",
    "NotFoundError",
    "Response",
    "Router",
    "ServeError",
    "Tenant",
    "TenantRegistry",
]
