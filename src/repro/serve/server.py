"""The HTTP transport: stdlib ``ThreadingHTTPServer`` around the router.

No framework, no new dependency: ``http.server`` gives one thread per
connection (HTTP/1.1 keep-alive), the :class:`~repro.serve.routes.Router`
gives thread-safe dispatch, and the tenant layer serialises writes — so
concurrency here is just "hand the parsed request to the router".

Every request is timed under a ``serve.request`` span and lands in two
instruments: ``serve.requests{route,status}`` (counter) and
``serve.request_seconds{route}`` (histogram).  The obs registry is the
process-wide default one, so ``GET /v1/metrics`` scrapes the same
counters the rest of the pipeline reports to.

>>> from repro.serve import AnalysisServer
>>> with AnalysisServer(port=0) as server:
...     server.url.startswith("http://127.0.0.1:")
True
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import registry as _obs_registry
from .routes import Router

__all__ = ["AnalysisServer"]

#: Refuse request bodies beyond this size (64 MiB) before reading them.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from ``http.server`` callbacks to the router."""

    protocol_version = "HTTP/1.1"
    server_version = "ddos-repro-serve"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (metrics replace it)."""

    def _respond(self, method: str) -> None:
        reg = _obs_registry()
        started = time.perf_counter()
        with reg.span("serve.request"):
            body = b""
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                if length > MAX_BODY_BYTES:
                    self.send_error(413, explain="request body too large")
                    self.close_connection = True
                    return
                body = self.rfile.read(length) if length else b""
            response = self.server.router.handle(method, self.path, body)
            payload = response.body
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
        reg.counter(
            "serve.requests", route=response.route, status=str(response.status)
        ).inc()
        reg.histogram("serve.request_seconds", route=response.route).observe(
            time.perf_counter() - started
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        """Serve a GET through the router."""
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        """Serve a POST through the router."""
        self._respond("POST")

    def do_PUT(self) -> None:  # noqa: N802 (http.server naming)
        """Reject with the router's 405 (PUT is never allowed)."""
        self._respond("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 (http.server naming)
        """Reject with the router's 405 (DELETE is never allowed)."""
        self._respond("DELETE")


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the router for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: Router) -> None:
        super().__init__(address, _Handler)
        self.router = router


class AnalysisServer:
    """A running (or startable) analysis service over the facade.

    The object is both the handle :func:`repro.api.serve` returns and a
    context manager; ``with api.serve(port=0) as server`` yields a bound,
    listening service and tears it down on exit.  ``port=0`` asks the OS
    for a free port — read it back from :attr:`port` / :attr:`url`.

    >>> from repro.serve import AnalysisServer
    >>> server = AnalysisServer(port=0).start()
    >>> server.port > 0
    True
    >>> server.stop()
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 64,
        prewarm_jobs: int = 1,
        keep_epochs: int = 4,
        retry_after: float = 1.0,
        max_tenant_bytes: int | None = None,
    ) -> None:
        from .tenants import TenantRegistry

        self.host = host
        self._requested_port = port
        self.router = Router(
            TenantRegistry(
                queue_size=queue_size,
                prewarm_jobs=prewarm_jobs,
                keep_epochs=keep_epochs,
                retry_after=retry_after,
                max_tenant_bytes=max_tenant_bytes,
            )
        )
        self._httpd: _HTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisServer":
        """Bind, spawn the accept loop, return ``self`` (idempotent)."""
        if self._httpd is not None:
            return self
        self._httpd = _HTTPServer((self.host, self._requested_port), self.router)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"serve-accept-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the accept loop down and stop every tenant writer."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.router.close()

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """The service base URL, e.g. ``http://127.0.0.1:8321``."""
        return f"http://{self.host}:{self.port}"

    @property
    def tenants(self):
        """The tenant registry (handy for tests and flow control)."""
        return self.router.tenants
