"""Request/response codec: JSON bodies in the Table I row schema.

Ingest bodies reuse the exact row codec of the JSONL export/tailer path
(:func:`repro.io.jsonlio.record_from_json`), so a log line written by
``export_attacks_jsonl`` can be POSTed verbatim inside a ``records``
array — the service speaks the same schema as the files.  Anything
undecodable raises :class:`~repro.errors.FormatError` (HTTP 400) with
the offending row's position.
"""

from __future__ import annotations

import json

from ..errors import FormatError
from ..io.jsonlio import record_from_json, record_to_json
from ..monitor.schemas import DDoSAttackRecord

__all__ = ["decode_ingest", "encode_body", "decode_body", "record_to_json"]

#: Refuse bodies beyond this many records per request: one batch should
#: be one queue slot, not a whole dataset (split large loads client-side).
MAX_BATCH_RECORDS = 100_000


def encode_body(payload: dict) -> bytes:
    """Serialise a response payload as compact UTF-8 JSON."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_body(body: bytes) -> dict:
    """Parse a request body as a JSON object, or raise ``FormatError``."""
    if not body:
        raise FormatError("empty request body; expected a JSON object")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FormatError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_ingest(body: bytes) -> list[DDoSAttackRecord]:
    """Decode an ingest body: ``{"records": [<Table I row>, ...]}``.

    Returns the decoded records; the batch must be a non-empty list of
    row objects in the JSONL schema (a missing or malformed row raises
    :class:`~repro.errors.FormatError` carrying its index, so the client
    can pinpoint the bad record).
    """
    payload = decode_body(body)
    rows = payload.get("records")
    if not isinstance(rows, list) or not rows:
        raise FormatError('ingest body must carry a non-empty "records" array')
    if len(rows) > MAX_BATCH_RECORDS:
        raise FormatError(
            f"batch of {len(rows)} records exceeds the {MAX_BATCH_RECORDS} "
            "per-request cap; split the load into smaller batches"
        )
    records = []
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise FormatError(f"records[{index}] is not a row object")
        try:
            records.append(record_from_json(row))
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"records[{index}] is malformed: {exc}") from exc
    return records
