"""URL routing: the ``/v1`` endpoint table, parsed and dispatched.

The router is transport-free — it maps ``(method, path, query, body)``
to a :class:`Response` and never touches sockets, so the whole endpoint
surface is testable without binding a port.  Exceptions raised anywhere
below a handler are converted through
:func:`repro.serve.errors.http_status` into JSON error responses, which
is how a :class:`~repro.errors.FormatError` thrown by the row codec
becomes a 400 and a full ingest queue becomes a 429.

============================  ======================================
endpoint                      meaning
============================  ======================================
``POST /v1/ingest``           append a batch of Table I rows
``GET  /v1/snapshot``         epoch-tagged snapshot metadata
``GET  /v1/sketch``           bounded-memory approximate summary
``GET  /v1/experiments``      the full rendered battery for an epoch
``GET  /v1/experiments/{id}`` one experiment's rendered output
``GET  /v1/metrics``          the process obs-registry snapshot
``GET  /v1/healthz``          liveness + tenant directory
============================  ======================================

All tenant-scoped endpoints take ``?tenant=`` (default ``"default"``);
the read endpoints additionally take ``?epoch=`` to pin a retained
snapshot, and ingest takes ``?wait=0`` to return 202 on admission
instead of blocking for the fold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from .. import __version__ as _repro_version
from ..errors import FormatError
from ..obs import registry as _obs_registry
from .codec import decode_ingest, encode_body
from .errors import MethodNotAllowedError, NotFoundError, error_payload, http_status
from .tenants import TenantRegistry

__all__ = ["Response", "Router"]

_DEFAULT_TENANT = "default"


@dataclass
class Response:
    """One routed outcome: status code, JSON payload, extra headers.

    ``route`` is the stable label the request metrics are tagged with
    (``serve.requests{route=...}``) — the endpoint name, never the raw
    path, so tenant/experiment ids do not explode the label space.
    """

    status: int
    payload: dict
    route: str
    headers: dict = field(default_factory=dict)

    @property
    def body(self) -> bytes:
        """The encoded JSON body."""
        return encode_body(self.payload)


def _one(query: dict, key: str, default: str | None = None) -> str | None:
    values = query.get(key)
    return values[-1] if values else default


def _epoch_of(query: dict) -> int | None:
    raw = _one(query, "epoch")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise FormatError(f"epoch must be an integer, got {raw!r}") from None


class Router:
    """Dispatches parsed requests against a :class:`TenantRegistry`.

    >>> from repro.serve.routes import Router
    >>> router = Router()
    >>> router.handle("GET", "/v1/healthz", b"").status
    200
    >>> router.handle("GET", "/v1/nowhere", b"").status
    404
    >>> router.close()
    """

    def __init__(self, tenants: TenantRegistry | None = None) -> None:
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.started_at = time.time()

    def close(self) -> None:
        """Stop every tenant's writer thread."""
        self.tenants.close()

    # -- dispatch ----------------------------------------------------------

    def handle(self, method: str, target: str, body: bytes) -> Response:
        """Route one request; exceptions become JSON error responses."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            return self._dispatch(method, path, query, body)
        except BaseException as exc:
            status = http_status(exc)
            headers = {}
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                headers["Retry-After"] = f"{retry_after:g}"
            return Response(
                status=status,
                payload=error_payload(exc),
                route=self._route_label(path),
                headers=headers,
            )

    def _dispatch(self, method: str, path: str, query: dict, body: bytes) -> Response:
        if path == "/v1/ingest":
            self._require(method, "POST", path)
            return self._ingest(query, body)
        if path == "/v1/snapshot":
            self._require(method, "GET", path)
            return self._snapshot(query)
        if path == "/v1/sketch":
            self._require(method, "GET", path)
            return self._sketch(query)
        if path == "/v1/experiments":
            self._require(method, "GET", path)
            return self._experiments(query)
        if path.startswith("/v1/experiments/"):
            self._require(method, "GET", path)
            return self._experiment(path[len("/v1/experiments/"):], query)
        if path == "/v1/metrics":
            self._require(method, "GET", path)
            return self._metrics()
        if path == "/v1/healthz":
            self._require(method, "GET", path)
            return self._healthz()
        raise NotFoundError(f"no route for {path!r} (the API lives under /v1)")

    @staticmethod
    def _require(method: str, allowed: str, path: str) -> None:
        if method != allowed:
            raise MethodNotAllowedError(f"{path} only accepts {allowed}")

    @staticmethod
    def _route_label(path: str) -> str:
        if path == "/v1/ingest":
            return "ingest"
        if path == "/v1/snapshot":
            return "snapshot"
        if path == "/v1/sketch":
            return "sketch"
        if path == "/v1/experiments":
            return "experiments"
        if path.startswith("/v1/experiments/"):
            return "experiment"
        if path == "/v1/metrics":
            return "metrics"
        if path == "/v1/healthz":
            return "healthz"
        return "unknown"

    # -- handlers ----------------------------------------------------------

    def _ingest(self, query: dict, body: bytes) -> Response:
        tenant_name = _one(query, "tenant", _DEFAULT_TENANT)
        wait = _one(query, "wait", "1") not in ("0", "false", "no")
        records = decode_ingest(body)
        tenant = self.tenants.get_or_create(tenant_name)
        result = tenant.ingest(records, wait=wait)
        return Response(
            status=200 if wait else 202, payload=result, route="ingest"
        )

    def _snapshot(self, query: dict) -> Response:
        with _obs_registry().span("serve.snapshot"):
            tenant = self.tenants.get(_one(query, "tenant", _DEFAULT_TENANT))
            epoch = _epoch_of(query)
            if epoch is None:
                payload = tenant.snapshot_info()
            else:
                pinned, ctx = tenant.context_at(epoch)
                ds = ctx.dataset
                payload = tenant.snapshot_info()
                payload.update(
                    epoch=pinned,
                    n_attacks=int(ds.n_attacks),
                    n_families=len(ds.active_families),
                    families=list(ds.active_families),
                    window={
                        "start": float(ds.window.start),
                        "end": float(ds.window.end),
                        "n_days": int(ds.window.n_days),
                    },
                )
        return Response(status=200, payload=payload, route="snapshot")

    def _sketch(self, query: dict) -> Response:
        with _obs_registry().span("serve.sketch"):
            tenant = self.tenants.get(_one(query, "tenant", _DEFAULT_TENANT))
            epoch, sketch = tenant.sketch_at(_epoch_of(query))
            payload = {
                "tenant": tenant.name,
                "epoch": epoch,
                "n_records": sketch.n_records,
                "estimate": sketch.estimate(),
                "contract": sketch.contract(),
                "sketch_bytes": sketch.memory_bytes(),
                "resident_bytes": tenant.resident_bytes,
            }
        return Response(status=200, payload=payload, route="sketch")

    def _experiments(self, query: dict) -> Response:
        with _obs_registry().span("serve.experiments"):
            tenant = self.tenants.get(_one(query, "tenant", _DEFAULT_TENANT))
            epoch, rendered = tenant.experiments(_epoch_of(query))
        return Response(
            status=200,
            payload={
                "tenant": tenant.name,
                "epoch": epoch,
                "experiments": [
                    {"id": exp_id, "render": text} for exp_id, text in rendered
                ],
            },
            route="experiments",
        )

    def _experiment(self, exp_id: str, query: dict) -> Response:
        with _obs_registry().span("serve.experiments"):
            tenant = self.tenants.get(_one(query, "tenant", _DEFAULT_TENANT))
            epoch, rendered = tenant.experiments(_epoch_of(query))
            for candidate, text in rendered:
                if candidate == exp_id:
                    payload = {
                        "tenant": tenant.name,
                        "epoch": epoch,
                        "id": exp_id,
                        "render": text,
                    }
                    break
            else:
                raise NotFoundError(
                    f"unknown experiment {exp_id!r} "
                    f"(known: {[i for i, _ in rendered]})"
                )
        return Response(status=200, payload=payload, route="experiment")

    def _metrics(self) -> Response:
        return Response(
            status=200, payload=_obs_registry().snapshot(), route="metrics"
        )

    def _healthz(self) -> Response:
        return Response(
            status=200,
            payload={
                "status": "ok",
                "version": _repro_version,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "tenants": self.tenants.names(),
            },
            route="healthz",
        )
