"""Per-tenant streaming state: bounded ingest, epoch snapshots, renders.

Each :class:`Tenant` owns one :class:`~repro.stream.StreamingDataset`
and a single **writer thread** — the only thread that ever mutates the
stream.  Requests enqueue batches onto a bounded queue (a full queue is
backpressure: :class:`~repro.serve.errors.BackpressureError`, HTTP 429);
the writer drains them in order, folds each batch, and *publishes* the
new epoch's immutable :class:`~repro.core.context.AnalysisContext`
snapshot.  Readers never touch the stream itself — they pick up a
published context (the last ``keep_epochs`` are retained so an epoch a
client is paging through survives a few more appends) and run against
it, which is exactly the isolation contract the streaming layer already
guarantees: a snapshot's views are immutable once materialised, so a
reader mid-battery is unaffected by concurrent appends.

Prewarm-on-ingest: the writer builds the snapshot's views *before*
publishing (``StreamingDataset.context(prewarm_jobs=...)`` — the O(batch)
carry plus an eager rebuild of the invalidated scans), so by the time a
reader can see an epoch, its expensive views are already warm and a
battery render is cheap.  Rendered experiment output is additionally
cached per epoch, shared by every reader of that epoch.
"""

from __future__ import annotations

import queue
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future

from ..core.context import AnalysisContext
from ..errors import FormatError
from ..obs import registry as _obs_registry
from .errors import BackpressureError, ConflictError, NotFoundError

__all__ = ["Tenant", "TenantRegistry"]

_STOP = object()

_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class Tenant:
    """One tenant's stream, writer thread, and epoch snapshot shelf.

    Not constructed directly in normal use — ask the server's
    :class:`TenantRegistry` (`get_or_create`).  All methods are safe to
    call from any request thread.

    >>> from repro.serve.tenants import Tenant
    >>> t = Tenant("demo", queue_size=4)
    >>> t.snapshot_info()["epoch"]
    0
    >>> t.close()
    """

    def __init__(
        self,
        name: str,
        *,
        queue_size: int = 64,
        prewarm_jobs: int = 1,
        keep_epochs: int = 4,
        retry_after: float = 1.0,
        max_tenant_bytes: int | None = None,
    ) -> None:
        if not _TENANT_NAME.match(name):
            raise FormatError(
                f"bad tenant name {name!r}: expected 1-64 chars of "
                "[A-Za-z0-9_.-], starting alphanumeric"
            )
        from ..stream import StreamingDataset  # late: keeps import cycle-free

        self.name = name
        self.created_at = time.time()
        self._prewarm_jobs = prewarm_jobs
        self._keep_epochs = max(1, keep_epochs)
        self._retry_after = retry_after
        self._max_tenant_bytes = max_tenant_bytes
        self._stream = StreamingDataset(sketches=True)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._running = threading.Event()
        self._running.set()
        self._lock = threading.Lock()
        self._epochs: "OrderedDict[int, AnalysisContext]" = OrderedDict()
        self._sketches: "OrderedDict[int, object]" = OrderedDict()
        self._render_lock = threading.Lock()
        self._renders: dict[int, list[tuple[str, str]]] = {}
        self._writer = threading.Thread(
            target=self._drain, name=f"serve-writer-{name}", daemon=True
        )
        self._writer.start()

    # -- the write side ----------------------------------------------------

    def ingest(self, records, *, wait: bool = True, timeout: float = 60.0) -> dict:
        """Enqueue one batch; with ``wait`` return the applied epoch.

        The queue is bounded: a full queue raises
        :class:`~repro.serve.errors.BackpressureError` (HTTP 429 with
        ``Retry-After``) *without* blocking the request thread.  With
        ``wait`` (the default) the call returns after the writer has
        folded the batch and published the snapshot —
        ``{"accepted": n, "epoch": e, "n_attacks": total}`` — so the
        client can immediately query the epoch it just created; a
        validation failure inside the fold (e.g. a record that ends
        before it starts) re-raises here.  ``wait=False`` returns
        ``{"queued": True, ...}`` as soon as the batch is admitted.
        """
        batch = list(records)
        if (
            self._max_tenant_bytes is not None
            and self._stream.resident_bytes() >= self._max_tenant_bytes
        ):
            _obs_registry().counter("serve.ingest.rejected").inc()
            raise BackpressureError(
                f"tenant {self.name!r} is at its memory ceiling "
                f"({self._stream.resident_bytes()} of {self._max_tenant_bytes} "
                "resident bytes); query /v1/sketch for the bounded-memory "
                "summary, or retry after eviction",
                retry_after=self._retry_after,
            )
        future: Future = Future()
        try:
            self._queue.put_nowait((batch, future))
        except queue.Full:
            _obs_registry().counter("serve.ingest.rejected").inc()
            raise BackpressureError(
                f"tenant {self.name!r} ingest queue is full "
                f"({self._queue.maxsize} pending batches); retry later",
                retry_after=self._retry_after,
            ) from None
        self._gauge_depth()
        if not wait:
            return {
                "tenant": self.name,
                "queued": True,
                "queue_depth": self._queue.qsize(),
            }
        return future.result(timeout=timeout)

    def _drain(self) -> None:
        """Writer loop: fold batches in order, publish epoch snapshots."""
        reg = _obs_registry()
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._running.wait()
            batch, future = item
            try:
                with reg.span("serve.ingest"):
                    n = self._stream.append_batch(batch)
                    ctx = self._stream.context(
                        prewarm_jobs=self._prewarm_jobs if self._prewarm_jobs else None
                    )
                epoch = self._stream.epoch
                if n:
                    self._publish(epoch, ctx)
                    reg.counter("serve.ingest.records").inc(n)
                    reg.gauge("serve.tenant_bytes", tenant=self.name).set(
                        self._stream.resident_bytes()
                    )
                result = {
                    "tenant": self.name,
                    "accepted": n,
                    "epoch": epoch,
                    "n_attacks": int(ctx.dataset.n_attacks),
                }
                future.set_result(result)
            except BaseException as exc:  # surfaces on the waiting request
                future.set_exception(exc)
            finally:
                self._gauge_depth()

    def _publish(self, epoch: int, ctx: AnalysisContext) -> None:
        sketch = self._stream.sketch_snapshot()
        with self._lock:
            self._epochs[epoch] = ctx
            self._sketches[epoch] = sketch
            while len(self._epochs) > self._keep_epochs:
                evicted, _ = self._epochs.popitem(last=False)
                self._sketches.pop(evicted, None)
                self._renders.pop(evicted, None)

    def _gauge_depth(self) -> None:
        _obs_registry().gauge("serve.queue_depth", tenant=self.name).set(
            self._queue.qsize()
        )

    # -- flow control ------------------------------------------------------

    def pause(self) -> None:
        """Stop the writer from draining (admission continues until full).

        Maintenance valve: paused, the bounded queue fills and further
        ingests surface as 429 backpressure while readers keep serving
        the published epochs.
        """
        self._running.clear()

    def resume(self) -> None:
        """Let a paused writer drain again."""
        self._running.set()

    @property
    def queue_depth(self) -> int:
        """Batches admitted but not yet folded."""
        return self._queue.qsize()

    @property
    def epoch(self) -> int:
        """The latest published epoch (0 before any data)."""
        with self._lock:
            return next(reversed(self._epochs)) if self._epochs else 0

    # -- the read side -----------------------------------------------------

    def context_at(self, epoch: int | None = None) -> tuple[int, AnalysisContext]:
        """A published epoch's immutable context (latest when ``None``).

        Raises :class:`~repro.serve.errors.ConflictError` on a tenant
        with no data yet, and
        :class:`~repro.serve.errors.NotFoundError` for an epoch that was
        never published or has been evicted from the shelf.
        """
        with self._lock:
            if not self._epochs:
                raise ConflictError(
                    f"tenant {self.name!r} has no data yet; POST /v1/ingest first"
                )
            if epoch is None:
                epoch = next(reversed(self._epochs))
            ctx = self._epochs.get(epoch)
        if ctx is None:
            raise NotFoundError(
                f"epoch {epoch} of tenant {self.name!r} is not on the "
                f"snapshot shelf (retained: {self.retained_epochs()})"
            )
        return epoch, ctx

    def sketch_at(self, epoch: int | None = None) -> tuple[int, object]:
        """A published epoch's frozen sketch summary (latest when ``None``).

        The sketch shelf is published in lockstep with the context shelf
        (same epochs, same eviction), so any epoch :meth:`context_at`
        can serve, this can too.  Raises the same 409/404 errors.
        """
        with self._lock:
            if not self._sketches:
                raise ConflictError(
                    f"tenant {self.name!r} has no data yet; POST /v1/ingest first"
                )
            if epoch is None:
                epoch = next(reversed(self._sketches))
            sketch = self._sketches.get(epoch)
        if sketch is None:
            raise NotFoundError(
                f"epoch {epoch} of tenant {self.name!r} is not on the "
                f"snapshot shelf (retained: {self.retained_epochs()})"
            )
        return epoch, sketch

    @property
    def resident_bytes(self) -> int:
        """The stream's resident buffer bytes (the ceiling's measure)."""
        return self._stream.resident_bytes()

    def retained_epochs(self) -> list[int]:
        """The epochs currently on the shelf, oldest first."""
        with self._lock:
            return list(self._epochs)

    def snapshot_info(self) -> dict:
        """Epoch-tagged snapshot metadata (the ``/v1/snapshot`` payload)."""
        with self._lock:
            epoch = next(reversed(self._epochs)) if self._epochs else 0
            ctx = self._epochs.get(epoch)
        info = {
            "tenant": self.name,
            "epoch": epoch,
            "n_attacks": 0,
            "n_families": 0,
            "families": [],
            "window": None,
            "retained_epochs": self.retained_epochs(),
            "queue_depth": self.queue_depth,
            "paused": not self._running.is_set(),
        }
        if ctx is not None:
            ds = ctx.dataset
            info.update(
                n_attacks=int(ds.n_attacks),
                n_families=len(ds.active_families),
                families=list(ds.active_families),
                window={
                    "start": float(ds.window.start),
                    "end": float(ds.window.end),
                    "n_days": int(ds.window.n_days),
                },
            )
        return info

    def experiments(self, epoch: int | None = None) -> tuple[int, list[tuple[str, str]]]:
        """The battery's rendered output for one epoch, from the cache.

        First reader of an epoch pays the render (against the already
        prewarmed context); everyone after is a dict lookup.  The
        rendered strings are exactly ``result.render()`` of a local
        :func:`repro.api.run_all` over the same snapshot — the parity
        the service tests pin byte-for-byte.
        """
        epoch, ctx = self.context_at(epoch)
        with self._render_lock:
            cached = self._renders.get(epoch)
            if cached is None:
                from ..experiments.registry import run_all

                cached = [(r.experiment_id, r.render()) for r in run_all(ctx, jobs=1)]
                with self._lock:
                    if epoch in self._epochs:  # do not cache for evicted epochs
                        self._renders[epoch] = cached
        return epoch, cached

    def close(self) -> None:
        """Stop the writer thread (pending admitted batches still fold)."""
        self._running.set()
        self._queue.put(_STOP)
        self._writer.join(timeout=10.0)


class TenantRegistry:
    """The server's tenant directory; creates tenants on first ingest.

    >>> from repro.serve.tenants import TenantRegistry
    >>> reg = TenantRegistry(queue_size=4)
    >>> reg.get_or_create("a") is reg.get("a")
    True
    >>> reg.names()
    ['a']
    >>> reg.close()
    """

    def __init__(
        self,
        *,
        queue_size: int = 64,
        prewarm_jobs: int = 1,
        keep_epochs: int = 4,
        retry_after: float = 1.0,
        max_tenant_bytes: int | None = None,
    ) -> None:
        self._config = dict(
            queue_size=queue_size,
            prewarm_jobs=prewarm_jobs,
            keep_epochs=keep_epochs,
            retry_after=retry_after,
            max_tenant_bytes=max_tenant_bytes,
        )
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}

    def get(self, name: str) -> Tenant:
        """The named tenant, or 404 if it never ingested anything."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise NotFoundError(
                f"unknown tenant {name!r} (known: {self.names() or 'none yet'})"
            )
        return tenant

    def get_or_create(self, name: str) -> Tenant:
        """The named tenant, created with the server's limits on first use."""
        tenant = self._tenants.get(name)
        if tenant is not None:
            return tenant
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                tenant = Tenant(name, **self._config)
                self._tenants[name] = tenant
                _obs_registry().gauge("serve.tenants").set(len(self._tenants))
        return tenant

    def names(self) -> list[str]:
        """Tenant names, sorted."""
        return sorted(self._tenants)

    def close(self) -> None:
        """Stop every tenant's writer thread."""
        for tenant in list(self._tenants.values()):
            tenant.close()
