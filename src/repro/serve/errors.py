"""Service-side errors and the one mapping from exceptions to HTTP codes.

The service does not grow a parallel error vocabulary: handlers raise the
library's own taxonomy (:mod:`repro.errors`) plus the three service-only
conditions below, and :func:`http_status` / :func:`error_payload` turn
any of them into a response.  Because the mapping dispatches on the
:class:`~repro.errors.ReproError` hierarchy, an error raised five layers
down in ``repro.io`` or ``repro.stream`` surfaces with the right status
code without the handler knowing it exists.

==============================================  ======
exception                                       status
==============================================  ======
:class:`~repro.errors.FormatError`              400
:class:`~repro.errors.IngestError`              422
:class:`~repro.errors.ShardLayoutError`         409
:class:`ConflictError`                          409
:class:`NotFoundError`                          404
:class:`MethodNotAllowedError`                  405
:class:`BackpressureError`                      429 (+ ``Retry-After``)
other :class:`~repro.errors.ReproError`         500
anything else                                   500
==============================================  ======
"""

from __future__ import annotations

from ..errors import FormatError, IngestError, ReproError, ShardLayoutError

__all__ = [
    "ServeError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ConflictError",
    "BackpressureError",
    "http_status",
    "error_payload",
]


class ServeError(ReproError):
    """Base of the service-only error conditions (maps to HTTP 500)."""

    status = 500


class NotFoundError(ServeError):
    """Unknown route, tenant, experiment id or evicted epoch (404)."""

    status = 404


class MethodNotAllowedError(ServeError):
    """The path exists but not for this HTTP method (405)."""

    status = 405


class ConflictError(ServeError):
    """The request is well-formed but the tenant's state refuses it (409).

    E.g. querying experiments on a tenant that has not ingested anything
    yet: there is no epoch snapshot to serve.
    """

    status = 409


class BackpressureError(ServeError):
    """The tenant's bounded ingest queue is full (429 + ``Retry-After``).

    ``retry_after`` is the seconds the client should wait before
    retrying; the server sends it as the ``Retry-After`` header.
    """

    status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def http_status(exc: BaseException) -> int:
    """The HTTP status code for an exception (see the module table)."""
    if isinstance(exc, ServeError):
        return exc.status
    if isinstance(exc, IngestError):
        return 422
    if isinstance(exc, ShardLayoutError):
        return 409
    if isinstance(exc, FormatError):
        return 400
    return 500


def error_payload(exc: BaseException) -> dict:
    """The JSON error body: ``{"error": <class>, "detail": <message>}``."""
    return {"error": type(exc).__name__, "detail": str(exc)}
