"""The unified error taxonomy: every failure the library raises on purpose.

All deliberate errors derive from :class:`ReproError`, so embedding
applications (and :mod:`repro.serve`, which maps these classes onto HTTP
status codes) can catch one base instead of guessing which ``ValueError``
came from where.  Each subclass also keeps its historical builtin base —
``FormatError`` *is a* ``ValueError`` — so pre-taxonomy call sites that
catch builtins keep working unchanged.

The hierarchy::

    ReproError
    ├── FormatError        input that cannot be understood (bad file
    │   │                  extension, undecodable payload, bad archive)
    │   └── ColstoreError  (repro.io.colstore: invalid .npz archive)
    ├── ShardLayoutError   an operation conflicts with a sharded store's
    │                      fixed manifest layout
    └── IngestError        a malformed record (or record stream) on the
                           ingest path, carrying the record's position

:mod:`repro.serve` adds service-side subclasses (not-found, backpressure)
in :mod:`repro.serve.errors` and maps the whole family to status codes.
"""

from __future__ import annotations

__all__ = ["ReproError", "FormatError", "ShardLayoutError", "IngestError"]


class ReproError(Exception):
    """Base class of every error the library raises deliberately.

    >>> from repro import api
    >>> try:
    ...     api.load("attacks.xyz")
    ... except api.ReproError as exc:
    ...     print(type(exc).__name__)
    FormatError
    """


class FormatError(ReproError, ValueError):
    """Input whose format cannot be understood or inferred.

    Raised by :func:`repro.api.load` for unrecognised file extensions, by
    :func:`repro.api.open` / :func:`repro.api.context` for source objects
    they cannot dispatch on, and by the serve codec for undecodable
    request payloads.  Subclasses ``ValueError`` for compatibility.

    >>> from repro import api
    >>> api.load("attacks.xyz")
    Traceback (most recent call last):
    repro.errors.FormatError: cannot infer format of attacks.xyz: expected .jsonl, .csv, .npz or .pkl.gz
    """


class ShardLayoutError(ReproError, ValueError):
    """An operation conflicts with a sharded store's fixed layout.

    A sharded store's time partition is pinned by its manifest; asking
    :func:`repro.api.load` to re-partition one in place raises this
    (re-partition explicitly via ``ddos-repro convert --shards``).

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)
    >>> from repro.io.colstore import save_sharded_npz
    >>> import tempfile, os
    >>> store = save_sharded_npz(ds, os.path.join(tempfile.mkdtemp(), "store"), shards=2)
    >>> api.load(store, shards=4)
    Traceback (most recent call last):
    repro.errors.ShardLayoutError: ...already a sharded store...
    """


class IngestError(ReproError, ValueError):
    """A malformed record (or record stream) was handed to the ingest path.

    ``index`` is the position of the offending record in the input
    iterable (None when the whole stream is at fault, e.g. empty input).

    >>> from repro import api
    >>> api.ingest([])
    Traceback (most recent call last):
    repro.errors.IngestError: no records to ingest
    """

    def __init__(self, message: str, index: int | None = None) -> None:
        super().__init__(message if index is None else f"record #{index}: {message}")
        self.index = index
