"""Command-line interface: ``ddos-repro``.

Subcommands::

    ddos-repro generate  --scale 0.02 --seed 7 --out data/   # export schemas
    ddos-repro convert   attacks.jsonl attacks.npz           # re-store a dataset
    ddos-repro report    --scale 0.02                        # headline + tables
    ddos-repro experiments [--jobs 4] [--only table4_prediction]
    ddos-repro predict   --family pandora                    # ARIMA forecast
    ddos-repro defense   --train-fraction 0.5                # policy backtests
    ddos-repro watch     --path attacks.jsonl                # live report
    ddos-repro shard     info data/store                     # manifest summary
    ddos-repro serve     --port 8321                         # HTTP analysis service
    ddos-repro profile                                       # full battery, timed

All subcommands share ``--scale``, ``--seed`` and ``--cache-dir``; the
dataset is generated once per (scale, seed) and cached on disk (the
cache directory falls back to ``$REPRO_CACHE_DIR``, then
``.repro-cache``).  The ``experiments`` battery additionally snapshots
the derived analysis views, so a repeat invocation skips the heavy
scans, and ``--jobs N`` fans the experiments out over a thread pool
without changing the output.

Every subcommand accepts ``--metrics PATH``: after the command runs,
the observability registry (stage spans, counters, histograms — see
``docs/OBSERVABILITY.md``) is serialised as a :class:`RunManifest`
JSON to that path.  ``profile`` goes further: it exercises the whole
pipeline — generation, ingest round-trip, view builds, a cold and a
warm experiment battery — and prints the sorted stage tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import report
from .core.prediction import predict_family_dispersion
from .datagen.config import DatasetConfig
from .experiments.registry import ALL_EXPERIMENTS, get_experiment, run_all
from .io.cache import (
    config_key,
    load_or_generate,
    load_or_generate_context,
    resolve_cache_dir,
    save_context_views,
)
from .io.csvio import export_attacks_csv, export_botlist_csv, export_botnetlist_csv
from .obs import RunManifest, registry as obs_registry
from .obs.report import render_metrics_summary, render_stage_tree

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for options that must be >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _duration_seconds(text: str) -> float:
    """argparse type for durations: ``30d``, ``12h``, ``45m`` or plain seconds."""
    units = {"d": 86400.0, "h": 3600.0, "m": 60.0, "s": 1.0}
    raw = text.strip().lower()
    mult = units.get(raw[-1:]) or 1.0
    number = raw[:-1] if raw[-1:] in units else raw
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a duration like '30d', '12h', '45m' or seconds, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"duration must be positive, got {text!r}")
    return value * mult


def _add_command(sub, name: str, *, help: str, description: str, epilog: str):
    """Register a subcommand with the audit-mandated help fields.

    Every subcommand carries a one-paragraph ``description`` and an
    ``epilog`` showing a worked invocation; the raw formatter keeps the
    example's indentation intact in ``--help`` output.
    """
    return sub.add_parser(
        name,
        help=help,
        description=description,
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``ddos-repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ddos-repro",
        description=(
            "Botnet DDoS characterization (DSN 2015 reproduction). Generates a "
            "scaled synthetic attack/botlist dataset, caches it on disk, and "
            "reproduces the paper's tables and figures against it."
        ),
        epilog="example:\n  ddos-repro --scale 0.02 report",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--scale", type=float, default=0.02, help="dataset scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a RunManifest JSON (stage timings, counters, cache hits) here after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = _add_command(
        sub,
        "generate",
        help="generate the dataset and export the schemas",
        description=(
            "Generate (or load from cache) the synthetic dataset for this "
            "scale/seed and export the paper's three schemas — DDoSattack, "
            "Botlist and Botnetlist — as CSV files. With --figures, the "
            "per-figure data series are exported alongside them."
        ),
        epilog="example:\n  ddos-repro --scale 0.02 generate --out data/ --figures",
    )
    gen.add_argument("--out", default="data", help="output directory for CSVs")
    gen.add_argument(
        "--botlist-limit", type=int, default=None, help="cap botlist rows (full list is large)"
    )
    gen.add_argument(
        "--figures", action="store_true",
        help="also export the per-figure data series as CSVs",
    )
    gen.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes for generation on a cache miss "
             "(default: cpu count capped at 8; output is identical for any value)",
    )

    conv = _add_command(
        sub,
        "convert",
        help="convert a dataset file between storage formats",
        description=(
            "Load a dataset file in any supported format (.jsonl, .csv, .npz "
            "or .pkl.gz, or a sharded store directory) and rewrite it in the "
            "format implied by the output extension. Converting to .npz "
            "produces the memory-mapped columnar store — the fastest format "
            "to load cold (see docs/PERFORMANCE.md). With --shards or "
            "--shard-by the output is instead a sharded store directory: the "
            "attack table is partitioned into per-time-window .npz shards "
            "under one manifest, ready for map-reduce analysis."
        ),
        epilog=(
            "example:\n  ddos-repro convert attacks.jsonl attacks.npz\n"
            "  ddos-repro convert attacks.npz store/ --shard-by 30d"
        ),
    )
    conv.add_argument("src", help="input dataset file (.jsonl, .csv, .npz or .pkl.gz)")
    conv.add_argument("dst", help="output file; the extension picks the format")
    conv_shard = conv.add_mutually_exclusive_group()
    conv_shard.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="write a sharded store with N equal time windows instead of one file",
    )
    conv_shard.add_argument(
        "--shard-by", type=_duration_seconds, default=None, metavar="DURATION",
        help="write a sharded store cut every DURATION ('30d', '12h', '45m' or seconds)",
    )

    _add_command(
        sub,
        "report",
        help="print the headline numbers and the main tables",
        description=(
            "Print the headline summary (attack counts, families, window) "
            "followed by the protocol, victim-country and collaboration "
            "tables for the current scale/seed dataset."
        ),
        epilog="example:\n  ddos-repro --scale 0.02 report",
    )

    exp = _add_command(
        sub,
        "experiments",
        help="run the table/figure reproductions",
        description=(
            "Run the full battery of table and figure reproductions (Tables "
            "II-VI, Figures 2-18) against one shared analysis context, and "
            "snapshot the derived views so the next run starts warm. Use "
            "--only to run a single experiment, --list to see the ids, "
            "--jobs to fan out over threads, and --shards to partition the "
            "dataset and run map-reduce — neither changes the output."
        ),
        epilog="example:\n  ddos-repro experiments --jobs 4 --only table4_prediction",
    )
    exp.add_argument(
        "--only",
        default=None,
        help="run a single experiment id (see --list)",
    )
    exp.add_argument("--list", action="store_true", help="list experiment ids and exit")
    exp.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker threads for the battery, >= 1 (output is identical for any value)",
    )
    exp.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="partition the dataset into N time windows and run the battery "
             "map-reduce: per-shard view builds, then a bitwise-identical merge",
    )

    pred = _add_command(
        sub,
        "predict",
        help="ARIMA dispersion forecast for one family",
        description=(
            "Fit an ARIMA model to one family's geolocation-dispersion "
            "series (the paper's Section V-C prediction) and report the "
            "forecast accuracy against held-out truth: cosine similarity, "
            "MAE and RMSE."
        ),
        epilog="example:\n  ddos-repro predict --family pandora --order 2,1,2",
    )
    pred.add_argument("--family", required=True)
    pred.add_argument("--order", default="2,1,2", help="ARIMA order p,d,q or 'auto'")

    defense = _add_command(
        sub,
        "defense",
        help="evaluate the defense policies derived from the findings",
        description=(
            "Backtest the defense policies the paper's findings motivate: "
            "country/IP blacklists trained on the first part of the window "
            "and scored on the rest, detection-window sweeps around Fig 7's "
            "four-hour knee, and provisioning driven by next-attack "
            "predictions."
        ),
        epilog="example:\n  ddos-repro defense --train-fraction 0.5",
    )
    defense.add_argument(
        "--train-fraction", type=float, default=0.5,
        help="history fraction used to train blacklists / predictions",
    )

    watch = _add_command(
        sub,
        "watch",
        help="tail a JSONL attack log and re-render the report on change",
        description=(
            "Tail a growing JSONL attack log and keep the headline report "
            "live: each poll ingests only the newly appended complete lines "
            "(an O(batch) incremental update for in-order logs) and "
            "re-renders when something changed. The status line shows the "
            "attack count, the stream epoch and the ingest lag in seconds. "
            "With --sketch the session runs at fixed memory forever: "
            "records fold into bounded-memory sketches (Count-Min, "
            "HyperLogLog, KLL) instead of exact columns, and the report "
            "shows approximate answers with their documented error budget "
            "(docs/STREAMING.md)."
        ),
        epilog="example:\n  ddos-repro watch --path attacks.jsonl --interval 2",
    )
    watch.add_argument("--path", required=True, help="JSONL attack log to tail")
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls of the log file",
    )
    watch.add_argument(
        "--max-polls", type=_positive_int, default=None,
        help="stop after this many polls (default: run until interrupted)",
    )
    watch.add_argument(
        "--sketch", action="store_true",
        help="bounded-memory mode: sketch summaries instead of exact columns",
    )
    watch.add_argument(
        "--exact-window", type=_positive_int, default=50_000,
        help="with --sketch, how many recent records to keep verbatim",
    )

    shard = _add_command(
        sub,
        "shard",
        help="inspect a sharded dataset store",
        description=(
            "Inspect a sharded dataset store directory written by convert "
            "--shards/--shard-by: 'info' prints the manifest summary — the "
            "shard count, total attacks, observation window and each "
            "shard's file, row count and time bounds."
        ),
        epilog="example:\n  ddos-repro shard info data/store",
    )
    shard.add_argument("action", choices=["info"], help="what to do with the store")
    shard.add_argument("path", help="sharded store directory (holds manifest.json)")

    serve = _add_command(
        sub,
        "serve",
        help="run the multi-tenant HTTP analysis service",
        description=(
            "Run the long-running analysis service: a stdlib-only HTTP "
            "server where clients POST batches of attack records "
            "(/v1/ingest, with bounded-queue backpressure) and query "
            "epoch-tagged immutable snapshots — metadata (/v1/snapshot), "
            "the rendered experiment battery (/v1/experiments), the "
            "bounded-memory approximate summary (/v1/sketch), process "
            "metrics (/v1/metrics) and liveness (/v1/healthz). With "
            "--preload, the current scale/seed dataset is ingested into "
            "the 'default' tenant before the port opens. --max-tenant-mb "
            "caps each tenant's resident exact-column memory: past the "
            "ceiling, ingests get 429/Retry-After while /v1/sketch keeps "
            "answering at fixed memory."
        ),
        epilog="example:\n  ddos-repro --scale 0.02 serve --port 8321 --preload",
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="port to bind (0 picks a free port; it is printed at startup)",
    )
    serve.add_argument(
        "--queue-size", type=_positive_int, default=64,
        help="pending ingest batches per tenant before 429 backpressure",
    )
    serve.add_argument(
        "--prewarm-jobs", type=_positive_int, default=1,
        help="worker threads for view prewarm after each ingest fold",
    )
    serve.add_argument(
        "--keep-epochs", type=_positive_int, default=4,
        help="epoch snapshots retained per tenant for pinned reads",
    )
    serve.add_argument(
        "--max-tenant-mb", type=_positive_int, default=None,
        help="per-tenant resident-memory ceiling in MiB (429 past it)",
    )
    serve.add_argument(
        "--preload", action="store_true",
        help="ingest the scale/seed dataset into the 'default' tenant at startup",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None,
        help="exit after this many seconds (default: serve until interrupted)",
    )

    prof = _add_command(
        sub,
        "profile",
        help="time the whole pipeline and write a RunManifest",
        description=(
            "Exercise the full pipeline under the observability layer: "
            "generate the dataset (uncached, so generation is timed), round-"
            "trip it through the ingest path and the columnar binary store, "
            "build the analysis views, fan the per-family ARIMA forecasts "
            "across worker processes, then run the experiment battery twice "
            "— cold and warm — so cache hit/miss counters are populated. "
            "Prints the sorted stage tree and a metrics summary, and writes "
            "the RunManifest JSON next to the cache directory (or to "
            "--metrics PATH)."
        ),
        epilog="example:\n  ddos-repro --scale 0.02 profile --jobs 4",
    )
    prof.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes for generation and the ARIMA fan-out, and "
             "worker threads for the experiment batteries "
             "(default: cpu count capped at 8)",
    )
    prof.add_argument(
        "--min-seconds", type=float, default=0.0,
        help="hide stages faster than this from the printed tree",
    )
    return parser


def _config(args: argparse.Namespace) -> DatasetConfig:
    return DatasetConfig(seed=args.seed, scale=args.scale)


def _cmd_generate(args: argparse.Namespace) -> int:
    from . import par

    ds = args._manifest_dataset = load_or_generate(
        _config(args), args.cache_dir, jobs=par.resolve_jobs(args.jobs)
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    n_attacks = export_attacks_csv(ds, out / "ddos_attacks.csv")
    n_bots = export_botlist_csv(ds, out / "botlist.csv", limit=args.botlist_limit)
    n_botnets = export_botnetlist_csv(ds, out / "botnetlist.csv")
    print(f"wrote {n_attacks} attacks, {n_bots} bots, {n_botnets} botnets to {out}/")
    if args.figures:
        from .io.figures import export_figure_data

        counts = export_figure_data(ds, out / "figures")
        print(f"wrote {len(counts)} figure series to {out}/figures/")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from . import api
    from .io import colstore

    if not Path(args.src).exists():
        print(f"error: no such file: {args.src}", file=sys.stderr)
        return 1
    ds = api.load(args.src)
    if isinstance(ds, colstore.ShardedDatasetStore):
        ds = ds.merged_dataset()
    args._manifest_dataset = ds
    dst = Path(args.dst)
    if args.shards is not None or args.shard_by is not None:
        colstore.save_sharded_npz(
            ds, dst, shards=args.shards, window_seconds=args.shard_by
        )
        store = colstore.ShardedDatasetStore(dst, mmap=False)
        print(
            f"converted {args.src} -> {dst} "
            f"({ds.n_attacks} attacks across {store.n_shards} shards)"
        )
        return 0
    name = dst.name
    if name.endswith(".npz"):
        from .io.colstore import save_dataset_npz

        save_dataset_npz(ds, dst)
    elif name.endswith(".jsonl"):
        from .io.jsonlio import export_attacks_jsonl

        export_attacks_jsonl(ds, dst)
    elif name.endswith(".csv"):
        export_attacks_csv(ds, dst)
    elif name.endswith(".pkl.gz"):
        from .io.cache import save_dataset

        save_dataset(ds, dst)
    else:
        print(
            f"cannot infer format of {dst}: expected .jsonl, .csv, .npz or .pkl.gz",
            file=sys.stderr,
        )
        return 2
    print(f"converted {args.src} -> {dst} ({ds.n_attacks} attacks)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    ctx = load_or_generate_context(_config(args), args.cache_dir)
    args._manifest_dataset = ctx.dataset
    print(report.render_headline(ctx))
    print()
    print(report.render_protocol_table(ctx))
    print()
    print(report.render_country_table(ctx))
    print()
    print(report.render_collaboration_table(ctx))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list:
        for experiment in ALL_EXPERIMENTS:
            print(f"{experiment.id:<24s} {experiment.section:<28s} {experiment.title}")
        return 0
    config = _config(args)
    shard_layout = None
    if args.shards is not None:
        from .core.context import ShardedAnalysisContext
        from .io.cache import MergeCache, load_or_generate
        from .io.colstore import ShardedDatasetStore

        store = ShardedDatasetStore.partition(
            load_or_generate(config, args.cache_dir), shards=args.shards
        )
        shard_layout = store.layout_key()
        # Persist subtree merge results next to the dataset cache, so a
        # repeat invocation (or one more appended shard) reuses every
        # unchanged subtree and re-merges only the spine.
        sctx = ShardedAnalysisContext(store, merge_cache=MergeCache(args.cache_dir))
        sctx.build(jobs=args.jobs)
        ctx = sctx.merged(jobs=args.jobs)
    else:
        ctx = load_or_generate_context(config, args.cache_dir)
    args._manifest_dataset = ctx.dataset
    if args.only:
        print(get_experiment(args.only).run(ctx).render())
        print()
    else:
        if args.jobs > 1:
            # Build the shared views across the worker pool first; the
            # thread fan-out below then runs against a warm context.
            ctx.prewarm(jobs=args.jobs)
        for result in run_all(ctx, jobs=args.jobs):
            print(result.render())
            print()
    save_context_views(ctx, config, args.cache_dir, shard_layout=shard_layout)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    ctx = load_or_generate_context(_config(args), args.cache_dir)
    args._manifest_dataset = ctx.dataset
    if args.order == "auto":
        order = None
    else:
        try:
            p, d, q = (int(x) for x in args.order.split(","))
        except ValueError:
            print(f"bad --order {args.order!r}; expected 'p,d,q' or 'auto'", file=sys.stderr)
            return 2
        order = (p, d, q)
    forecast = predict_family_dispersion(ctx, args.family, order=order)
    c = forecast.comparison
    print(f"family:            {forecast.family}")
    print(f"ARIMA order:       {forecast.order}")
    print(f"train/test points: {forecast.train.size}/{forecast.truth.size}")
    print(f"truth mean/std:    {c.truth_mean:.1f} / {c.truth_std:.1f} km")
    print(f"pred mean/std:     {c.prediction_mean:.1f} / {c.prediction_std:.1f} km")
    print(f"cosine similarity: {c.similarity:.3f}")
    print(f"MAE / RMSE:        {c.mae:.1f} / {c.rmse:.1f} km")
    return 0


def _cmd_defense(args: argparse.Namespace) -> int:
    from .defense.blacklist import CountryBlacklist, IPBlacklist
    from .defense.detection import sweep_detection_windows
    from .defense.provisioning import backtest_provisioning

    ds = load_or_generate_context(_config(args), args.cache_dir).dataset
    args._manifest_dataset = ds
    cutoff = ds.window.start + args.train_fraction * ds.window.duration

    print("== blacklists (train on history, score on the future) ==")
    cc = CountryBlacklist().fit(ds, cutoff).evaluate(ds, cutoff)
    ip = IPBlacklist().fit(ds, cutoff).evaluate(ds, cutoff)
    print(f"country list: {cc.n_entries:>6d} entries -> {cc.coverage:.1%} coverage")
    print(f"ip list:      {ip.n_entries:>6d} entries -> {ip.coverage:.1%} coverage")

    print()
    print("== detection windows (Fig 7's four-hour knee) ==")
    for o in sweep_detection_windows(ds):
        print(f"detect in {o.time_to_detect / 60:>5.0f} min -> catches "
              f"{o.caught_fraction:.0%}, mitigates {o.exposure_mitigated:.0%} of exposure")

    print()
    print("== provisioning from next-attack predictions ==")
    result = backtest_provisioning(ds, train_fraction=max(args.train_fraction, 0.5))
    print(f"{result.hits}/{result.n_predictions} scheduled windows hit "
          f"(mean error {result.mean_abs_error / 3600:.1f} h)")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .stream import WatchSession

    session = WatchSession(
        args.path, sketch=args.sketch, exact_window=args.exact_window
    )
    polls = 0
    try:
        while args.max_polls is None or polls < args.max_polls:
            update = session.poll()
            polls += 1
            if update is not None:
                print(update)
                print(
                    f"-- {session.n_attacks} attacks (epoch {session.epoch}, "
                    f"lag {session.lag_seconds:.1f}s) --"
                )
                sys.stdout.flush()
            if args.max_polls is not None and polls >= args.max_polls:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import json

    from .io import colstore

    path = Path(args.path)
    if not colstore.is_sharded_store(path):
        print(f"error: not a sharded store (no manifest.json): {path}", file=sys.stderr)
        return 1
    manifest = json.loads((path / colstore.MANIFEST_NAME).read_text())
    window = manifest["window"]
    print(f"store:     {path}")
    print(f"shards:    {manifest['n_shards']}")
    print(f"attacks:   {manifest['n_attacks']}")
    print(f"window:    [{window['start']:.0f}, {window['end']:.0f}) "
          f"({(window['end'] - window['start']) / 86400:.1f} days)")
    print(f"{'file':<16s} {'attacks':>10s} {'t_lo':>12s} {'t_first':>12s} {'t_last':>12s}")
    for entry in manifest["shards"]:
        print(f"{entry['file']:<16s} {entry['n_attacks']:>10d} "
              f"{entry['t_lo']:>12.0f} {entry['t_first']:>12.0f} {entry['t_last']:>12.0f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .serve import AnalysisServer

    server = AnalysisServer(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        prewarm_jobs=args.prewarm_jobs,
        keep_epochs=args.keep_epochs,
        max_tenant_bytes=(
            args.max_tenant_mb * 1024 * 1024
            if args.max_tenant_mb is not None
            else None
        ),
    )
    if args.preload:
        ds = load_or_generate(_config(args), args.cache_dir)
        args._manifest_dataset = ds
        tenant = server.tenants.get_or_create("default")
        result = tenant.ingest(list(ds.iter_attacks()), timeout=600.0)
        print(
            f"preloaded {result['accepted']} attacks into tenant 'default' "
            f"(epoch {result['epoch']})",
            flush=True,
        )
    server.start()
    print(f"serving on {server.url}", flush=True)
    try:
        if args.max_seconds is not None:
            time.sleep(args.max_seconds)
        else:
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print("server stopped", flush=True)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import par
    from .core.context import AnalysisContext
    from .core.prediction import predict_all_families
    from .datagen.generator import generate_dataset
    from .io.ingest import dataset_from_records

    config = _config(args)
    reg = obs_registry()
    jobs = par.resolve_jobs(args.jobs)

    ds = generate_dataset(config, jobs=jobs)
    args._manifest_dataset = ds

    streamed = dataset_from_records(ds.iter_attacks(), window=ds.window)
    print(f"generated {ds.n_attacks} attacks; ingest round-trip kept "
          f"{streamed.n_attacks}")

    import tempfile

    from .io import colstore

    with tempfile.TemporaryDirectory() as tmp:
        npz = colstore.save_dataset_npz(ds, Path(tmp) / "profile.npz")
        size = npz.stat().st_size
        colstore.load_dataset_npz(npz)
    print(f"colstore round-trip: {size / 1e6:.1f} MB archive")

    ctx = AnalysisContext.of(ds)
    with reg.span("context.views"):
        report.render_headline(ctx)

    with reg.span("par.forecast"):
        forecasts = predict_all_families(ctx, jobs=jobs)
    print(f"forecast fan-out: {len(forecasts)} families")

    # A fresh (unshared) context so the prewarm leg measures real view
    # builds; its per-view ``view:<kind>`` spans land under ``prewarm``
    # in the stage tree below.
    warm_ctx = AnalysisContext(ds)
    seeded = warm_ctx.prewarm(jobs=jobs)
    print(f"prewarm: {seeded} views seeded (jobs={jobs})")

    for label, battery_ctx in (("battery (prewarmed)", warm_ctx), ("battery (warm)", ctx)):
        results = run_all(battery_ctx, jobs=jobs)
        print(f"{label}: {len(results)} experiments")

    manifest = RunManifest.collect(
        reg,
        seed=args.seed,
        scale=args.scale,
        config_key=config_key(config),
        dataset=ds,
        argv=args._argv,
    )
    out = Path(args.metrics) if args.metrics else (
        resolve_cache_dir(args.cache_dir) / f"manifest-{config_key(config)}.json"
    )
    manifest.write(out)

    print()
    print(render_stage_tree(reg.stage_tree(), min_seconds=args.min_seconds))
    print()
    print(render_metrics_summary(reg))
    print()
    print(f"manifest written to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    args._manifest_dataset = None
    args._argv = ["ddos-repro", *(argv if argv is not None else sys.argv[1:])]
    commands = {
        "generate": _cmd_generate,
        "convert": _cmd_convert,
        "report": _cmd_report,
        "experiments": _cmd_experiments,
        "predict": _cmd_predict,
        "defense": _cmd_defense,
        "watch": _cmd_watch,
        "shard": _cmd_shard,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
    }
    try:
        code = commands[args.command](args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.metrics and args.command != "profile":
        config = _config(args)
        RunManifest.collect(
            obs_registry(),
            seed=args.seed,
            scale=args.scale,
            config_key=config_key(config),
            dataset=args._manifest_dataset,
            argv=args._argv,
        ).write(args.metrics)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
