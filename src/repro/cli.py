"""Command-line interface: ``ddos-repro``.

Subcommands::

    ddos-repro generate  --scale 0.02 --seed 7 --out data/   # export schemas
    ddos-repro report    --scale 0.02                        # headline + tables
    ddos-repro experiments [--jobs 4] [--only table4_prediction]
    ddos-repro predict   --family pandora                    # ARIMA forecast
    ddos-repro watch     --path attacks.jsonl                # live report

All subcommands share ``--scale``, ``--seed`` and ``--cache-dir``; the
dataset is generated once per (scale, seed) and cached on disk (the
cache directory falls back to ``$REPRO_CACHE_DIR``, then
``.repro-cache``).  The ``experiments`` battery additionally snapshots
the derived analysis views, so a repeat invocation skips the heavy
scans, and ``--jobs N`` fans the experiments out over a thread pool
without changing the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import report
from .core.prediction import predict_family_dispersion
from .datagen.config import DatasetConfig
from .experiments.registry import ALL_EXPERIMENTS, get_experiment, run_all
from .io.cache import load_or_generate, load_or_generate_context, save_context_views
from .io.csvio import export_attacks_csv, export_botlist_csv, export_botnetlist_csv

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for options that must be >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``ddos-repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ddos-repro",
        description="Botnet DDoS characterization (DSN 2015 reproduction)",
    )
    parser.add_argument("--scale", type=float, default=0.02, help="dataset scale (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate the dataset and export the schemas")
    gen.add_argument("--out", default="data", help="output directory for CSVs")
    gen.add_argument(
        "--botlist-limit", type=int, default=None, help="cap botlist rows (full list is large)"
    )
    gen.add_argument(
        "--figures", action="store_true",
        help="also export the per-figure data series as CSVs",
    )

    sub.add_parser("report", help="print the headline numbers and the main tables")

    exp = sub.add_parser("experiments", help="run the table/figure reproductions")
    exp.add_argument(
        "--only",
        default=None,
        help="run a single experiment id (see --list)",
    )
    exp.add_argument("--list", action="store_true", help="list experiment ids and exit")
    exp.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker threads for the battery, >= 1 (output is identical for any value)",
    )

    pred = sub.add_parser("predict", help="ARIMA dispersion forecast for one family")
    pred.add_argument("--family", required=True)
    pred.add_argument("--order", default="2,1,2", help="ARIMA order p,d,q or 'auto'")

    defense = sub.add_parser(
        "defense", help="evaluate the defense policies derived from the findings"
    )
    defense.add_argument(
        "--train-fraction", type=float, default=0.5,
        help="history fraction used to train blacklists / predictions",
    )

    watch = sub.add_parser(
        "watch", help="tail a JSONL attack log and re-render the report on change"
    )
    watch.add_argument("--path", required=True, help="JSONL attack log to tail")
    watch.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between polls of the log file",
    )
    watch.add_argument(
        "--max-polls", type=_positive_int, default=None,
        help="stop after this many polls (default: run until interrupted)",
    )
    return parser


def _config(args: argparse.Namespace) -> DatasetConfig:
    return DatasetConfig(seed=args.seed, scale=args.scale)


def _cmd_generate(args: argparse.Namespace) -> int:
    ds = load_or_generate(_config(args), args.cache_dir)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    n_attacks = export_attacks_csv(ds, out / "ddos_attacks.csv")
    n_bots = export_botlist_csv(ds, out / "botlist.csv", limit=args.botlist_limit)
    n_botnets = export_botnetlist_csv(ds, out / "botnetlist.csv")
    print(f"wrote {n_attacks} attacks, {n_bots} bots, {n_botnets} botnets to {out}/")
    if args.figures:
        from .io.figures import export_figure_data

        counts = export_figure_data(ds, out / "figures")
        print(f"wrote {len(counts)} figure series to {out}/figures/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    ctx = load_or_generate_context(_config(args), args.cache_dir)
    print(report.render_headline(ctx))
    print()
    print(report.render_protocol_table(ctx))
    print()
    print(report.render_country_table(ctx))
    print()
    print(report.render_collaboration_table(ctx))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list:
        for experiment in ALL_EXPERIMENTS:
            print(f"{experiment.id:<24s} {experiment.section:<28s} {experiment.title}")
        return 0
    config = _config(args)
    ctx = load_or_generate_context(config, args.cache_dir)
    if args.only:
        print(get_experiment(args.only).run(ctx).render())
        print()
    else:
        for result in run_all(ctx, jobs=args.jobs):
            print(result.render())
            print()
    save_context_views(ctx, config, args.cache_dir)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    ctx = load_or_generate_context(_config(args), args.cache_dir)
    if args.order == "auto":
        order = None
    else:
        try:
            p, d, q = (int(x) for x in args.order.split(","))
        except ValueError:
            print(f"bad --order {args.order!r}; expected 'p,d,q' or 'auto'", file=sys.stderr)
            return 2
        order = (p, d, q)
    forecast = predict_family_dispersion(ctx, args.family, order=order)
    c = forecast.comparison
    print(f"family:            {forecast.family}")
    print(f"ARIMA order:       {forecast.order}")
    print(f"train/test points: {forecast.train.size}/{forecast.truth.size}")
    print(f"truth mean/std:    {c.truth_mean:.1f} / {c.truth_std:.1f} km")
    print(f"pred mean/std:     {c.prediction_mean:.1f} / {c.prediction_std:.1f} km")
    print(f"cosine similarity: {c.similarity:.3f}")
    print(f"MAE / RMSE:        {c.mae:.1f} / {c.rmse:.1f} km")
    return 0


def _cmd_defense(args: argparse.Namespace) -> int:
    from .defense.blacklist import CountryBlacklist, IPBlacklist
    from .defense.detection import sweep_detection_windows
    from .defense.provisioning import backtest_provisioning

    ds = load_or_generate_context(_config(args), args.cache_dir).dataset
    cutoff = ds.window.start + args.train_fraction * ds.window.duration

    print("== blacklists (train on history, score on the future) ==")
    cc = CountryBlacklist().fit(ds, cutoff).evaluate(ds, cutoff)
    ip = IPBlacklist().fit(ds, cutoff).evaluate(ds, cutoff)
    print(f"country list: {cc.n_entries:>6d} entries -> {cc.coverage:.1%} coverage")
    print(f"ip list:      {ip.n_entries:>6d} entries -> {ip.coverage:.1%} coverage")

    print()
    print("== detection windows (Fig 7's four-hour knee) ==")
    for o in sweep_detection_windows(ds):
        print(f"detect in {o.time_to_detect / 60:>5.0f} min -> catches "
              f"{o.caught_fraction:.0%}, mitigates {o.exposure_mitigated:.0%} of exposure")

    print()
    print("== provisioning from next-attack predictions ==")
    result = backtest_provisioning(ds, train_fraction=max(args.train_fraction, 0.5))
    print(f"{result.hits}/{result.n_predictions} scheduled windows hit "
          f"(mean error {result.mean_abs_error / 3600:.1f} h)")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .stream import WatchSession

    session = WatchSession(args.path)
    polls = 0
    try:
        while args.max_polls is None or polls < args.max_polls:
            update = session.poll()
            polls += 1
            if update is not None:
                print(update)
                print(f"-- {session.n_attacks} attacks (epoch {session.epoch}) --")
                sys.stdout.flush()
            if args.max_polls is not None and polls >= args.max_polls:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "generate": _cmd_generate,
        "report": _cmd_report,
        "experiments": _cmd_experiments,
        "predict": _cmd_predict,
        "defense": _cmd_defense,
        "watch": _cmd_watch,
    }
    try:
        return commands[args.command](args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
