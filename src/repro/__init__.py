"""repro: a reproduction of "Delving into Internet DDoS Attacks by Botnets"
(DSN 2015) -- botnet DDoS characterization and analysis, with a synthetic
botnet-ecosystem substrate standing in for the paper's proprietary logs.

Quickstart::

    from repro import DatasetConfig, generate_dataset
    from repro.core import overview

    ds = generate_dataset(DatasetConfig.small())
    print(overview.workload_summary(ds))
"""

from .core.dataset import AttackDataset, BotRegistry, VictimRegistry
from .datagen.config import DatasetConfig
from .datagen.generator import generate_dataset
from .monitor.schemas import Protocol

__version__ = "1.0.0"

__all__ = [
    "AttackDataset",
    "BotRegistry",
    "VictimRegistry",
    "DatasetConfig",
    "generate_dataset",
    "Protocol",
    "__version__",
]
