"""repro: a reproduction of "Delving into Internet DDoS Attacks by Botnets"
(DSN 2015) -- botnet DDoS characterization and analysis, with a synthetic
botnet-ecosystem substrate standing in for the paper's proprietary logs.

Quickstart::

    from repro import api

    ctx = api.context(api.generate(scale=0.02))
    for result in api.run_all(ctx):
        print(result.render())

The :mod:`repro.api` facade is the stable entry point; the submodules
remain importable directly for anything it does not cover.
"""

from . import errors  # noqa: F401  (the taxonomy must import before the facade)
from . import api
from .core.dataset import AttackDataset, BotRegistry, VictimRegistry
from .datagen.config import DatasetConfig
from .datagen.generator import generate_dataset
from .monitor.schemas import Protocol

__version__ = "1.2.0"

__all__ = [
    "api",
    "errors",
    "AttackDataset",
    "BotRegistry",
    "VictimRegistry",
    "DatasetConfig",
    "generate_dataset",
    "Protocol",
    "__version__",
]
