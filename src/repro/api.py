"""The stable public facade: ``from repro import api``.

Everything the library does is reachable through deep module paths
(``repro.core.context``, ``repro.io.cache``, ``repro.stream`` …), but
those paths move as the codebase grows.  This module is the documented,
compatibility-kept entry point:

>>> from repro import api
>>> ctx = api.context(api.generate(scale=0.005))
>>> results = api.run_all(ctx)
>>> len(results)
18

The facade is intentionally thin — each function is a dispatch or a
re-export, never new behaviour — so the underlying modules stay usable
directly and the facade stays trivially correct.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from typing import Union

from .core.context import AnalysisContext, ShardedAnalysisContext
from .core.dataset import AttackDataset
from .datagen.config import DatasetConfig
from .errors import FormatError, IngestError, ReproError, ShardLayoutError
from .io.colstore import ShardedDatasetStore
from .monitor.schemas import DDoSAttackRecord
from .simulation.clock import ObservationWindow
from .sketch import AttackStreamSummary
from .stream import StreamingDataset, WatchSession

#: The facade's own compatibility version (independent of the package
#: version): the major bumps only on a breaking change to a documented
#: ``api.*`` signature, the minor on additive growth.  ``docs/API.md``
#: records each symbol's stability note against this number.
__version__ = "2.1"

#: What :func:`load` returns: one flat in-memory dataset, or the lazy
#: handle onto a time-partitioned store (pass either to :func:`context`
#: / :func:`run_all`; the sharded path dispatches to map-reduce).
LoadedData = Union[AttackDataset, ShardedDatasetStore]

__all__ = [
    "open",
    "generate",
    "load",
    "ingest",
    "stream",
    "watch",
    "context",
    "run_all",
    "serve",
    "sketch",
    "AnalysisContext",
    "AttackStreamSummary",
    "AttackDataset",
    "DatasetConfig",
    "LoadedData",
    "ReproError",
    "FormatError",
    "ShardLayoutError",
    "IngestError",
    "ShardedAnalysisContext",
    "StreamingDataset",
    "WatchSession",
    "__version__",
]


def generate(
    scale: float = 0.02,
    *,
    seed: int = 7,
    config: DatasetConfig | None = None,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    jobs: int = 1,
) -> AttackDataset:
    """Generate (or load from cache) the synthetic dataset.

    Pass ``config`` for full control; otherwise a default
    :class:`DatasetConfig` is built from ``scale`` and ``seed`` (both
    keyword-only past ``scale``, like every facade option).  With
    ``cache`` (the default) the result is cached on disk keyed by the
    config hash — see :func:`repro.io.cache.load_or_generate`.
    ``jobs > 1`` generates across worker processes; the dataset is
    array-identical for every ``jobs`` value (see ``docs/PERFORMANCE.md``).

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)      # cached after the first call
    >>> ds.n_attacks > 0
    True
    """
    from .datagen.generator import generate_dataset
    from .io.cache import load_or_generate

    if config is None:
        config = DatasetConfig(seed=seed, scale=scale)
    if cache:
        return load_or_generate(config, cache_dir, jobs=jobs)
    return generate_dataset(config, jobs=jobs)


def open(source=None, *, shards: int | None = None):
    """One documented entry point unifying the three acquisition paths.

    Dispatches on what ``source`` is:

    * ``None`` — a fresh :class:`StreamingDataset` (:func:`stream`), the
      append-oriented live path;
    * a :class:`DatasetConfig` — :func:`generate` with that config
      (cached on disk keyed by the config hash);
    * a ``str`` / :class:`~pathlib.Path` — :func:`load`, with the format
      inferred from the extension (or the sharded-store manifest);
    * an :class:`AttackDataset` or
      :class:`~repro.io.colstore.ShardedDatasetStore` — passed through.

    ``shards=N`` partitions a flat result into ``N`` equal time windows
    (exactly as :func:`load` does); combining it with a source that is
    already sharded — or with the streaming path — raises
    :class:`~repro.errors.ShardLayoutError`.  Anything else raises
    :class:`~repro.errors.FormatError`.  Whatever comes back feeds
    straight into :func:`context` / :func:`run_all`.

    >>> from repro import api
    >>> api.open().n_attacks                        # None -> a fresh stream
    0
    >>> ds = api.open(api.DatasetConfig.tiny(seed=7))   # config -> generate
    >>> api.open(ds) is ds                          # datasets pass through
    True
    >>> api.open(ds, shards=2).n_shards             # ... unless partitioned
    2
    >>> api.open(3.14)
    Traceback (most recent call last):
    repro.errors.FormatError: cannot open a float as a dataset source...
    """
    if source is None:
        if shards is not None:
            raise ShardLayoutError(
                "a fresh stream cannot be pre-partitioned; spill it into a "
                "sharded store later via StreamingDataset.spill_shards"
            )
        return stream()
    if isinstance(source, DatasetConfig):
        ds = generate(config=source)
    elif isinstance(source, (str, Path)):
        return load(source, shards=shards)
    elif isinstance(source, (AttackDataset, ShardedDatasetStore)):
        ds = source
    else:
        raise FormatError(
            f"cannot open a {type(source).__name__} as a dataset source; "
            "expected None, a DatasetConfig, a path, an AttackDataset or a "
            "ShardedDatasetStore"
        )
    if shards is not None:
        if isinstance(ds, ShardedDatasetStore):
            raise ShardLayoutError(
                "source is already a sharded store; its layout is fixed by "
                "the manifest (re-partition via convert --shards)"
            )
        return ShardedDatasetStore.partition(ds, shards=shards)
    return ds


def load(path: str | Path, *, shards: int | None = None) -> LoadedData:
    """Load a dataset from a file or sharded store, dispatching on shape.

    * a directory with a ``manifest.json`` — a sharded colstore store
      (:func:`repro.io.colstore.save_sharded_npz`; returns a
      :class:`~repro.io.colstore.ShardedDatasetStore` with per-shard
      memory-mapped loading — pass it to :func:`context` /
      :func:`run_all` for map-reduce analysis);
    * ``.jsonl`` — attack log in the Table I schema, one JSON object per
      line (as written by :func:`repro.io.jsonlio.export_attacks_jsonl`);
    * ``.csv`` — attack table export
      (:func:`repro.io.csvio.export_attacks_csv`);
    * ``.npz`` — the columnar binary store
      (:func:`repro.io.colstore.save_dataset_npz`; memory-mapped, the
      fastest cold load — create one with ``ddos-repro convert``);
    * ``.pkl.gz`` — a pickled dataset
      (:func:`repro.io.cache.save_dataset`; only load your own files).

    JSONL/CSV logs rebuild an attack-table-only dataset via
    :func:`ingest`; the colstore archive and the pickle round-trip the
    full dataset including the Botlist side.  Pass ``shards=N`` to
    partition a flat dataset into ``N`` equal time windows in memory
    (returns a :class:`~repro.io.colstore.ShardedDatasetStore`).

    Unrecognised extensions raise :class:`~repro.errors.FormatError`;
    asking to re-partition an already-sharded store raises
    :class:`~repro.errors.ShardLayoutError` (both are ``ValueError``
    subclasses, so pre-taxonomy callers keep working).

    >>> from repro import api
    >>> api.load("attacks.xyz")
    Traceback (most recent call last):
    repro.errors.FormatError: cannot infer format of attacks.xyz: expected .jsonl, .csv, .npz or .pkl.gz
    """
    from .io import colstore

    path = Path(path)
    if colstore.is_sharded_store(path):
        if shards is not None:
            raise ShardLayoutError(
                f"{path} is already a sharded store; its layout is fixed by "
                "the manifest (re-partition via convert --shards)"
            )
        return colstore.ShardedDatasetStore(path)
    name = path.name
    if name.endswith(".jsonl"):
        from .io.jsonlio import iter_attacks_jsonl

        ds = ingest(iter_attacks_jsonl(path))
    elif name.endswith(".csv"):
        from .io.csvio import read_attacks_csv

        ds = ingest(read_attacks_csv(path))
    elif name.endswith(".npz"):
        ds = colstore.load_dataset_npz(path)
    elif name.endswith(".pkl.gz"):
        from .io.cache import load_dataset

        ds = load_dataset(path)
    else:
        raise FormatError(
            f"cannot infer format of {path}: expected .jsonl, .csv, .npz or .pkl.gz"
        )
    if shards is not None:
        return colstore.ShardedDatasetStore.partition(ds, shards=shards)
    return ds


def ingest(
    records: Iterable[DDoSAttackRecord],
    *,
    window: ObservationWindow | None = None,
    strict: bool = True,
) -> AttackDataset:
    """Build an attack-table-only dataset from Table I records.

    See :func:`repro.io.ingest.dataset_from_records`; malformed input
    raises :class:`~repro.errors.IngestError` (``strict=False`` drops
    instead).  ``window`` — like every facade option past the data
    argument — is keyword-only.

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)
    >>> streamed = api.ingest(ds.iter_attacks(), window=ds.window)
    >>> streamed.n_attacks == ds.n_attacks
    True
    """
    from .io.ingest import dataset_from_records

    return dataset_from_records(records, window, strict=strict)


def stream(*, window: ObservationWindow | None = None) -> StreamingDataset:
    """A fresh append-oriented dataset builder (the streaming path).

    >>> from repro import api
    >>> s = api.stream()
    >>> (s.n_attacks, s.epoch)
    (0, 0)
    """
    return StreamingDataset(window=window)


def watch(
    path: str | Path,
    *,
    window: ObservationWindow | None = None,
    sketch: bool = False,
    exact_window: int = 50_000,
) -> WatchSession:
    """A poll-driven session tailing a JSONL attack log.

    Each ``poll()`` ingests newly appended records and returns the
    re-rendered headline report, or ``None`` when nothing changed.
    With ``sketch=True`` the session runs at fixed memory: records fold
    into an :class:`AttackStreamSummary` (plus a trailing window of
    ``exact_window`` verbatim records) instead of materialising exact
    columns forever, and the rendered report is the approximate one —
    see ``docs/STREAMING.md`` for the memory model and error contract.

    >>> from repro import api
    >>> session = api.watch("not-written-yet.jsonl", sketch=True)
    >>> session.poll() is None              # log file does not exist yet
    True
    """
    return WatchSession(
        path, window=window, sketch=sketch, exact_window=exact_window
    )


def context(ds, *, merge_cache=None) -> AnalysisContext | ShardedAnalysisContext:
    """The dataset's shared memoized analysis context.

    A flat :class:`AttackDataset` (or an existing context) coerces to
    its shared :class:`AnalysisContext`; a
    :class:`~repro.io.colstore.ShardedDatasetStore` wraps into a
    :class:`ShardedAnalysisContext` whose :meth:`~ShardedAnalysisContext.merged`
    context is bitwise-identical to the unsharded build; a
    :class:`StreamingDataset` yields its current epoch snapshot's
    context.  Anything else raises :class:`~repro.errors.FormatError`.

    ``merge_cache`` (a :class:`~repro.io.cache.MergeCache`) only applies
    to sharded stores: it persists subtree merge results so repeat and
    post-append merges reuse everything but the spine.

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)
    >>> api.context(ds) is api.context(ds)  # one shared context per dataset
    True
    >>> api.context(object())
    Traceback (most recent call last):
    repro.errors.FormatError: cannot build an analysis context from object...
    """
    if isinstance(ds, (AnalysisContext, ShardedAnalysisContext)):
        return ds
    if isinstance(ds, ShardedDatasetStore):
        return ShardedAnalysisContext(ds, merge_cache=merge_cache)
    if isinstance(ds, StreamingDataset):
        return ds.context()
    if isinstance(ds, AttackDataset):
        return AnalysisContext.of(ds)
    raise FormatError(
        f"cannot build an analysis context from {type(ds).__name__}; "
        "expected an AttackDataset, a context, a ShardedDatasetStore or a "
        "StreamingDataset"
    )


def run_all(
    ctx: AnalysisContext | ShardedAnalysisContext,
    *,
    jobs: int = 1,
    manifest: str | Path | None = None,
):
    """Run the full experiment battery; results come in registry order.

    ``jobs > 1`` first prewarms the shared context —
    :meth:`AnalysisContext.prewarm` fans the independent view builds
    (per-family participants/dispersions/intervals, the Table IV
    forecasts, the collaboration/chain scans) across worker processes —
    then fans the experiments out over threads.  Neither stage changes
    the output for any ``jobs``.  Pass ``manifest`` to write a
    :class:`~repro.obs.RunManifest` JSON — stage timings, cache hit/miss
    counters, per-experiment wall times — after the battery finishes
    (see ``docs/OBSERVABILITY.md``).

    A :class:`ShardedAnalysisContext` dispatches map-reduce: every shard
    builds its mergeable views (across ``jobs`` workers), the merge
    seeds them onto the merged context, and the battery runs there —
    rendering byte-identically to the unsharded path.

    >>> import os, tempfile
    >>> from repro import api
    >>> ctx = api.context(api.generate(scale=0.005))
    >>> path = os.path.join(tempfile.mkdtemp(), "manifest.json")
    >>> results = api.run_all(ctx, jobs=2, manifest=path)
    >>> len(results), os.path.exists(path)
    (18, True)
    """
    from .experiments.registry import run_all as _run_all

    if isinstance(ctx, ShardedAnalysisContext):
        ctx.build(jobs=jobs)
        ctx = ctx.merged(jobs=jobs)
    if jobs > 1:
        ctx.prewarm(jobs=jobs)
    results = _run_all(ctx, jobs=jobs)
    if manifest is not None:
        from .obs import RunManifest, registry as _obs_registry

        RunManifest.collect(_obs_registry(), dataset=ctx.dataset).write(manifest)
    return results


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    queue_size: int = 64,
    prewarm_jobs: int = 1,
    keep_epochs: int = 4,
    max_tenant_bytes: int | None = None,
):
    """Start the multi-tenant analysis service and return its handle.

    A started :class:`~repro.serve.AnalysisServer`: a threaded HTTP
    server fronting this facade, with per-tenant streaming ingest
    (bounded-queue backpressure), epoch-tagged snapshot isolation and a
    shared experiment render cache — see ``docs/ARCHITECTURE.md`` and
    the endpoint table in :mod:`repro.serve`.  ``port=0`` binds any free
    port (read it back from ``server.url``).  Stop it with
    ``server.stop()`` or use it as a context manager.  The CLI twin is
    ``ddos-repro serve``.

    ``max_tenant_bytes`` caps each tenant's resident exact-column
    memory: once a tenant's stream buffers exceed the ceiling, further
    ingests are refused with 429/``Retry-After`` while the tenant's
    ``/v1/sketch`` endpoint — fed by the fixed-memory summary every
    tenant maintains — keeps answering (``docs/STREAMING.md``).

    >>> from repro import api
    >>> with api.serve(port=0) as server:
    ...     server.url.startswith("http://127.0.0.1:")
    True
    """
    from .serve import AnalysisServer

    return AnalysisServer(
        host=host,
        port=port,
        queue_size=queue_size,
        prewarm_jobs=prewarm_jobs,
        keep_epochs=keep_epochs,
        max_tenant_bytes=max_tenant_bytes,
    ).start()


def sketch(source=None, **params) -> AttackStreamSummary:
    """A bounded-memory approximate summary of any dataset source.

    Dispatches on what ``source`` is, mirroring :func:`open`:

    * ``None`` — a fresh empty :class:`AttackStreamSummary` (feed it
      with ``update`` / ``update_arrays``);
    * an :class:`AttackDataset` — one vectorised pass over its columns
      (:func:`repro.sketch.summarize_dataset`);
    * a :class:`~repro.io.colstore.ShardedDatasetStore` — each shard is
      summarised independently and the parts reduce through
      :func:`repro.core.merge.sketch_summaries`, the sketch layer's
      map-reduce;
    * a :class:`StreamingDataset` built with ``sketches=True`` — its
      own per-epoch snapshot (``params`` must be empty: the stream's
      summary already fixed them); without sketches, its current
      snapshot dataset is summarised like a flat dataset;
    * any other iterable of records — folded via ``update``.

    ``params`` (``epsilon``, ``delta``, ``precision``, ``k``,
    ``reservoir_size``, ``seed``) forward to
    :class:`AttackStreamSummary`; the defaults give the documented
    contract in ``docs/STREAMING.md``.

    >>> from repro import api
    >>> ds = api.generate(scale=0.005)
    >>> summary = api.sketch(ds)
    >>> summary.n_records == ds.n_attacks
    True
    >>> sorted(summary.estimate()["families"]) == sorted(ds.active_families)
    True
    """
    from .core.merge import sketch_summaries
    from .sketch import summarize_dataset

    if source is None:
        return AttackStreamSummary(**params)
    if isinstance(source, AttackStreamSummary):
        return source
    if isinstance(source, ShardedDatasetStore):
        return sketch_summaries(
            summarize_dataset(source.load_shard(i), **params)
            for i in range(source.n_shards)
        )
    if isinstance(source, StreamingDataset):
        if source.sketch is not None:
            if params:
                raise FormatError(
                    "a sketch-enabled stream fixes its own sketch parameters; "
                    "drop the overrides or summarise stream.dataset() instead"
                )
            return source.sketch_snapshot()
        return summarize_dataset(source.dataset(), **params)
    if isinstance(source, AttackDataset):
        return summarize_dataset(source, **params)
    if isinstance(source, Iterable):
        summary = AttackStreamSummary(**params)
        summary.update(source)
        return summary
    raise FormatError(
        f"cannot sketch a {type(source).__name__}; expected None, an "
        "AttackDataset, a ShardedDatasetStore, a StreamingDataset, or an "
        "iterable of records"
    )
