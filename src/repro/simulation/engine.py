"""Deterministic discrete-event simulation engine.

A minimal but complete DES core: schedule events, register handlers per
event kind, run until the queue drains or a time horizon is reached.
Determinism guarantees:

* events are delivered in ``(time, kind, seq)`` order, where ``seq`` is a
  monotone scheduling counter — ties never depend on hash order;
* handlers run in registration order;
* the engine itself consumes no randomness.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from .events import Event, EventKind

__all__ = ["SimulationEngine", "SimulationError"]

Handler = Callable[[Event], None]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (scheduling into the past, etc.)."""


class SimulationEngine:
    """Priority-queue based discrete-event engine.

    >>> engine = SimulationEngine()
    >>> engine.on(EventKind.ATTACK_PULSE, handler)
    >>> engine.schedule(t0, EventKind.ATTACK_PULSE, payload)
    >>> engine.run()
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._handlers: dict[EventKind, list[Handler]] = {}
        self._global_handlers: list[Handler] = []
        self._processed = 0
        self._running = False

    # -- state ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (the timestamp of the last delivered event)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events delivered so far."""
        return self._processed

    # -- wiring --------------------------------------------------------

    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register ``handler`` for events of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def on_any(self, handler: Handler) -> None:
        """Register ``handler`` for every event (runs after kind handlers)."""
        self._global_handlers.append(handler)

    # -- scheduling ----------------------------------------------------

    def schedule(self, time: float, kind: EventKind, payload=None) -> Event:
        """Queue an event; returns the queued :class:`Event`.

        Scheduling strictly into the past (before the engine's current
        time) is an error — it would silently reorder history.
        """
        if self._running and time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time=float(time), kind=kind, seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_all(self, events: Iterable[tuple[float, EventKind, object]]) -> int:
        """Bulk-schedule ``(time, kind, payload)`` tuples; returns the count."""
        n = 0
        for time, kind, payload in events:
            self.schedule(time, kind, payload)
            n += 1
        return n

    # -- execution -----------------------------------------------------

    def step(self) -> Event | None:
        """Deliver the single next event; ``None`` if the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._running = True
        try:
            for handler in self._handlers.get(event.kind, ()):  # kind handlers first
                handler(event)
            for handler in self._global_handlers:
                handler(event)
        finally:
            self._running = False
        self._processed += 1
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` is passed, or ``max_events``.

        Returns the number of events delivered by this call.  An event
        with ``time > until`` stays queued (the horizon is inclusive).
        """
        delivered = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            if max_events is not None and delivered >= max_events:
                break
            self.step()
            delivered += 1
        return delivered
