"""Event types for the botnet-ecosystem simulation.

The simulation is event-sourced: the botnet layer schedules events on the
engine, and the monitoring substrate consumes the resulting ordered event
stream exactly the way the real monitoring service consumed traffic logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Kinds of events the simulation produces, in tie-break priority order.

    When several events share a timestamp, they are delivered in ascending
    ``EventKind`` value: recruitment/churn reshapes a botnet before any
    attack pulse at the same instant, and snapshots observe the state
    *after* everything else that happened in their hour.
    """

    RECRUIT = 0          # bots join a botnet
    CHURN = 1            # bots leave a botnet
    CAMPAIGN_START = 2   # a botmaster begins a campaign (bookkeeping)
    ATTACK_PULSE = 3     # one burst of attack traffic (start, end, bots)
    ATTACK_END = 4       # bookkeeping marker for the end of an attack
    SNAPSHOT = 5         # hourly monitoring snapshot boundary
    CAMPAIGN_END = 6


@dataclass(frozen=True, order=True)
class Event:
    """One simulation event, totally ordered by (time, kind, seq).

    ``seq`` is assigned by the engine at scheduling time, so two events
    with the same timestamp and kind are delivered in scheduling order —
    this is what makes runs byte-for-byte reproducible.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
