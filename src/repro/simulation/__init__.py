"""Deterministic simulation substrate: seeded RNG streams, time base, DES engine."""

from .clock import (
    OBSERVATION_DAYS,
    OBSERVATION_END,
    OBSERVATION_START,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    ObservationWindow,
    from_datetime,
    to_datetime,
)
from .engine import SimulationEngine, SimulationError
from .events import Event, EventKind
from .rng import SeededStreams, derive_seed

__all__ = [
    "OBSERVATION_DAYS",
    "OBSERVATION_END",
    "OBSERVATION_START",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_WEEK",
    "ObservationWindow",
    "from_datetime",
    "to_datetime",
    "SimulationEngine",
    "SimulationError",
    "Event",
    "EventKind",
    "SeededStreams",
    "derive_seed",
]
