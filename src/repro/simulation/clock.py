"""Simulation time base.

All timestamps in the library are POSIX seconds (UTC).  The observation
window matches the paper: 2012-08-29 00:00:00 UTC through 2013-03-24
00:00:00 UTC, a total of 207 days (§II-B).  This module centralises the
window constants and the conversions the analyses need (day index, week
index, hourly snapshot boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

__all__ = [
    "OBSERVATION_START",
    "OBSERVATION_END",
    "OBSERVATION_DAYS",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "ObservationWindow",
    "to_datetime",
    "from_datetime",
]

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Start of the paper's collection window: 2012-08-29 00:00:00 UTC.
OBSERVATION_START = int(datetime(2012, 8, 29, tzinfo=timezone.utc).timestamp())

#: Number of days in the paper's collection window (§II-B: "a total of 207 days").
OBSERVATION_DAYS = 207

#: End of the collection window: 2013-03-24 00:00:00 UTC.
OBSERVATION_END = OBSERVATION_START + OBSERVATION_DAYS * SECONDS_PER_DAY


def to_datetime(ts: float) -> datetime:
    """Convert POSIX seconds to an aware UTC ``datetime``."""
    return datetime.fromtimestamp(ts, tz=timezone.utc)


def from_datetime(dt: datetime) -> int:
    """Convert a ``datetime`` (naive datetimes are taken as UTC) to POSIX seconds."""
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return int(dt.timestamp())


@dataclass(frozen=True)
class ObservationWindow:
    """A half-open time window ``[start, end)`` in POSIX seconds.

    Provides the index conversions used throughout the analyses: the
    paper bins attacks by day (Fig 2), by week (Fig 8) and by hourly
    snapshot (§II-B: one report per family per hour).
    """

    start: int = OBSERVATION_START
    end: int = OBSERVATION_END

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window: start={self.start} end={self.end}")

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def n_days(self) -> int:
        return -(-self.duration // SECONDS_PER_DAY)  # ceil

    @property
    def n_weeks(self) -> int:
        return -(-self.duration // SECONDS_PER_WEEK)

    @property
    def n_hours(self) -> int:
        return -(-self.duration // SECONDS_PER_HOUR)

    def contains(self, ts: float) -> bool:
        """True when ``ts`` falls inside the half-open window."""
        return self.start <= ts < self.end

    def clamp(self, ts: float) -> float:
        """Clamp ``ts`` into ``[start, end)``."""
        return min(max(ts, self.start), self.end - 1)

    def day_index(self, ts: float) -> int:
        """0-based day number of ``ts`` within the window."""
        return int(ts - self.start) // SECONDS_PER_DAY

    def week_index(self, ts: float) -> int:
        """0-based week number of ``ts`` within the window."""
        return int(ts - self.start) // SECONDS_PER_WEEK

    def hour_index(self, ts: float) -> int:
        """0-based hourly-snapshot number of ``ts`` within the window."""
        return int(ts - self.start) // SECONDS_PER_HOUR

    def day_start(self, day: int) -> int:
        """POSIX seconds at which day index ``day`` begins."""
        return self.start + day * SECONDS_PER_DAY

    def week_start(self, week: int) -> int:
        """POSIX seconds at which week index ``week`` begins."""
        return self.start + week * SECONDS_PER_WEEK

    def hour_start(self, hour: int) -> int:
        """POSIX seconds at which snapshot hour ``hour`` begins."""
        return self.start + hour * SECONDS_PER_HOUR

    def day_label(self, day: int) -> str:
        """ISO date string for a day index (used by reports and figures)."""
        return to_datetime(self.day_start(day)).strftime("%Y-%m-%d")

    def subwindow(self, frac_start: float, frac_end: float) -> "ObservationWindow":
        """A window covering the given fractional span of this one.

        Used by family profiles that are only active for part of the
        observation period (e.g. Blackenergy, active ~1/3 of it).
        """
        if not 0.0 <= frac_start < frac_end <= 1.0:
            raise ValueError(f"bad fractions: {frac_start}, {frac_end}")
        span = self.duration
        return ObservationWindow(
            start=self.start + int(frac_start * span),
            end=self.start + int(frac_end * span),
        )
