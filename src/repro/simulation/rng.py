"""Deterministic random-number streams for the simulation.

Every source of randomness in the library flows through a
:class:`SeededStreams` instance so that a generated dataset is a pure
function of ``(config, seed)``.  Each subsystem asks for a *named* stream
(e.g. ``"botnet.dirtjumper.schedule"``) and receives its own
``numpy.random.Generator`` whose seed is derived from the master seed and
the stream name.  Streams are independent: drawing from one never perturbs
another, so adding a new consumer does not reshuffle existing output.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeededStreams", "derive_seed"]

_MASK_64 = (1 << 64) - 1


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    The derivation is a SHA-256 hash of the master seed and the name, so
    it is stable across Python versions and platforms (unlike ``hash()``).
    """
    if not isinstance(master_seed, int):
        raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
    payload = f"{master_seed & _MASK_64}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStreams:
    """A registry of named, independently seeded ``numpy`` generators.

    >>> streams = SeededStreams(42)
    >>> a = streams.stream("alpha")
    >>> b = streams.stream("beta")
    >>> a is streams.stream("alpha")   # cached
    True
    """

    def __init__(self, master_seed: int = 0):
        self._master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._master_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, bypassing the cache.

        Useful in tests that want to replay a stream from its initial state.
        """
        return np.random.default_rng(derive_seed(self._master_seed, name))

    def spawn(self, prefix: str) -> "SeededStreams":
        """Return a child registry whose streams are namespaced by ``prefix``.

        ``child.stream("x")`` is identical to ``parent.stream(prefix + "." + "x")``.
        """
        return _PrefixedStreams(self, prefix)

    def names(self) -> list[str]:
        """Names of the streams created so far (sorted)."""
        return sorted(self._streams)


class _PrefixedStreams(SeededStreams):
    """A view over a parent registry that prepends a namespace prefix."""

    def __init__(self, parent: SeededStreams, prefix: str):
        self._parent = parent
        self._prefix = prefix

    @property
    def master_seed(self) -> int:
        return self._parent.master_seed

    def stream(self, name: str) -> np.random.Generator:
        return self._parent.stream(f"{self._prefix}.{name}")

    def fresh(self, name: str) -> np.random.Generator:
        return self._parent.fresh(f"{self._prefix}.{name}")

    def spawn(self, prefix: str) -> "SeededStreams":
        return _PrefixedStreams(self._parent, f"{self._prefix}.{prefix}")

    def names(self) -> list[str]:
        prefix = self._prefix + "."
        return sorted(n[len(prefix):] for n in self._parent.names() if n.startswith(prefix))
