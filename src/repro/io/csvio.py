"""CSV export/import of the three vendor schemas (Table I).

The DDoSattack CSV carries exactly the Table I fields; the Botlist and
Botnetlist CSVs carry their respective schemas.  Round-tripping the
attack table through CSV is tested in the suite.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..monitor.schemas import DDoSAttackRecord, Protocol
from ..core.dataset import AttackDataset

__all__ = [
    "ATTACK_FIELDS",
    "export_attacks_csv",
    "read_attacks_csv",
    "export_botlist_csv",
    "export_botnetlist_csv",
]

#: Column order of the DDoSattack CSV — the Table I fields plus magnitude.
ATTACK_FIELDS = [
    "ddos_id",
    "botnet_id",
    "family",
    "category",
    "target_ip",
    "timestamp",
    "end_time",
    "asn",
    "cc",
    "city",
    "organization",
    "latitude",
    "longitude",
    "magnitude",
]


def export_attacks_csv(ds: AttackDataset, path: str | Path) -> int:
    """Write the DDoSattack schema to ``path``; returns rows written."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(ATTACK_FIELDS)
        n = 0
        for rec in ds.iter_attacks():
            writer.writerow(
                [
                    rec.ddos_id,
                    rec.botnet_id,
                    rec.family,
                    rec.category.name,
                    rec.target_ip_str,
                    f"{rec.timestamp:.3f}",
                    f"{rec.end_time:.3f}",
                    rec.asn,
                    rec.country_code,
                    rec.city,
                    rec.organization,
                    f"{rec.lat:.6f}",
                    f"{rec.lon:.6f}",
                    rec.magnitude,
                ]
            )
            n += 1
    return n


def read_attacks_csv(path: str | Path) -> list[DDoSAttackRecord]:
    """Read a DDoSattack CSV back into records."""
    from ..geo.ipam import str_to_ip

    path = Path(path)
    records: list[DDoSAttackRecord] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        missing = set(ATTACK_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"attack CSV missing columns: {sorted(missing)}")
        for row in reader:
            records.append(
                DDoSAttackRecord(
                    ddos_id=int(row["ddos_id"]),
                    botnet_id=int(row["botnet_id"]),
                    family=row["family"],
                    category=Protocol.from_name(row["category"]),
                    target_ip=str_to_ip(row["target_ip"]),
                    timestamp=float(row["timestamp"]),
                    end_time=float(row["end_time"]),
                    asn=int(row["asn"]),
                    country_code=row["cc"],
                    city=row["city"],
                    organization=row["organization"],
                    lat=float(row["latitude"]),
                    lon=float(row["longitude"]),
                    magnitude=int(row["magnitude"]),
                )
            )
    return records


def export_botlist_csv(ds: AttackDataset, path: str | Path, limit: int | None = None) -> int:
    """Write the Botlist schema to ``path``; returns rows written.

    ``limit`` caps the export (the full botlist is 310,950 rows at paper
    scale).
    """
    path = Path(path)
    n = ds.bots.n_bots if limit is None else min(limit, ds.bots.n_bots)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["bot_ip", "botnet_id", "family", "cc", "city", "organization",
             "asn", "latitude", "longitude", "recruited_at"]
        )
        for b in range(n):
            rec = ds.bot(b)
            writer.writerow(
                [
                    rec.ip_str,
                    rec.botnet_id,
                    rec.family,
                    rec.country_code,
                    rec.city,
                    rec.organization,
                    rec.asn,
                    f"{rec.lat:.6f}",
                    f"{rec.lon:.6f}",
                    f"{rec.recruited_at:.0f}",
                ]
            )
    return n


def export_botnetlist_csv(ds: AttackDataset, path: str | Path) -> int:
    """Write the Botnetlist schema to ``path``; returns rows written."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["botnet_id", "family", "controller_ip", "first_seen", "last_seen"])
        for rec in ds.botnets:
            writer.writerow(
                [
                    rec.botnet_id,
                    rec.family,
                    rec.controller_ip_str,
                    f"{rec.first_seen:.0f}",
                    f"{rec.last_seen:.0f}",
                ]
            )
    return len(ds.botnets)
