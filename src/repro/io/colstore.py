"""Columnar binary dataset store: versioned ``.npz`` save/load with mmap reads.

The cold-load path.  A dataset is stored as one *uncompressed* ``.npz``
archive: every numpy column as its own member (``attacks.start``,
``bots.ip``, ``victims.lat``, …) plus a ``__meta__`` member holding the
JSON-encoded scalar state (format version, window, family lists, the
synthetic world, the Botnetlist).  Uncompressed members are raw ``.npy``
bytes at a fixed offset inside the zip, so :func:`load_dataset_npz` can
memory-map every column directly from the file — no text parsing, no
buffer copies, columns page in lazily as analyses touch them.  (Plain
``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
zip archives, which is why the member offsets are resolved by hand.)

Version policy: ``COLSTORE_VERSION`` is embedded in ``__meta__`` and
bumps on any layout change; a mismatch raises :class:`ColstoreError`
rather than guessing.  The dataset cache treats that like any other
corrupt entry (drop and regenerate); explicit `api.load` calls surface
the error to the caller.

Instrumented: saves time under a ``colstore.save`` span and count bytes
in ``colstore.bytes_written``; loads time under ``colstore.load`` and
count in ``colstore.loads{mmap}``.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from ..core.dataset import AttackDataset, BotRegistry, VictimRegistry
from ..geo.world import City, Country, Organization, World
from ..monitor.schemas import BotnetRecord
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow

__all__ = ["COLSTORE_VERSION", "ColstoreError", "load_dataset_npz", "save_dataset_npz"]

#: Bumped on any incompatible layout change of the archive.
COLSTORE_VERSION = 1

_ATTACK_COLS = (
    "start", "end", "family_idx", "botnet_id", "protocol", "target_idx",
    "magnitude", "part_offsets", "participants", "truth_collab_group",
    "truth_collab_kind", "truth_chain_id", "truth_symmetric",
    "truth_residual_km",
)
_BOT_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "family_idx", "botnet_id", "recruit_ts",
)
_VICTIM_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "owner_family_idx",
)


class ColstoreError(ValueError):
    """The file is not a valid colstore archive (or a newer version)."""


# ---------------------------------------------------------------------------
# metadata codec (everything that is not a numpy column)
# ---------------------------------------------------------------------------


def _world_payload(world: World) -> dict:
    return {
        "countries": [
            [c.index, c.code, c.name, c.lat, c.lon, c.weight] for c in world.countries
        ],
        "cities": [
            [c.index, c.name, c.country_index, c.lat, c.lon, c.weight]
            for c in world.cities
        ],
        "organizations": [
            [o.index, o.name, o.org_type, o.country_index, o.city_index, o.asn, o.weight]
            for o in world.organizations
        ],
    }


def _world_restore(payload: dict) -> World:
    world = World()
    for index, code, name, lat, lon, weight in payload["countries"]:
        world.countries.append(Country(index, code, name, lat, lon, weight))
        world._country_by_code[code] = index
    for index, name, country_index, lat, lon, weight in payload["cities"]:
        world.cities.append(City(index, name, country_index, lat, lon, weight))
        world._cities_by_country.setdefault(country_index, []).append(index)
    for index, name, org_type, country_index, city_index, asn, weight in payload[
        "organizations"
    ]:
        world.organizations.append(
            Organization(index, name, org_type, country_index, city_index, asn, weight)
        )
        world._orgs_by_country.setdefault(country_index, []).append(index)
    return world


def _meta_payload(ds: AttackDataset) -> dict:
    return {
        "colstore_version": COLSTORE_VERSION,
        "window": {"start": int(ds.window.start), "end": int(ds.window.end)},
        "families": list(ds.families),
        "active_families": list(ds.active_families),
        "world": _world_payload(ds.world),
        "botnets": [
            [b.botnet_id, b.family, b.controller_ip, b.first_seen, b.last_seen]
            for b in ds.botnets
        ],
    }


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def save_dataset_npz(ds: AttackDataset, path: str | Path) -> Path:
    """Write ``ds`` to ``path`` as an uncompressed columnar ``.npz``.

    Atomic: writes to a sibling temp file and renames over the target.
    """
    path = Path(path)
    reg = _obs_registry()
    with reg.span("colstore.save"):
        arrays: dict[str, np.ndarray] = {}
        for name in _ATTACK_COLS:
            arrays[f"attacks.{name}"] = getattr(ds, name)
        for name in _BOT_COLS:
            arrays[f"bots.{name}"] = getattr(ds.bots, name)
        for name in _VICTIM_COLS:
            arrays[f"victims.{name}"] = getattr(ds.victims, name)
        meta = json.dumps(_meta_payload(ds)).encode()
        arrays["__meta__"] = np.frombuffer(meta, dtype=np.uint8)

        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        tmp.replace(path)
        reg.counter("colstore.bytes_written").inc(path.stat().st_size)
    return path


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def _mmap_member(path: Path, fh, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member at its file offset."""
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ColstoreError(f"{path}: bad local header for {info.filename}")
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    fh.seek(info.header_offset + 30 + name_len + extra_len)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        raise ColstoreError(f"{path}: unsupported npy format {version}")
    if dtype.hasobject:
        raise ColstoreError(f"{path}: member {info.filename} has object dtype")
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, mode="r", dtype=dtype, shape=shape, offset=fh.tell(),
        order="F" if fortran else "C",
    )


def _read_members(path: Path, mmap: bool) -> tuple[dict[str, np.ndarray], bool]:
    """All archive members as arrays; returns (arrays, used_mmap)."""
    if mmap:
        try:
            out: dict[str, np.ndarray] = {}
            with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
                for info in zf.infolist():
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise ColstoreError(
                            f"{path}: compressed member {info.filename}"
                        )
                    name = info.filename.removesuffix(".npy")
                    out[name] = _mmap_member(path, fh, info)
            return out, True
        except ColstoreError:
            pass  # readable zip, unexpected layout: fall back to buffered
    with np.load(path) as npz:
        return {name: npz[name] for name in npz.files}, False


def load_dataset_npz(path: str | Path, *, mmap: bool = True) -> AttackDataset:
    """Load a dataset written by :func:`save_dataset_npz`.

    With ``mmap=True`` (the default) columns are memory-mapped read-only
    and page in on first touch; pass ``mmap=False`` to read everything
    into process memory (e.g. before deleting the file).
    """
    path = Path(path)
    reg = _obs_registry()
    with reg.span("colstore.load"):
        try:
            arrays, used_mmap = _read_members(path, mmap)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            if isinstance(exc, ColstoreError):
                raise
            raise ColstoreError(f"{path}: not a colstore archive ({exc})") from exc
        if "__meta__" not in arrays:
            raise ColstoreError(f"{path}: missing __meta__ member")
        meta = json.loads(bytes(np.asarray(arrays.pop("__meta__"))).decode())
        version = meta.get("colstore_version")
        if version != COLSTORE_VERSION:
            raise ColstoreError(
                f"{path}: colstore version {version} != {COLSTORE_VERSION}"
            )

        def group(prefix: str, names: tuple[str, ...]) -> dict[str, np.ndarray]:
            cols = {}
            for name in names:
                key = f"{prefix}.{name}"
                if key not in arrays:
                    raise ColstoreError(f"{path}: missing column {key}")
                cols[name] = arrays[key]
            return cols

        ds = AttackDataset(
            window=ObservationWindow(
                start=meta["window"]["start"], end=meta["window"]["end"]
            ),
            world=_world_restore(meta["world"]),
            families=list(meta["families"]),
            active_families=list(meta["active_families"]),
            bots=BotRegistry(**group("bots", _BOT_COLS)),
            victims=VictimRegistry(**group("victims", _VICTIM_COLS)),
            botnets=[
                BotnetRecord(
                    botnet_id=int(b[0]), family=b[1], controller_ip=int(b[2]),
                    first_seen=float(b[3]), last_seen=float(b[4]),
                )
                for b in meta["botnets"]
            ],
            **group("attacks", _ATTACK_COLS),
        )
        reg.counter("colstore.loads", mmap="true" if used_mmap else "false").inc()
    return ds
