"""Columnar binary dataset store: versioned ``.npz`` save/load with mmap reads.

The cold-load path.  A dataset is stored as one *uncompressed* ``.npz``
archive: every numpy column as its own member (``attacks.start``,
``bots.ip``, ``victims.lat``, …) plus a ``__meta__`` member holding the
JSON-encoded scalar state (format version, window, family lists, the
synthetic world, the Botnetlist).  Uncompressed members are raw ``.npy``
bytes at a fixed offset inside the zip, so :func:`load_dataset_npz` can
memory-map every column directly from the file — no text parsing, no
buffer copies, columns page in lazily as analyses touch them.  (Plain
``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
zip archives, which is why the member offsets are resolved by hand.)

Version policy: ``COLSTORE_VERSION`` is embedded in ``__meta__`` and
bumps on any layout change; a mismatch raises :class:`ColstoreError`
rather than guessing.  The dataset cache treats that like any other
corrupt entry (drop and regenerate); explicit `api.load` calls surface
the error to the caller.

Datasets too large for one archive are stored *sharded*: a directory
holding ``manifest.json``, a ``registries.npz`` with the scalar state
plus bot/victim registries, and one ``shard-NNNN.npz`` of attack
columns per time shard.  Shards partition the attack table by start
time (:func:`shard_edges`), every shard keeps the *global* observation
window, and :class:`ShardedDatasetStore` lazily mmap-loads individual
shards or concatenates them back into one dataset.  The streaming
builder appends closed epochs with :func:`append_shard`.

Instrumented: saves time under a ``colstore.save`` span and count bytes
in ``colstore.bytes_written``; loads time under ``colstore.load`` and
count in ``colstore.loads{mmap}``; the ``colstore.mmap`` gauge records
whether the most recent archive read actually memory-mapped (1.0) or
silently fell back to a buffered copy (0.0).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from ..core.dataset import AttackDataset, BotRegistry, VictimRegistry
from ..errors import FormatError
from ..geo.world import City, Country, Organization, World
from ..monitor.schemas import BotnetRecord
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow

__all__ = [
    "COLSTORE_VERSION",
    "SHARDED_VERSION",
    "UNSHARDED_LAYOUT",
    "ColstoreError",
    "ShardedDatasetStore",
    "append_shard",
    "concat_datasets",
    "is_sharded_store",
    "load_dataset_npz",
    "save_dataset_npz",
    "save_sharded_npz",
    "shard_edges",
]

#: Bumped on any incompatible layout change of the archive.
COLSTORE_VERSION = 1

#: Bumped on any incompatible layout change of the sharded directory store.
SHARDED_VERSION = 1

#: Manifest file name inside a sharded store directory.
MANIFEST_NAME = "manifest.json"

_REGISTRIES_NAME = "registries.npz"

#: Shard-layout token of a plain single-archive dataset (see ``io.cache``).
UNSHARDED_LAYOUT = ("unsharded",)

_ATTACK_COLS = (
    "start", "end", "family_idx", "botnet_id", "protocol", "target_idx",
    "magnitude", "part_offsets", "participants", "truth_collab_group",
    "truth_collab_kind", "truth_chain_id", "truth_symmetric",
    "truth_residual_km",
)
_BOT_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "family_idx", "botnet_id", "recruit_ts",
)
_VICTIM_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "owner_family_idx",
)


class ColstoreError(FormatError):
    """The file is not a valid colstore archive (or a newer version)."""


# ---------------------------------------------------------------------------
# metadata codec (everything that is not a numpy column)
# ---------------------------------------------------------------------------


def _world_payload(world: World) -> dict:
    return {
        "countries": [
            [c.index, c.code, c.name, c.lat, c.lon, c.weight] for c in world.countries
        ],
        "cities": [
            [c.index, c.name, c.country_index, c.lat, c.lon, c.weight]
            for c in world.cities
        ],
        "organizations": [
            [o.index, o.name, o.org_type, o.country_index, o.city_index, o.asn, o.weight]
            for o in world.organizations
        ],
    }


def _world_restore(payload: dict) -> World:
    world = World()
    for index, code, name, lat, lon, weight in payload["countries"]:
        world.countries.append(Country(index, code, name, lat, lon, weight))
        world._country_by_code[code] = index
    for index, name, country_index, lat, lon, weight in payload["cities"]:
        world.cities.append(City(index, name, country_index, lat, lon, weight))
        world._cities_by_country.setdefault(country_index, []).append(index)
    for index, name, org_type, country_index, city_index, asn, weight in payload[
        "organizations"
    ]:
        world.organizations.append(
            Organization(index, name, org_type, country_index, city_index, asn, weight)
        )
        world._orgs_by_country.setdefault(country_index, []).append(index)
    return world


def _meta_payload(ds: AttackDataset) -> dict:
    return {
        "colstore_version": COLSTORE_VERSION,
        "window": {"start": int(ds.window.start), "end": int(ds.window.end)},
        "families": list(ds.families),
        "active_families": list(ds.active_families),
        "world": _world_payload(ds.world),
        "botnets": [
            [b.botnet_id, b.family, b.controller_ip, b.first_seen, b.last_seen]
            for b in ds.botnets
        ],
    }


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def save_dataset_npz(ds: AttackDataset, path: str | Path) -> Path:
    """Write ``ds`` to ``path`` as an uncompressed columnar ``.npz``.

    Atomic: writes to a sibling temp file and renames over the target.
    """
    path = Path(path)
    reg = _obs_registry()
    with reg.span("colstore.save"):
        arrays: dict[str, np.ndarray] = {}
        for name in _ATTACK_COLS:
            arrays[f"attacks.{name}"] = getattr(ds, name)
        for name in _BOT_COLS:
            arrays[f"bots.{name}"] = getattr(ds.bots, name)
        for name in _VICTIM_COLS:
            arrays[f"victims.{name}"] = getattr(ds.victims, name)
        meta = json.dumps(_meta_payload(ds)).encode()
        arrays["__meta__"] = np.frombuffer(meta, dtype=np.uint8)

        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        tmp.replace(path)
        reg.counter("colstore.bytes_written").inc(path.stat().st_size)
    return path


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def _mmap_member(path: Path, fh, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one uncompressed ``.npy`` member at its file offset."""
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ColstoreError(f"{path}: bad local header for {info.filename}")
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    fh.seek(info.header_offset + 30 + name_len + extra_len)
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:
        raise ColstoreError(f"{path}: unsupported npy format {version}")
    if dtype.hasobject:
        raise ColstoreError(f"{path}: member {info.filename} has object dtype")
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, mode="r", dtype=dtype, shape=shape, offset=fh.tell(),
        order="F" if fortran else "C",
    )


def _read_members(path: Path, mmap: bool) -> tuple[dict[str, np.ndarray], bool]:
    """All archive members as arrays; returns (arrays, used_mmap).

    The ``colstore.mmap`` gauge records which branch actually served the
    read: 1.0 for memory-mapped members, 0.0 for the buffered fallback.
    """
    if mmap:
        try:
            out: dict[str, np.ndarray] = {}
            with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
                for info in zf.infolist():
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise ColstoreError(
                            f"{path}: compressed member {info.filename}"
                        )
                    name = info.filename.removesuffix(".npy")
                    out[name] = _mmap_member(path, fh, info)
            _obs_registry().gauge("colstore.mmap").set(1.0)
            return out, True
        except ColstoreError:
            pass  # readable zip, unexpected layout: fall back to buffered
    with np.load(path) as npz:
        out = {name: npz[name] for name in npz.files}
    _obs_registry().gauge("colstore.mmap").set(0.0)
    return out, False


def _pop_meta(arrays: dict[str, np.ndarray], path: Path) -> dict:
    """Decode and version-check the ``__meta__`` member."""
    if "__meta__" not in arrays:
        raise ColstoreError(f"{path}: missing __meta__ member")
    meta = json.loads(bytes(np.asarray(arrays.pop("__meta__"))).decode())
    version = meta.get("colstore_version")
    if version != COLSTORE_VERSION:
        raise ColstoreError(f"{path}: colstore version {version} != {COLSTORE_VERSION}")
    return meta


def _group_cols(
    arrays: dict[str, np.ndarray], prefix: str, names: tuple[str, ...], path: Path
) -> dict[str, np.ndarray]:
    cols = {}
    for name in names:
        key = f"{prefix}.{name}"
        if key not in arrays:
            raise ColstoreError(f"{path}: missing column {key}")
        cols[name] = arrays[key]
    return cols


def load_dataset_npz(path: str | Path, *, mmap: bool = True) -> AttackDataset:
    """Load a dataset written by :func:`save_dataset_npz`.

    With ``mmap=True`` (the default) columns are memory-mapped read-only
    and page in on first touch; pass ``mmap=False`` to read everything
    into process memory (e.g. before deleting the file).
    """
    path = Path(path)
    reg = _obs_registry()
    with reg.span("colstore.load"):
        try:
            arrays, used_mmap = _read_members(path, mmap)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            if isinstance(exc, ColstoreError):
                raise
            raise ColstoreError(f"{path}: not a colstore archive ({exc})") from exc
        meta = _pop_meta(arrays, path)
        ds = AttackDataset(
            window=ObservationWindow(
                start=meta["window"]["start"], end=meta["window"]["end"]
            ),
            world=_world_restore(meta["world"]),
            families=list(meta["families"]),
            active_families=list(meta["active_families"]),
            bots=BotRegistry(**_group_cols(arrays, "bots", _BOT_COLS, path)),
            victims=VictimRegistry(**_group_cols(arrays, "victims", _VICTIM_COLS, path)),
            botnets=[
                BotnetRecord(
                    botnet_id=int(b[0]), family=b[1], controller_ip=int(b[2]),
                    first_seen=float(b[3]), last_seen=float(b[4]),
                )
                for b in meta["botnets"]
            ],
            **_group_cols(arrays, "attacks", _ATTACK_COLS, path),
        )
        reg.counter("colstore.loads", mmap="true" if used_mmap else "false").inc()
    return ds


# ---------------------------------------------------------------------------
# sharded store: time-partitioned shard archives behind one manifest
# ---------------------------------------------------------------------------


def is_sharded_store(path: str | Path) -> bool:
    """True when ``path`` is a sharded store directory (has a manifest)."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def shard_edges(
    window: ObservationWindow,
    *,
    shards: int | None = None,
    window_seconds: float | None = None,
) -> np.ndarray:
    """Lower time boundaries of the shards covering ``window``.

    Pass exactly one of ``shards`` (that many equal-width shards) or
    ``window_seconds`` (fixed-width shards, the last one possibly
    short).  ``edges[0]`` is always ``window.start``; shard ``k`` owns
    attacks whose start falls in ``[edges[k], edges[k + 1])`` (the last
    shard is unbounded above).
    """
    if (shards is None) == (window_seconds is None):
        raise ValueError("pass exactly one of shards= or window_seconds=")
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return window.start + np.arange(shards) * (window.duration / shards)
    if window_seconds <= 0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    return np.arange(window.start, window.end, float(window_seconds), dtype=float)


def _partition_bounds(ds: AttackDataset, edges: np.ndarray) -> np.ndarray:
    """Row bounds per shard: shard ``k`` is rows ``[bounds[k], bounds[k+1])``."""
    cuts = np.searchsorted(ds.start, edges[1:], side="left")
    return np.concatenate(([0], cuts, [ds.n_attacks])).astype(np.int64)


def _slice_dataset(ds: AttackDataset, lo: int, hi: int) -> AttackDataset:
    """Rows ``[lo, hi)`` as a dataset sharing registries and the window.

    Attack columns are zero-copy views; ``part_offsets`` is rebased so
    the slice's participant CSR starts at zero.
    """
    po = ds.part_offsets
    return AttackDataset(
        window=ds.window,
        world=ds.world,
        families=list(ds.families),
        active_families=list(ds.active_families),
        bots=ds.bots,
        victims=ds.victims,
        botnets=list(ds.botnets),
        start=ds.start[lo:hi],
        end=ds.end[lo:hi],
        family_idx=ds.family_idx[lo:hi],
        botnet_id=ds.botnet_id[lo:hi],
        protocol=ds.protocol[lo:hi],
        target_idx=ds.target_idx[lo:hi],
        magnitude=ds.magnitude[lo:hi],
        part_offsets=po[lo : hi + 1] - po[lo],
        participants=ds.participants[po[lo] : po[hi]],
        truth_collab_group=ds.truth_collab_group[lo:hi],
        truth_collab_kind=ds.truth_collab_kind[lo:hi],
        truth_chain_id=ds.truth_chain_id[lo:hi],
        truth_symmetric=ds.truth_symmetric[lo:hi],
        truth_residual_km=ds.truth_residual_km[lo:hi],
    )


def _json_member(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _write_npz(path: Path, arrays: dict[str, np.ndarray]) -> int:
    """Atomically write one uncompressed ``.npz``; returns bytes written."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
    tmp.replace(path)
    return path.stat().st_size


def _registry_arrays(ds: AttackDataset) -> dict[str, np.ndarray]:
    arrays = {f"bots.{name}": getattr(ds.bots, name) for name in _BOT_COLS}
    for name in _VICTIM_COLS:
        arrays[f"victims.{name}"] = getattr(ds.victims, name)
    arrays["__meta__"] = _json_member(_meta_payload(ds))
    return arrays


def _shard_arrays(shard: AttackDataset) -> dict[str, np.ndarray]:
    arrays = {f"attacks.{name}": getattr(shard, name) for name in _ATTACK_COLS}
    # A shard remembers its own family list: spilled shards may predate
    # later family interning, so family_idx is remapped at load time.
    arrays["__meta__"] = _json_member(
        {"colstore_version": COLSTORE_VERSION, "families": list(shard.families)}
    )
    return arrays


def _shard_entry(index: int, shard: AttackDataset, t_lo: float) -> dict:
    n = int(shard.n_attacks)
    return {
        "file": f"shard-{index:04d}.npz",
        "n_attacks": n,
        "t_lo": float(t_lo),
        "t_first": float(shard.start[0]) if n else None,
        "t_last": float(shard.start[-1]) if n else None,
    }


def _write_manifest(path: Path, window: ObservationWindow, entries: list[dict]) -> dict:
    manifest = {
        "sharded_version": SHARDED_VERSION,
        "colstore_version": COLSTORE_VERSION,
        "n_shards": len(entries),
        "n_attacks": int(sum(e["n_attacks"] for e in entries)),
        "window": {"start": int(window.start), "end": int(window.end)},
        "shards": entries,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    tmp.replace(path)
    return manifest


def save_sharded_npz(
    ds: AttackDataset,
    path: str | Path,
    *,
    shards: int | None = None,
    window_seconds: float | None = None,
) -> Path:
    """Write ``ds`` to the directory ``path`` as a sharded store.

    The attack table is partitioned by start time into the shards named
    by :func:`shard_edges`; bot/victim registries and the scalar state
    go to one shared ``registries.npz``.  The manifest is written last,
    so a crashed save never leaves a loadable-but-partial store.
    """
    path = Path(path)
    reg = _obs_registry()
    edges = shard_edges(ds.window, shards=shards, window_seconds=window_seconds)
    with reg.span("colstore.save"):
        path.mkdir(parents=True, exist_ok=True)
        written = _write_npz(path / _REGISTRIES_NAME, _registry_arrays(ds))
        bounds = _partition_bounds(ds, edges)
        entries = []
        for k in range(edges.size):
            shard = _slice_dataset(ds, int(bounds[k]), int(bounds[k + 1]))
            entry = _shard_entry(k, shard, float(edges[k]))
            written += _write_npz(path / entry["file"], _shard_arrays(shard))
            entries.append(entry)
        _write_manifest(path / MANIFEST_NAME, ds.window, entries)
        reg.counter("colstore.bytes_written").inc(written)
    return path


def append_shard(path: str | Path, ds: AttackDataset) -> Path:
    """Append ``ds`` as the next time shard of the store at ``path``.

    Creates the store when ``path`` has no manifest yet.  The appended
    shard must start strictly after every attack already stored, so the
    shards keep forming a clean time partition; ``registries.npz`` and
    the manifest are rewritten from ``ds``'s scalar state, which (for
    the streaming spill path) is always a superset of the earlier
    shards' interning.
    """
    path = Path(path)
    if ds.n_attacks == 0:
        raise ValueError("refusing to append an empty shard")
    manifest_path = path / MANIFEST_NAME
    entries: list[dict] = []
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("sharded_version") != SHARDED_VERSION:
            raise ColstoreError(
                f"{path}: sharded version {manifest.get('sharded_version')}"
                f" != {SHARDED_VERSION}"
            )
        entries = list(manifest["shards"])
        last = max(
            (e["t_last"] for e in entries if e["t_last"] is not None), default=None
        )
        if last is not None and float(ds.start[0]) <= last:
            raise ValueError(
                f"new shard starts at {float(ds.start[0])!r}, which is not"
                f" strictly after the stored data's last start {last!r}"
            )
    reg = _obs_registry()
    with reg.span("colstore.save"):
        path.mkdir(parents=True, exist_ok=True)
        entry = _shard_entry(len(entries), ds, float(ds.start[0]))
        written = _write_npz(path / entry["file"], _shard_arrays(ds))
        written += _write_npz(path / _REGISTRIES_NAME, _registry_arrays(ds))
        entries.append(entry)
        _write_manifest(manifest_path, ds.window, entries)
        reg.counter("colstore.bytes_written").inc(written)
    return path


class ShardedDatasetStore:
    """N time-partitioned shards of one dataset behind a manifest.

    Two constructors: ``ShardedDatasetStore(path)`` opens a directory
    written by :func:`save_sharded_npz` / :func:`append_shard` (shards
    mmap-load lazily and share one registry load), and
    :meth:`partition` splits an in-memory dataset without touching
    disk.  Either way every shard dataset keeps the *global*
    observation window and shares the bot/victim registries, so global
    attack index = ``shard_bases()[k]`` + local index.
    """

    def __init__(self, path: str | Path, *, mmap: bool = True) -> None:
        self.path: Path | None = Path(path)
        self._mmap = mmap
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise ColstoreError(f"{path}: not a sharded store ({exc})") from exc
        if manifest.get("sharded_version") != SHARDED_VERSION:
            raise ColstoreError(
                f"{path}: sharded version {manifest.get('sharded_version')}"
                f" != {SHARDED_VERSION}"
            )
        self._entries: list[dict] = list(manifest["shards"])
        self.window = ObservationWindow(
            start=manifest["window"]["start"], end=manifest["window"]["end"]
        )
        self.edges = np.array([e["t_lo"] for e in self._entries], dtype=float)
        self.n_attacks = int(manifest["n_attacks"])
        self._counts = np.array([e["n_attacks"] for e in self._entries], dtype=np.int64)
        self._shared: dict | None = None
        self._datasets: list[AttackDataset | None] = [None] * len(self._entries)

    @classmethod
    def partition(
        cls,
        ds: AttackDataset,
        *,
        shards: int | None = None,
        window_seconds: float | None = None,
    ) -> "ShardedDatasetStore":
        """Split an in-memory dataset into time shards (no disk I/O)."""
        edges = shard_edges(ds.window, shards=shards, window_seconds=window_seconds)
        bounds = _partition_bounds(ds, edges)
        store = cls.__new__(cls)
        store.path = None
        store._mmap = False
        store._entries = []
        store.window = ds.window
        store.edges = edges
        store.n_attacks = int(ds.n_attacks)
        store._counts = np.diff(bounds)
        store._shared = None
        store._datasets = [
            _slice_dataset(ds, int(bounds[k]), int(bounds[k + 1]))
            for k in range(edges.size)
        ]
        return store

    @property
    def n_shards(self) -> int:
        return len(self._datasets)

    def shard_bases(self) -> np.ndarray:
        """Global attack index of each shard's first row."""
        return np.concatenate(([0], np.cumsum(self._counts)[:-1])).astype(np.int64)

    def layout_key(self) -> tuple:
        """Hashable shard-layout token: count plus boundary timestamps."""
        return ("sharded", self.n_shards, tuple(float(e) for e in self.edges))

    def _shared_state(self) -> dict:
        if self._shared is None:
            path = self.path / _REGISTRIES_NAME
            arrays, _ = _read_members(path, self._mmap)
            meta = _pop_meta(arrays, path)
            self._shared = {
                "window": ObservationWindow(
                    start=meta["window"]["start"], end=meta["window"]["end"]
                ),
                "world": _world_restore(meta["world"]),
                "families": list(meta["families"]),
                "active_families": list(meta["active_families"]),
                "bots": BotRegistry(**_group_cols(arrays, "bots", _BOT_COLS, path)),
                "victims": VictimRegistry(
                    **_group_cols(arrays, "victims", _VICTIM_COLS, path)
                ),
                "botnets": [
                    BotnetRecord(
                        botnet_id=int(b[0]), family=b[1], controller_ip=int(b[2]),
                        first_seen=float(b[3]), last_seen=float(b[4]),
                    )
                    for b in meta["botnets"]
                ],
            }
        return self._shared

    def load_shard(self, index: int) -> AttackDataset:
        """The shard dataset at ``index`` (cached; mmap on disk stores)."""
        ds = self._datasets[index]
        if ds is None:
            entry = self._entries[index]
            path = self.path / entry["file"]
            with _obs_registry().span("colstore.load"):
                arrays, _ = _read_members(path, self._mmap)
                meta = _pop_meta(arrays, path)
                shared = self._shared_state()
                cols = _group_cols(arrays, "attacks", _ATTACK_COLS, path)
                shard_families = list(meta["families"])
                if shard_families != shared["families"]:
                    mapping = np.array(
                        [shared["families"].index(name) for name in shard_families],
                        dtype=np.asarray(cols["family_idx"]).dtype,
                    )
                    cols["family_idx"] = mapping[np.asarray(cols["family_idx"])]
                ds = AttackDataset(
                    window=shared["window"],
                    world=shared["world"],
                    families=list(shared["families"]),
                    active_families=list(shared["active_families"]),
                    bots=shared["bots"],
                    victims=shared["victims"],
                    botnets=list(shared["botnets"]),
                    **cols,
                )
            self._datasets[index] = ds
        return ds

    def shard_signature(self, index: int) -> tuple:
        """Cheap content signature of one shard: (rows, t_lo, first, last).

        The same tuple for the same slice of data whether the store is a
        disk directory or an in-memory partition, so merge memo entries
        (see :class:`repro.io.cache.MergeCache`) transfer between the
        two.  It is a manifest-level fingerprint — it does not hash the
        columns — which is the same trust level the manifest itself gets.
        """
        if self._entries:
            entry = self._entries[index]
            return (
                int(entry["n_attacks"]),
                float(entry["t_lo"]),
                None if entry["t_first"] is None else float(entry["t_first"]),
                None if entry["t_last"] is None else float(entry["t_last"]),
            )
        ds = self._datasets[index]
        n = int(ds.n_attacks)
        return (
            n,
            float(self.edges[index]),
            float(ds.start[0]) if n else None,
            float(ds.start[-1]) if n else None,
        )

    def refresh(self) -> tuple[int, bool]:
        """Re-read the manifest after an :func:`append_shard`.

        Returns ``(appended, registries_reset)``.  Existing shard
        entries must be unchanged — a rewritten store (different files
        or counts for already-known shards) raises rather than silently
        serving mixed data.  ``registries_reset`` is True when the
        append rewrote ``registries.npz`` with different scalar state
        (new families/bots/victims interned), in which case every cached
        shard dataset was dropped: the old ones index the old registries.
        """
        if self.path is None:
            return 0, False
        manifest_path = self.path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("sharded_version") != SHARDED_VERSION:
            raise ColstoreError(
                f"{self.path}: sharded version {manifest.get('sharded_version')}"
                f" != {SHARDED_VERSION}"
            )
        new_entries = list(manifest["shards"])
        if len(new_entries) < len(self._entries) or any(
            new["file"] != old["file"] or new["n_attacks"] != old["n_attacks"]
            for new, old in zip(new_entries, self._entries)
        ):
            raise ColstoreError(
                f"{self.path}: store was rewritten, not appended; reopen it"
            )
        appended = len(new_entries) - len(self._entries)
        if appended == 0:
            return 0, False
        reset = False
        if self._shared is not None:
            path = self.path / _REGISTRIES_NAME
            arrays, _ = _read_members(path, self._mmap)
            meta = _pop_meta(arrays, path)
            shared = self._shared
            if (
                list(meta["families"]) != shared["families"]
                or int(meta["window"]["start"]) != int(shared["window"].start)
                or int(meta["window"]["end"]) != int(shared["window"].end)
                or len(meta["botnets"]) != len(shared["botnets"])
                or np.asarray(arrays["bots.ip"]).size != shared["bots"].ip.size
                or np.asarray(arrays["victims.ip"]).size != shared["victims"].ip.size
            ):
                reset = True
                self._shared = None
                self._datasets = [None] * len(new_entries)
        if not reset:
            self._datasets = self._datasets + [None] * appended
        self._entries = new_entries
        self.window = ObservationWindow(
            start=manifest["window"]["start"], end=manifest["window"]["end"]
        )
        self.edges = np.array([e["t_lo"] for e in new_entries], dtype=float)
        self.n_attacks = int(manifest["n_attacks"])
        self._counts = np.array(
            [e["n_attacks"] for e in new_entries], dtype=np.int64
        )
        return appended, reset

    def merged_dataset(self) -> AttackDataset:
        """All shards concatenated back into one dataset.

        Always rebuilds by concatenation — also for in-memory
        partitions — so the merged columns are bitwise what the shards
        actually hold, never a reference to some original.
        """
        return concat_datasets([self.load_shard(i) for i in range(self.n_shards)])


class GrowableConcat:
    """Concatenated attack columns with reserved tail capacity.

    ``concat_datasets`` re-copies every row each time the merged table
    grows by one shard, which makes an incremental re-merge O(total
    rows) in memcpy alone.  This variant allocates each column with
    ``reserve`` fractional headroom so that appending a shard only
    copies the *new* rows into the reserved tail; the previously
    returned dataset stays valid because its views cover an immutable
    prefix of the same buffers.

    ``extend`` returns ``None`` once the headroom is exhausted — the
    caller falls back to a fresh copy (typically by building a new
    ``GrowableConcat``, which restores the headroom).
    """

    _COLS = (
        "start", "end", "family_idx", "botnet_id", "protocol",
        "target_idx", "magnitude", "truth_collab_group",
        "truth_collab_kind", "truth_chain_id", "truth_symmetric",
        "truth_residual_km",
    )

    def __init__(self, parts: list[AttackDataset], *, reserve: float = 0.5):
        first = parts[0]
        self._template = first
        rows = sum(np.asarray(p.part_offsets).size - 1 for p in parts)
        flat = sum(int(np.asarray(p.part_offsets)[-1]) for p in parts)
        self._cap_rows = rows + max(int(rows * reserve), 1)
        self._cap_flat = flat + max(int(flat * reserve), 1)
        self._bufs = {
            name: np.empty(self._cap_rows, dtype=np.asarray(getattr(first, name)).dtype)
            for name in self._COLS
        }
        self._bufs["participants"] = np.empty(
            self._cap_flat, dtype=np.asarray(first.participants).dtype
        )
        self._off = np.empty(self._cap_rows + 1, dtype=np.int64)
        self._off[0] = 0
        self._n_rows = 0
        self._n_flat = 0
        self._copy_in(parts)
        self.dataset = self._snapshot()

    def _copy_in(self, parts: list[AttackDataset]) -> None:
        for p in parts:
            po = np.asarray(p.part_offsets)
            rows = po.size - 1
            flat = int(po[-1])
            r0, f0 = self._n_rows, self._n_flat
            for name in self._COLS:
                self._bufs[name][r0:r0 + rows] = np.asarray(getattr(p, name))
            self._bufs["participants"][f0:f0 + flat] = np.asarray(p.participants)
            self._off[r0 + 1:r0 + rows + 1] = po[1:] + f0
            self._n_rows = r0 + rows
            self._n_flat = f0 + flat

    def _snapshot(self) -> AttackDataset:
        first = self._template
        cols = {name: self._bufs[name][: self._n_rows] for name in self._COLS}
        return AttackDataset(
            window=first.window,
            world=first.world,
            families=list(first.families),
            active_families=list(first.active_families),
            bots=first.bots,
            victims=first.victims,
            botnets=list(first.botnets),
            part_offsets=self._off[: self._n_rows + 1],
            participants=self._bufs["participants"][: self._n_flat],
            **cols,
        )

    def extend(self, parts: list[AttackDataset]) -> AttackDataset | None:
        """Append ``parts`` in place; ``None`` if headroom is exhausted."""
        rows = sum(np.asarray(p.part_offsets).size - 1 for p in parts)
        flat = sum(int(np.asarray(p.part_offsets)[-1]) for p in parts)
        if self._n_rows + rows > self._cap_rows or self._n_flat + flat > self._cap_flat:
            return None
        self._copy_in(parts)
        self.dataset = self._snapshot()
        return self.dataset


def concat_datasets(parts: list[AttackDataset]) -> AttackDataset:
    """Concatenate attack tables that share registries and window.

    Parts must be in time order (each part's starts after the previous
    part's); the incremental merge uses this with the previous merged
    dataset as one big leading part.
    """
    first = parts[0]

    def cat(name: str) -> np.ndarray:
        return np.concatenate([np.asarray(getattr(p, name)) for p in parts])

    offsets = [np.zeros(1, dtype=np.int64)]
    base = 0
    for p in parts:
        po = np.asarray(p.part_offsets)
        offsets.append(po[1:] + base)
        base += int(po[-1])
    return AttackDataset(
        window=first.window,
        world=first.world,
        families=list(first.families),
        active_families=list(first.active_families),
        bots=first.bots,
        victims=first.victims,
        botnets=list(first.botnets),
        start=cat("start"),
        end=cat("end"),
        family_idx=cat("family_idx"),
        botnet_id=cat("botnet_id"),
        protocol=cat("protocol"),
        target_idx=cat("target_idx"),
        magnitude=cat("magnitude"),
        part_offsets=np.concatenate(offsets),
        participants=cat("participants"),
        truth_collab_group=cat("truth_collab_group"),
        truth_collab_kind=cat("truth_collab_kind"),
        truth_chain_id=cat("truth_chain_id"),
        truth_symmetric=cat("truth_symmetric"),
        truth_residual_km=cat("truth_residual_km"),
    )
