"""Persistence: schema exports (CSV/JSONL) and dataset caching."""

from .cache import config_key, load_dataset, load_or_generate, save_dataset
from .csvio import (
    ATTACK_FIELDS,
    export_attacks_csv,
    export_botlist_csv,
    export_botnetlist_csv,
    read_attacks_csv,
)
from .figures import FIGURE_EXPORTERS, export_figure_data
from .ingest import IngestError, dataset_from_records
from .jsonlio import (
    append_attacks_jsonl,
    export_attacks_jsonl,
    iter_attacks_jsonl,
    read_attacks_jsonl,
    record_from_json,
    record_to_json,
)

__all__ = [
    "config_key",
    "load_dataset",
    "load_or_generate",
    "save_dataset",
    "ATTACK_FIELDS",
    "export_attacks_csv",
    "export_botlist_csv",
    "export_botnetlist_csv",
    "read_attacks_csv",
    "FIGURE_EXPORTERS",
    "IngestError",
    "dataset_from_records",
    "export_figure_data",
    "append_attacks_jsonl",
    "export_attacks_jsonl",
    "iter_attacks_jsonl",
    "read_attacks_jsonl",
    "record_from_json",
    "record_to_json",
]
