"""Figure-series exporters: dump the data behind every figure as CSV.

The experiment modules report comparison *rows*; plotting needs the full
*series* (CDF curves, daily counts, histograms, timelines).  This module
writes one CSV per figure into a directory, ready for any plotting tool:

>>> export_figure_data(ds, "figures/")
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..core import consecutive, durations, geolocation, intervals, overview, shift
from ..core.dataset import AttackDataset

__all__ = ["export_figure_data", "FIGURE_EXPORTERS"]


def _write_csv(path: Path, header: list[str], rows) -> int:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        n = 0
        for row in rows:
            writer.writerow(row)
            n += 1
    return n


def _fig2_daily(ds: AttackDataset, out: Path) -> int:
    daily = overview.daily_attack_counts(ds)
    return _write_csv(
        out / "fig2_daily_attacks.csv",
        ["day_index", "date", "attacks"],
        (
            (day, ds.window.day_label(day), int(count))
            for day, count in enumerate(daily.counts[: ds.window.n_days])
        ),
    )


def _fig3_interval_cdf(ds: AttackDataset, out: Path) -> int:
    gaps = intervals.attack_intervals(ds)
    xs = np.sort(gaps)
    ps = np.arange(1, xs.size + 1) / xs.size
    return _write_csv(
        out / "fig3_interval_cdf_all.csv",
        ["interval_seconds", "cdf"],
        ((float(x), float(p)) for x, p in zip(xs, ps)),
    )


def _fig5_family_cdfs(ds: AttackDataset, out: Path) -> int:
    rows = []
    for family in ds.active_families:
        gaps = intervals.family_intervals(ds, family)
        if gaps.size == 0:
            continue
        xs = np.sort(gaps)
        ps = np.arange(1, xs.size + 1) / xs.size
        rows.extend((family, float(x), float(p)) for x, p in zip(xs, ps))
    return _write_csv(
        out / "fig5_family_interval_cdf.csv", ["family", "interval_seconds", "cdf"], rows
    )


def _fig6_duration_timeline(ds: AttackDataset, out: Path) -> int:
    days, values, fams = durations.duration_timeline(ds)
    return _write_csv(
        out / "fig6_duration_timeline.csv",
        ["day_index", "duration_seconds", "family"],
        (
            (int(d), float(v), ds.family_name(int(f)))
            for d, v, f in zip(days, values, fams)
        ),
    )


def _fig7_duration_cdf(ds: AttackDataset, out: Path) -> int:
    xs, ps = durations.duration_cdf(ds)
    return _write_csv(
        out / "fig7_duration_cdf.csv",
        ["duration_seconds", "cdf"],
        ((float(x), float(p)) for x, p in zip(xs, ps)),
    )


def _fig8_shift(ds: AttackDataset, out: Path) -> int:
    total = shift.aggregate_shift(ds)
    return _write_csv(
        out / "fig8_weekly_shift.csv",
        ["week", "bots_existing_countries", "bots_new_countries", "new_countries"],
        (
            (int(w), int(e), int(n), int(c))
            for w, e, n, c in zip(
                total.weeks, total.bots_existing, total.bots_new, total.new_countries
            )
        ),
    )


def _fig9_dispersion_cdfs(ds: AttackDataset, out: Path) -> int:
    rows = []
    for family in ds.active_families:
        if ds.attacks_of(family).size < 10:
            continue
        xs, ps = geolocation.dispersion_cdf(ds, family)
        rows.extend((family, float(x), float(p)) for x, p in zip(xs, ps))
    return _write_csv(
        out / "fig9_dispersion_cdf.csv", ["family", "dispersion_km", "cdf"], rows
    )


def _fig10_11_histograms(ds: AttackDataset, out: Path) -> int:
    rows = []
    for family in ("pandora", "blackenergy"):
        if family not in ds.active_families or ds.attacks_of(family).size < 10:
            continue
        edges, counts = geolocation.dispersion_histogram(ds, family)
        rows.extend(
            (family, float(edge), int(count)) for edge, count in zip(edges, counts)
        )
    return _write_csv(
        out / "fig10_11_dispersion_histograms.csv",
        ["family", "bin_left_km", "count"],
        rows,
    )


def _fig17_consecutive_cdf(ds: AttackDataset, out: Path) -> int:
    chains = consecutive.detect_chains(ds)
    if not chains or not any(c.gaps for c in chains):
        return _write_csv(out / "fig17_consecutive_gap_cdf.csv", ["gap_seconds", "cdf"], [])
    xs, ps = consecutive.consecutive_gap_cdf(ds, chains)
    return _write_csv(
        out / "fig17_consecutive_gap_cdf.csv",
        ["gap_seconds", "cdf"],
        ((float(x), float(p)) for x, p in zip(xs, ps)),
    )


def _fig18_chain_timeline(ds: AttackDataset, out: Path) -> int:
    dots = consecutive.chain_timeline(ds)
    return _write_csv(
        out / "fig18_chain_timeline.csv",
        ["timestamp", "target_index", "family", "magnitude"],
        dots,
    )


#: figure id -> exporter; each writes one CSV and returns its row count.
FIGURE_EXPORTERS = {
    "fig2": _fig2_daily,
    "fig3": _fig3_interval_cdf,
    "fig5": _fig5_family_cdfs,
    "fig6": _fig6_duration_timeline,
    "fig7": _fig7_duration_cdf,
    "fig8": _fig8_shift,
    "fig9": _fig9_dispersion_cdfs,
    "fig10_11": _fig10_11_histograms,
    "fig17": _fig17_consecutive_cdf,
    "fig18": _fig18_chain_timeline,
}


def export_figure_data(
    ds: AttackDataset, out_dir: str | Path, only: list[str] | None = None
) -> dict[str, int]:
    """Write the series behind each figure as CSV files.

    Returns ``{figure id: rows written}``.  ``only`` restricts the export
    to specific figure ids (see :data:`FIGURE_EXPORTERS`).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    selected = FIGURE_EXPORTERS if only is None else {
        key: FIGURE_EXPORTERS[key] for key in only
    }
    return {key: exporter(ds, out) for key, exporter in selected.items()}
