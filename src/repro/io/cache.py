"""Dataset caching: generate once, reuse across processes.

Full-scale generation takes on the order of a minute (the closed-loop
dispersion sampler dominates); the benchmark harness and examples cache
the result on disk, keyed by a stable hash of the configuration.
"""

from __future__ import annotations

import gzip
import hashlib
import pickle
from pathlib import Path

from ..core.dataset import AttackDataset
from ..datagen.config import DatasetConfig
from ..datagen.generator import generate_dataset

__all__ = ["config_key", "save_dataset", "load_dataset", "load_or_generate"]

_FORMAT_VERSION = 1


def config_key(config: DatasetConfig) -> str:
    """A stable short hash identifying a configuration (and cache entry)."""
    profiles = config.resolved_profiles()
    payload = repr(
        (
            _FORMAT_VERSION,
            config.seed,
            config.scale,
            (config.window.start, config.window.end),
            config.home_share,
            config.pulse_split_prob,
            config.gap_seconds,
            config.n_attacker_countries,
            config.n_victim_countries,
            sorted((name, repr(prof)) for name, prof in profiles.items()),
        )
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def save_dataset(ds: AttackDataset, path: str | Path) -> Path:
    """Serialise a dataset (gzip pickle).  Returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with gzip.open(tmp, "wb", compresslevel=4) as fh:
        pickle.dump((_FORMAT_VERSION, ds), fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def load_dataset(path: str | Path) -> AttackDataset:
    """Load a dataset written by :func:`save_dataset`.

    Only load files you created yourself — this is a pickle.
    """
    path = Path(path)
    with gzip.open(path, "rb") as fh:
        version, ds = pickle.load(fh)
    if version != _FORMAT_VERSION:
        raise ValueError(f"dataset file {path} has format v{version}, expected v{_FORMAT_VERSION}")
    if not isinstance(ds, AttackDataset):
        raise TypeError(f"dataset file {path} does not contain an AttackDataset")
    return ds


def load_or_generate(
    config: DatasetConfig, cache_dir: str | Path | None = None
) -> AttackDataset:
    """Return the dataset for ``config``, generating and caching on miss.

    ``cache_dir`` defaults to ``.repro-cache`` under the current
    directory.  Because a dataset is a pure function of its config, the
    cache key is just the config hash.
    """
    cache_dir = Path(cache_dir) if cache_dir is not None else Path(".repro-cache")
    path = cache_dir / f"dataset-{config_key(config)}.pkl.gz"
    if path.exists():
        try:
            return load_dataset(path)
        except (OSError, ValueError, TypeError, pickle.UnpicklingError):
            path.unlink(missing_ok=True)  # corrupt cache entry: regenerate
    ds = generate_dataset(config)
    save_dataset(ds, path)
    return ds
