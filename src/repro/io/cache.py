"""Dataset caching: generate once, reuse across processes.

Full-scale generation takes on the order of a minute (the closed-loop
dispersion sampler dominates); the benchmark harness and examples cache
the result on disk, keyed by a stable hash of the configuration.

Two artifacts live in the cache directory per configuration:

* ``dataset-<key>.npz`` — the generated :class:`AttackDataset` in the
  columnar binary store (:mod:`repro.io.colstore`), memory-mapped on
  load so repeat processes start in milliseconds;
* ``views-<key>.pkl.gz`` — a snapshot of the derived views memoized on
  the dataset's :class:`~repro.core.context.AnalysisContext`, written
  after an experiment battery so the next process starts warm.

Both are keyed by the same config hash, so a config change invalidates
them together.  The cache directory defaults to the ``REPRO_CACHE_DIR``
environment variable, falling back to ``.repro-cache``.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import pickle
from pathlib import Path

from ..core.context import AnalysisContext
from ..core.dataset import AttackDataset
from ..datagen.config import DatasetConfig
from ..datagen.generator import generate_dataset
from ..obs import registry as _obs_registry
from . import colstore

__all__ = [
    "MergeCache",
    "config_key",
    "resolve_cache_dir",
    "save_dataset",
    "load_dataset",
    "load_or_generate",
    "save_context_views",
    "load_context_views",
    "load_or_generate_context",
]

#: v2: generation pipeline re-keyed its seed streams per family/attack
#: (process-parallel shards), and the dataset cache moved from gzip
#: pickle to the colstore ``.npz`` archive.
_FORMAT_VERSION = 2
#: Version of the derived-view snapshot format.  Bump when the set or
#: shape of :class:`AnalysisContext` views changes incompatibly.
#: v2: the payload gained the shard-layout key — a snapshot taken over
#: one sharding (or the unsharded path) is rejected against any other.
_VIEWS_FORMAT_VERSION = 2


def config_key(config: DatasetConfig) -> str:
    """A stable short hash identifying a configuration (and cache entry)."""
    profiles = config.resolved_profiles()
    payload = repr(
        (
            _FORMAT_VERSION,
            config.seed,
            config.scale,
            (config.window.start, config.window.end),
            config.home_share,
            config.pulse_split_prob,
            config.gap_seconds,
            config.n_attacker_countries,
            config.n_victim_countries,
            sorted((name, repr(prof)) for name, prof in profiles.items()),
        )
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def resolve_cache_dir(cache_dir: str | Path | None = None) -> Path:
    """The effective cache directory.

    An explicit argument wins; otherwise the ``REPRO_CACHE_DIR``
    environment variable; otherwise ``.repro-cache`` under the current
    directory.
    """
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else Path(".repro-cache")


def save_dataset(ds: AttackDataset, path: str | Path) -> Path:
    """Serialise a dataset (gzip pickle).  Returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with gzip.open(tmp, "wb", compresslevel=4) as fh:
        pickle.dump((_FORMAT_VERSION, ds), fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def load_dataset(path: str | Path) -> AttackDataset:
    """Load a dataset written by :func:`save_dataset`.

    Only load files you created yourself — this is a pickle.
    """
    path = Path(path)
    with gzip.open(path, "rb") as fh:
        version, ds = pickle.load(fh)
    if version != _FORMAT_VERSION:
        raise ValueError(f"dataset file {path} has format v{version}, expected v{_FORMAT_VERSION}")
    if not isinstance(ds, AttackDataset):
        raise TypeError(f"dataset file {path} does not contain an AttackDataset")
    return ds


def load_or_generate(
    config: DatasetConfig,
    cache_dir: str | Path | None = None,
    *,
    jobs: int = 1,
) -> AttackDataset:
    """Return the dataset for ``config``, generating and caching on miss.

    ``cache_dir`` resolves via :func:`resolve_cache_dir`.  Because a
    dataset is a pure function of its config, the cache key is just the
    config hash — ``jobs`` only parallelises the regeneration, it never
    changes the result.  Cache entries are colstore ``.npz`` archives,
    memory-mapped on load.  Outcomes are counted into
    ``cache.dataset.hit`` / ``cache.dataset.miss`` (a corrupt or
    stale-version entry counts as a miss).
    """
    path = resolve_cache_dir(cache_dir) / f"dataset-{config_key(config)}.npz"
    if path.exists():
        try:
            ds = colstore.load_dataset_npz(path)
        except (OSError, ValueError, TypeError):
            path.unlink(missing_ok=True)  # corrupt cache entry: regenerate
        else:
            _obs_registry().counter("cache.dataset.hit").inc()
            return ds
    _obs_registry().counter("cache.dataset.miss").inc()
    ds = generate_dataset(config, jobs=jobs)
    colstore.save_dataset_npz(ds, path)
    return ds


def _views_path(config: DatasetConfig, cache_dir: str | Path | None) -> Path:
    return resolve_cache_dir(cache_dir) / f"views-{config_key(config)}.pkl.gz"


def save_context_views(
    ctx: AnalysisContext,
    config: DatasetConfig,
    cache_dir: str | Path | None = None,
    *,
    shard_layout: tuple | None = None,
) -> Path:
    """Snapshot the context's picklable derived views next to the dataset.

    The file records the views format version, the config key and the
    shard layout the views were derived under
    (:meth:`~repro.io.colstore.ShardedDatasetStore.layout_key`, or the
    unsharded sentinel), so a stale or mismatched snapshot is rejected
    on load rather than served — views built over one sharding carry
    shard-shaped intermediates and must not restore against another.
    """
    path = _views_path(config, cache_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    layout = colstore.UNSHARDED_LAYOUT if shard_layout is None else tuple(shard_layout)
    payload = (_VIEWS_FORMAT_VERSION, config_key(config), layout, ctx.export_views())
    tmp = path.with_suffix(path.suffix + ".tmp")
    with gzip.open(tmp, "wb", compresslevel=4) as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return path


def load_context_views(
    path: str | Path,
    expected_key: str,
    expected_layout: tuple = colstore.UNSHARDED_LAYOUT,
) -> dict:
    """Load a view snapshot written by :func:`save_context_views`.

    Raises ``ValueError`` on version, config-key or shard-layout
    mismatch.  Only load files you created yourself — this is a pickle.
    """
    with gzip.open(Path(path), "rb") as fh:
        payload = pickle.load(fh)
    version = payload[0] if isinstance(payload, tuple) and payload else None
    if version != _VIEWS_FORMAT_VERSION or len(payload) != 4:
        raise ValueError(f"view snapshot {path} has format v{version}, expected v{_VIEWS_FORMAT_VERSION}")
    _version, key, layout, views = payload
    if key != expected_key:
        raise ValueError(f"view snapshot {path} was built for config {key}, expected {expected_key}")
    if tuple(layout) != tuple(expected_layout):
        raise ValueError(
            f"view snapshot {path} was built under shard layout {layout!r}, "
            f"expected {tuple(expected_layout)!r}"
        )
    if not isinstance(views, dict):
        raise TypeError(f"view snapshot {path} does not contain a view dict")
    return views


#: Version of the merge-partial cache entries.  Bump when
#: :class:`~repro.core.merge.ShardPartial` (or anything else stored
#: through :class:`MergeCache`) changes incompatibly.
_MERGE_FORMAT_VERSION = 1


class MergeCache:
    """Disk memo for subtree merge results of the sharded reduce.

    Entries are keyed by a *kind* (today only ``"partial"``) and a
    fingerprint — the observation window plus the
    :meth:`~repro.io.colstore.ShardedDatasetStore.shard_signature` of
    every shard in the subtree's range — so a cold process re-merging
    the same store serves every unchanged subtree from disk, and an
    appended shard invalidates nothing but the spine.  The fingerprint
    is stored inside the entry and re-verified on load; any unreadable,
    corrupt, version-skewed or mismatching entry is a silent miss (the
    merge falls back to recombining), never an error.

    Only load cache directories you created yourself — entries are
    pickles.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.dir = resolve_cache_dir(cache_dir) / "merge"

    def _path(self, kind: str, fingerprint: tuple) -> Path:
        token = hashlib.sha256(
            repr((_MERGE_FORMAT_VERSION, kind, fingerprint)).encode()
        ).hexdigest()[:24]
        return self.dir / f"{kind}-{token}.pkl"

    def load(self, kind: str, fingerprint: tuple):
        """The cached value for ``(kind, fingerprint)``, or ``None``."""
        path = self._path(kind, fingerprint)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            version, stored_kind, stored_fp, value = payload
        except Exception:
            return None
        if (
            version != _MERGE_FORMAT_VERSION
            or stored_kind != kind
            or stored_fp != fingerprint
        ):
            return None
        return value

    def save(self, kind: str, fingerprint: tuple, value) -> Path:
        """Store ``value`` under ``(kind, fingerprint)`` (atomic write)."""
        path = self._path(kind, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(
                (_MERGE_FORMAT_VERSION, kind, fingerprint, value),
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        tmp.replace(path)
        return path


def load_or_generate_context(
    config: DatasetConfig, cache_dir: str | Path | None = None
) -> AnalysisContext:
    """The dataset for ``config`` wrapped in its shared analysis context.

    On top of :func:`load_or_generate`, restores any derived-view
    snapshot a previous battery saved for this exact config, so repeat
    invocations skip the collaboration/chain/dispersion scans entirely.
    A corrupt or mismatched snapshot is discarded, never served.
    Outcomes are counted into ``cache.views.hit`` / ``cache.views.miss``.
    """
    ctx = AnalysisContext.of(load_or_generate(config, cache_dir))
    path = _views_path(config, cache_dir)
    restored = False
    if path.exists():
        try:
            ctx.import_views(load_context_views(path, config_key(config)))
            restored = True
        except (OSError, ValueError, TypeError, pickle.UnpicklingError):
            path.unlink(missing_ok=True)
    _obs_registry().counter("cache.views.hit" if restored else "cache.views.miss").inc()
    return ctx
