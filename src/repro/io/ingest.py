"""Ingest external attack logs (Table I format) into an AttackDataset.

The analysis library is not tied to the synthetic generator: any log in
the paper's DDoSattack schema — e.g. a CSV exported from a real
monitoring system — can be ingested and run through the attack-level
analyses (intervals, durations, daily distribution, targets,
collaborations, consecutive chains, next-attack prediction).

Ingested datasets have **no Botlist side**: the participant arrays are
empty, so analyses that need per-bot geolocation (Fig 8 shifts, Figs 9-13
dispersion/prediction, Table III's attacker side) raise or return
degenerate values.  Everything keyed on the attack table alone works.

The world model is reconstructed from the records themselves: one
country per distinct ISO code (coordinates from the built-in country
table when known, otherwise from the records), one city per distinct
city string, one organization per distinct organization string.

Since the streaming subsystem landed, the batch build *is* a one-batch
stream: :func:`dataset_from_records` folds the records into a
:class:`~repro.stream.builder.StreamingDataset` and materialises the
snapshot, so batch and incremental builds can never drift apart.
Malformed input raises :class:`~repro.stream.builder.IngestError`
(a ``ValueError``) carrying the offending record's index; pass
``strict=False`` to drop malformed records instead.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.dataset import AttackDataset
from ..monitor.schemas import DDoSAttackRecord
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow
from ..stream.builder import IngestError, StreamingDataset

__all__ = ["dataset_from_records", "IngestError"]


def dataset_from_records(
    records: Iterable[DDoSAttackRecord],
    window: ObservationWindow | None = None,
    *,
    strict: bool = True,
) -> AttackDataset:
    """Build an attack-table-only dataset from Table I records.

    ``records`` may be any iterable, including a generator (it is
    consumed exactly once).  ``window`` defaults to the records' own
    time span (padded to whole days).  With ``strict`` (the default) a
    malformed record — wrong type, negative duration — raises
    :class:`IngestError` with its position in the input; with
    ``strict=False`` malformed records are dropped.  Empty input (or
    input left empty after dropping) raises :class:`IngestError`.

    The build runs under an ``ingest`` stage span and counts accepted
    records into ``ingest.records``.
    """
    reg = _obs_registry()
    with reg.span("ingest"):
        stream = StreamingDataset(window=window)
        accepted = stream.append_batch(records, strict=strict)
        if stream.n_attacks == 0:
            raise IngestError("no records to ingest")
        reg.counter("ingest.records").inc(accepted)
        return stream.dataset()
