"""Ingest external attack logs (Table I format) into an AttackDataset.

The analysis library is not tied to the synthetic generator: any log in
the paper's DDoSattack schema — e.g. a CSV exported from a real
monitoring system — can be ingested and run through the attack-level
analyses (intervals, durations, daily distribution, targets,
collaborations, consecutive chains, next-attack prediction).

Ingested datasets have **no Botlist side**: the participant arrays are
empty, so analyses that need per-bot geolocation (Fig 8 shifts, Figs 9-13
dispersion/prediction, Table III's attacker side) raise or return
degenerate values.  Everything keyed on the attack table alone works.

The world model is reconstructed from the records themselves: one
country per distinct ISO code (coordinates from the built-in country
table when known, otherwise from the records), one city per distinct
city string, one organization per distinct organization string.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.dataset import AttackDataset, BotRegistry, VictimRegistry
from ..geo.world import COUNTRY_TABLE, City, Country, Organization, World
from ..monitor.schemas import BotnetRecord, DDoSAttackRecord
from ..simulation.clock import ObservationWindow

__all__ = ["dataset_from_records"]

_KNOWN_CENTROIDS = {code: (lat, lon) for code, _n, lat, lon, _w in COUNTRY_TABLE}


def _build_world(records: list[DDoSAttackRecord]) -> tuple[World, dict, dict, dict]:
    """A minimal world covering exactly what the records mention."""
    world = World()
    country_of: dict[str, int] = {}
    city_of: dict[str, int] = {}
    org_of: dict[str, int] = {}

    for rec in records:
        if rec.country_code not in country_of:
            lat, lon = _KNOWN_CENTROIDS.get(rec.country_code, (rec.lat, rec.lon))
            country = Country(
                index=len(world.countries),
                code=rec.country_code,
                name=rec.country_code,
                lat=lat,
                lon=lon,
                weight=1.0,
            )
            world.countries.append(country)
            world._country_by_code[rec.country_code] = country.index
            world._cities_by_country[country.index] = []
            world._orgs_by_country[country.index] = []
            country_of[rec.country_code] = country.index
    for rec in records:
        c_idx = country_of[rec.country_code]
        if rec.city not in city_of:
            city = City(
                index=len(world.cities),
                name=rec.city,
                country_index=c_idx,
                lat=rec.lat,
                lon=rec.lon,
                weight=1.0,
            )
            world.cities.append(city)
            world._cities_by_country[c_idx].append(city.index)
            city_of[rec.city] = city.index
        if rec.organization not in org_of:
            org = Organization(
                index=len(world.organizations),
                name=rec.organization,
                org_type="unknown",
                country_index=c_idx,
                city_index=city_of[rec.city],
                asn=rec.asn,
                weight=1.0,
            )
            world.organizations.append(org)
            world._orgs_by_country[c_idx].append(org.index)
            org_of[rec.organization] = org.index
    return world, country_of, city_of, org_of


def dataset_from_records(
    records: Iterable[DDoSAttackRecord],
    window: ObservationWindow | None = None,
) -> AttackDataset:
    """Build an attack-table-only dataset from Table I records.

    ``window`` defaults to the records' own time span (padded to whole
    days).  Raises ``ValueError`` for empty input or records with
    negative durations.
    """
    records = sorted(records, key=lambda r: (r.timestamp, r.botnet_id))
    if not records:
        raise ValueError("no records to ingest")
    for rec in records:
        if rec.end_time < rec.timestamp:
            raise ValueError(f"record {rec.ddos_id} ends before it starts")

    if window is None:
        start = int(min(r.timestamp for r in records))
        end = int(max(r.end_time for r in records)) + 1
        span = max(end - start, 86400)
        window = ObservationWindow(start=start, end=start + ((span + 86399) // 86400) * 86400)

    world, country_of, city_of, org_of = _build_world(records)
    families = sorted({r.family for r in records})
    family_of = {name: i for i, name in enumerate(families)}

    # Victim registry: one row per distinct target IP.
    target_of: dict[int, int] = {}
    v_ip, v_lat, v_lon, v_cc, v_city, v_org, v_asn = [], [], [], [], [], [], []
    for rec in records:
        if rec.target_ip not in target_of:
            target_of[rec.target_ip] = len(v_ip)
            v_ip.append(rec.target_ip)
            v_lat.append(rec.lat)
            v_lon.append(rec.lon)
            v_cc.append(country_of[rec.country_code])
            v_city.append(city_of[rec.city])
            v_org.append(org_of[rec.organization])
            v_asn.append(rec.asn)
    victims = VictimRegistry(
        ip=np.asarray(v_ip, dtype=np.uint64),
        lat=np.asarray(v_lat, dtype=float),
        lon=np.asarray(v_lon, dtype=float),
        country_idx=np.asarray(v_cc, dtype=np.int16),
        city_idx=np.asarray(v_city, dtype=np.int32),
        org_idx=np.asarray(v_org, dtype=np.int32),
        asn=np.asarray(v_asn, dtype=np.int32),
        owner_family_idx=np.full(len(v_ip), -1, dtype=np.int16),
    )

    empty = np.zeros(0)
    bots = BotRegistry(
        ip=np.zeros(0, dtype=np.uint64),
        lat=empty,
        lon=empty,
        country_idx=np.zeros(0, dtype=np.int16),
        city_idx=np.zeros(0, dtype=np.int32),
        org_idx=np.zeros(0, dtype=np.int32),
        asn=np.zeros(0, dtype=np.int32),
        family_idx=np.zeros(0, dtype=np.int16),
        botnet_id=np.zeros(0, dtype=np.int32),
        recruit_ts=empty,
    )

    # Botnet roster: one record per distinct id, span = observed activity.
    seen: dict[int, list] = {}
    for rec in records:
        entry = seen.setdefault(rec.botnet_id, [rec.family, rec.timestamp, rec.end_time])
        entry[1] = min(entry[1], rec.timestamp)
        entry[2] = max(entry[2], rec.end_time)
    botnets = [
        BotnetRecord(
            botnet_id=bid, family=fam, controller_ip=0, first_seen=lo, last_seen=hi
        )
        for bid, (fam, lo, hi) in sorted(seen.items())
    ]

    n = len(records)
    return AttackDataset(
        window=window,
        world=world,
        families=families,
        active_families=families,
        bots=bots,
        victims=victims,
        botnets=botnets,
        start=np.asarray([r.timestamp for r in records], dtype=float),
        end=np.asarray([r.end_time for r in records], dtype=float),
        family_idx=np.asarray([family_of[r.family] for r in records], dtype=np.int16),
        botnet_id=np.asarray([r.botnet_id for r in records], dtype=np.int32),
        protocol=np.asarray([int(r.category) for r in records], dtype=np.int8),
        target_idx=np.asarray([target_of[r.target_ip] for r in records], dtype=np.int32),
        magnitude=np.asarray([r.magnitude for r in records], dtype=np.int32),
        part_offsets=np.zeros(n + 1, dtype=np.int64),
        participants=np.zeros(0, dtype=np.int64),
        truth_collab_group=np.full(n, -1, dtype=np.int32),
        truth_collab_kind=np.zeros(n, dtype=np.int8),
        truth_chain_id=np.full(n, -1, dtype=np.int32),
        truth_symmetric=np.zeros(n, dtype=bool),
        truth_residual_km=np.zeros(n, dtype=np.float64),
    )
