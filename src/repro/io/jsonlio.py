"""JSONL export of the attack schema (one JSON object per attack).

A line-oriented sibling of :mod:`repro.io.csvio` for pipelines that
prefer structured rows (e.g. jq / log processors).  The row codec is
shared with the streaming tailer (:class:`repro.stream.watch.JsonlTail`),
which re-parses only the lines appended since its last poll.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from ..core.dataset import AttackDataset
from ..geo.ipam import str_to_ip
from ..monitor.schemas import DDoSAttackRecord, Protocol

__all__ = [
    "export_attacks_jsonl",
    "append_attacks_jsonl",
    "read_attacks_jsonl",
    "iter_attacks_jsonl",
    "record_from_json",
    "record_to_json",
]


def record_to_json(rec: DDoSAttackRecord) -> dict:
    """The JSONL row for one attack record."""
    return {
        "ddos_id": rec.ddos_id,
        "botnet_id": rec.botnet_id,
        "family": rec.family,
        "category": rec.category.name,
        "target_ip": rec.target_ip_str,
        "timestamp": rec.timestamp,
        "end_time": rec.end_time,
        "asn": rec.asn,
        "cc": rec.country_code,
        "city": rec.city,
        "organization": rec.organization,
        "latitude": rec.lat,
        "longitude": rec.lon,
        "magnitude": rec.magnitude,
    }


def record_from_json(row: dict) -> DDoSAttackRecord:
    """Decode one JSONL row back into an attack record."""
    return DDoSAttackRecord(
        ddos_id=int(row["ddos_id"]),
        botnet_id=int(row["botnet_id"]),
        family=row["family"],
        category=Protocol.from_name(row["category"]),
        target_ip=str_to_ip(row["target_ip"]),
        timestamp=float(row["timestamp"]),
        end_time=float(row["end_time"]),
        asn=int(row["asn"]),
        country_code=row["cc"],
        city=row["city"],
        organization=row["organization"],
        lat=float(row["latitude"]),
        lon=float(row["longitude"]),
        magnitude=int(row["magnitude"]),
    )


def export_attacks_jsonl(ds: AttackDataset, path: str | Path) -> int:
    """Write one JSON object per attack; returns the row count."""
    path = Path(path)
    n = 0
    with path.open("w") as fh:
        for rec in ds.iter_attacks():
            fh.write(json.dumps(record_to_json(rec), separators=(",", ":")) + "\n")
            n += 1
    return n


def append_attacks_jsonl(records, path: str | Path) -> int:
    """Append records to a JSONL log (the producer side of ``watch``)."""
    path = Path(path)
    n = 0
    with path.open("a") as fh:
        for rec in records:
            fh.write(json.dumps(record_to_json(rec), separators=(",", ":")) + "\n")
            n += 1
    return n


def iter_attacks_jsonl(path: str | Path) -> Iterator[DDoSAttackRecord]:
    """Lazily yield attack records from a JSONL file (blank lines skipped)."""
    path = Path(path)
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            yield record_from_json(row)


def read_attacks_jsonl(path: str | Path) -> list[DDoSAttackRecord]:
    """Read attack records from a JSONL file written by the exporter."""
    return list(iter_attacks_jsonl(path))
