"""StreamingDataset: the append path of the reproduction.

The paper's vendor pipeline is a *continuous* monitoring service —
attacks accumulate over 207 days — while the batch builders
(:func:`repro.io.ingest.dataset_from_records`,
:func:`repro.datagen.generator.generate_dataset`) rebuild everything
from scratch.  :class:`StreamingDataset` closes that gap: it accepts
batches of :class:`~repro.monitor.schemas.DDoSAttackRecord`\\ s, keeps
the per-attack columns sorted by start time with amortized merges, and
materialises :class:`~repro.core.dataset.AttackDataset` snapshots whose
:class:`~repro.core.context.AnalysisContext` views are maintained
*incrementally* (see :mod:`repro.stream.incremental`).

Equivalence contract: after any sequence of ``append_batch`` calls, the
materialised dataset equals ``dataset_from_records`` over the same
records in the same arrival order — the batch builder is in fact a
one-batch stream.  When batches arrive in chronological order (each
batch's first record not earlier than the previous batch's last), the
appends take the in-place fast path and snapshot views are carried
forward in O(batch); an out-of-order batch triggers a stable merge and
a cold (lazy) view rebuild for the next snapshot.

Entity interning (world countries/cities/organizations, victims,
botnets) happens in arrival order.  For in-order streams that is the
same first-appearance order the scratch build uses, so snapshots are
cell-for-cell identical; out-of-order streams keep the same joined
*content* but may number entities differently.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import numpy as np

from ..core.context import AnalysisContext
from ..core.dataset import AttackDataset, BotRegistry, VictimRegistry
from ..errors import IngestError
from ..geo.world import COUNTRY_TABLE, City, Country, Organization, World
from ..monitor.schemas import BotnetRecord, DDoSAttackRecord
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow
from .columns import GrowableColumn

#: Re-exported for compatibility — the class moved to :mod:`repro.errors`
#: when the taxonomy was unified; this module is its historical home.
__all__ = ["IngestError", "StreamingDataset"]

_KNOWN_CENTROIDS = {code: (lat, lon) for code, _n, lat, lon, _w in COUNTRY_TABLE}

_SECONDS_PER_DAY = 86400


def _validated(records: Iterable[DDoSAttackRecord], strict: bool) -> list[DDoSAttackRecord]:
    """Materialise and validate an input iterable.

    With ``strict`` (the default) a malformed record raises
    :class:`IngestError` carrying its position; otherwise malformed
    records are dropped.
    """
    out: list[DDoSAttackRecord] = []
    for index, rec in enumerate(records):
        if not isinstance(rec, DDoSAttackRecord):
            if strict:
                raise IngestError(
                    f"expected DDoSAttackRecord, got {type(rec).__name__}", index
                )
            continue
        if rec.end_time < rec.timestamp:
            if strict:
                raise IngestError(
                    f"ends before it starts (ddos_id={rec.ddos_id})", index
                )
            continue
        out.append(rec)
    return out


class StreamingDataset:
    """Builds an attack-table-only dataset incrementally from records.

    >>> from repro import api
    >>> from repro.stream import StreamingDataset
    >>> records = list(api.generate(scale=0.005).iter_attacks())
    >>> stream = StreamingDataset()
    >>> stream.append_batch(records[:100])
    100
    >>> stream.context().dataset.n_attacks  # snapshot, views carried in O(batch)
    100

    Like ingested datasets, streamed datasets have no Botlist side: the
    participant arrays are empty, so bot-geolocation analyses degrade as
    documented in :mod:`repro.io.ingest`.
    """

    def __init__(
        self,
        window: ObservationWindow | None = None,
        *,
        sketches: bool = False,
    ) -> None:
        self._window_fixed = window
        self._min_start: float | None = None
        self._max_end: float | None = None

        #: Optional fixed-memory summary maintained alongside the exact
        #: columns (see :mod:`repro.sketch`); per-epoch snapshot copies
        #: are cached so concurrent readers get immutable state.
        self._summary = None
        if sketches:
            from ..sketch import AttackStreamSummary

            self._summary = AttackStreamSummary()
        self._sketch_cache: tuple[int, object] | None = None

        self._world = World()
        self._country_of: dict[str, int] = {}
        self._city_of: dict[str, int] = {}
        self._org_of: dict[str, int] = {}

        self._families: list[str] = []
        self._family_of: dict[str, int] = {}

        self._target_of: dict[int, int] = {}
        self._v_ip = GrowableColumn(np.uint64)
        self._v_lat = GrowableColumn(float)
        self._v_lon = GrowableColumn(float)
        self._v_cc = GrowableColumn(np.int16)
        self._v_city = GrowableColumn(np.int32)
        self._v_org = GrowableColumn(np.int32)
        self._v_asn = GrowableColumn(np.int32)

        #: botnet_id -> [family, first_seen, last_seen]; family is the
        #: first arrival's, matching the batch builder's setdefault.
        self._botnet_seen: dict[int, list] = {}
        self._botnets_cache: list[BotnetRecord] | None = None
        self._botnet_pos: dict[int, int] = {}
        self._botnets_dirty: set[int] = set()

        self._start = GrowableColumn(float)
        self._end = GrowableColumn(float)
        self._family_idx = GrowableColumn(np.int16)
        self._botnet_id = GrowableColumn(np.int32)
        self._protocol = GrowableColumn(np.int8)
        self._target_idx = GrowableColumn(np.int32)
        self._magnitude = GrowableColumn(np.int32)

        self._epoch = 0
        #: Snapshot state: the context served at `_snapshot_epoch`, the
        #: attack count it covered, and whether rows since then were
        #: appended strictly in order (carry is only sound if so).
        self._snapshot_ctx: AnalysisContext | None = None
        self._snapshot_epoch = -1
        self._carry_ok = True

        #: Spill state: rows [0, _spilled_rows) have been written out as
        #: time shards; _spill_max_start is the largest start among them.
        #: A later batch landing at or before that start would have to be
        #: merged into rows already on disk, so it marks the spill dirty
        #: and further spills refuse until a fresh store is chosen.
        self._spilled_rows = 0
        self._spill_max_start = -np.inf
        self._spill_dirty = False

    # -- shape -------------------------------------------------------------

    @property
    def n_attacks(self) -> int:
        return len(self._start)

    @property
    def epoch(self) -> int:
        """Revision counter: bumped once per non-empty ``append_batch``."""
        return self._epoch

    @property
    def families(self) -> list[str]:
        """Families seen so far, sorted (the snapshot index space)."""
        return list(self._families)

    # -- interning ---------------------------------------------------------

    def _intern_family(self, name: str) -> int:
        idx = self._family_of.get(name)
        if idx is not None:
            return idx
        # Families stay alphabetically sorted (the batch builder's
        # contract), so a new family can land mid-list and shift the
        # indices after it.  The committed column is rewritten through
        # replace() so snapshots taken earlier keep their own indexing.
        import bisect

        pos = bisect.bisect_left(self._families, name)
        self._families.insert(pos, name)
        self._family_of = {fam: i for i, fam in enumerate(self._families)}
        if pos < len(self._families) - 1 and self.n_attacks:
            col = self._family_idx.view()
            remapped = np.where(col >= pos, col + 1, col).astype(np.int16)
            self._family_idx.replace(remapped)
        return pos

    def _intern_country(self, rec: DDoSAttackRecord) -> int:
        idx = self._country_of.get(rec.country_code)
        if idx is not None:
            return idx
        lat, lon = _KNOWN_CENTROIDS.get(rec.country_code, (rec.lat, rec.lon))
        country = Country(
            index=len(self._world.countries),
            code=rec.country_code,
            name=rec.country_code,
            lat=lat,
            lon=lon,
            weight=1.0,
        )
        self._world.countries.append(country)
        self._world._country_by_code[rec.country_code] = country.index
        self._world._cities_by_country[country.index] = []
        self._world._orgs_by_country[country.index] = []
        self._country_of[rec.country_code] = country.index
        return country.index

    def _intern_city(self, rec: DDoSAttackRecord, country_idx: int) -> int:
        idx = self._city_of.get(rec.city)
        if idx is not None:
            return idx
        city = City(
            index=len(self._world.cities),
            name=rec.city,
            country_index=country_idx,
            lat=rec.lat,
            lon=rec.lon,
            weight=1.0,
        )
        self._world.cities.append(city)
        self._world._cities_by_country[country_idx].append(city.index)
        self._city_of[rec.city] = city.index
        return city.index

    def _intern_org(self, rec: DDoSAttackRecord, country_idx: int, city_idx: int) -> int:
        idx = self._org_of.get(rec.organization)
        if idx is not None:
            return idx
        org = Organization(
            index=len(self._world.organizations),
            name=rec.organization,
            org_type="unknown",
            country_index=country_idx,
            city_index=city_idx,
            asn=rec.asn,
            weight=1.0,
        )
        self._world.organizations.append(org)
        self._world._orgs_by_country[country_idx].append(org.index)
        self._org_of[rec.organization] = org.index
        return org.index

    def _intern_victim(self, rec: DDoSAttackRecord, c_idx: int, city_idx: int, org_idx: int) -> int:
        idx = self._target_of.get(rec.target_ip)
        if idx is not None:
            return idx
        idx = len(self._v_ip)
        self._target_of[rec.target_ip] = idx
        self._v_ip.append([rec.target_ip])
        self._v_lat.append([rec.lat])
        self._v_lon.append([rec.lon])
        self._v_cc.append([c_idx])
        self._v_city.append([city_idx])
        self._v_org.append([org_idx])
        self._v_asn.append([rec.asn])
        return idx

    # -- the append path ---------------------------------------------------

    def append_batch(
        self, records: Iterable[DDoSAttackRecord], *, strict: bool = True
    ) -> int:
        """Fold a batch of records into the stream; returns the count added.

        The batch may be any iterable (a generator is consumed once).
        An empty batch is a no-op and does not bump the epoch.  Records
        may arrive in any order; chronologically non-decreasing batches
        take the O(batch) fast path, others trigger a stable merge of
        the sorted columns.

        Each non-empty fold counts into ``stream.records_appended`` and
        ``stream.batches`` (labelled by whether it took the in-order
        fast path), observes its latency into ``stream.append_seconds``,
        and updates the ``stream.epoch`` gauge.
        """
        t0 = time.perf_counter()
        batch = _validated(records, strict)
        if not batch:
            return 0
        batch.sort(key=lambda r: (r.timestamp, r.botnet_id))

        n_before = self.n_attacks
        last_key = (
            (float(self._start.view()[-1]), int(self._botnet_id.view()[-1]))
            if n_before
            else None
        )

        for rec in batch:
            c_idx = self._intern_country(rec)
            city_idx = self._intern_city(rec, c_idx)
            org_idx = self._intern_org(rec, c_idx, city_idx)
            self._intern_victim(rec, c_idx, city_idx, org_idx)
            self._intern_family(rec.family)
            entry = self._botnet_seen.setdefault(
                rec.botnet_id, [rec.family, rec.timestamp, rec.end_time]
            )
            entry[1] = min(entry[1], rec.timestamp)
            entry[2] = max(entry[2], rec.end_time)
            self._botnets_dirty.add(rec.botnet_id)
            if self._min_start is None or rec.timestamp < self._min_start:
                self._min_start = rec.timestamp
            if self._max_end is None or rec.end_time > self._max_end:
                self._max_end = rec.end_time

        # Family indices are resolved after the whole batch is interned:
        # a new family landing mid-alphabet shifts indices assigned to
        # earlier rows of this very batch.
        family_col = np.asarray(
            [self._family_of[r.family] for r in batch], dtype=np.int16
        )

        start = np.asarray([r.timestamp for r in batch], dtype=float)
        end = np.asarray([r.end_time for r in batch], dtype=float)
        botnet = np.asarray([r.botnet_id for r in batch], dtype=np.int32)
        proto = np.asarray([int(r.category) for r in batch], dtype=np.int8)
        target = np.asarray(
            [self._target_of[r.target_ip] for r in batch], dtype=np.int32
        )
        magnitude = np.asarray([r.magnitude for r in batch], dtype=np.int32)

        if self._spilled_rows and start[0] <= self._spill_max_start:
            self._spill_dirty = True

        if self._summary is not None:
            self._summary.update_arrays(
                start=start,
                end=end,
                family=np.asarray([r.family for r in batch], dtype=object),
                country=np.asarray([r.country_code for r in batch], dtype=object),
                victim=np.asarray([r.target_ip for r in batch], dtype=np.uint64),
                botnet=botnet,
            )

        in_order = last_key is None or (start[0], int(botnet[0])) >= last_key
        self._start.append(start)
        self._end.append(end)
        self._family_idx.append(family_col)
        self._botnet_id.append(botnet)
        self._protocol.append(proto)
        self._target_idx.append(target)
        self._magnitude.append(magnitude)

        if not in_order:
            # Stable merge: equivalent to stable-sorting the records in
            # arrival order by (start, botnet_id) — exactly what the
            # scratch batch build does.
            order = np.lexsort((self._botnet_id.view(), self._start.view()))
            for col in (self._start, self._end, self._family_idx,
                        self._botnet_id, self._protocol, self._target_idx,
                        self._magnitude):
                col.replace(col.view()[order])
            self._carry_ok = False

        self._epoch += 1
        reg = _obs_registry()
        reg.counter("stream.records_appended").inc(len(batch))
        reg.counter("stream.batches", in_order="true" if in_order else "false").inc()
        reg.gauge("stream.epoch").set(self._epoch)
        reg.histogram("stream.append_seconds").observe(time.perf_counter() - t0)
        return len(batch)

    # -- snapshots ---------------------------------------------------------

    def _window(self) -> ObservationWindow:
        if self._window_fixed is not None:
            return self._window_fixed
        if self._min_start is None:
            return ObservationWindow()
        start = int(self._min_start)
        end = int(self._max_end) + 1
        span = max(end - start, _SECONDS_PER_DAY)
        n_days = (span + _SECONDS_PER_DAY - 1) // _SECONDS_PER_DAY
        return ObservationWindow(start=start, end=start + n_days * _SECONDS_PER_DAY)

    def _botnets(self) -> list[BotnetRecord]:
        if self._botnets_cache is None:
            self._botnets_cache = [
                BotnetRecord(
                    botnet_id=bid, family=fam, controller_ip=0, first_seen=lo, last_seen=hi
                )
                for bid, (fam, lo, hi) in sorted(self._botnet_seen.items())
            ]
            self._botnet_pos = {
                rec.botnet_id: i for i, rec in enumerate(self._botnets_cache)
            }
            self._botnets_dirty.clear()
        elif self._botnets_dirty:
            # Patch only the botnets the batch touched.  The list is
            # copied first: snapshots materialised earlier hold the old
            # one and must keep their first/last_seen values.
            cache = list(self._botnets_cache)
            new_ids = False
            for bid in self._botnets_dirty:
                fam, lo, hi = self._botnet_seen[bid]
                rec = BotnetRecord(
                    botnet_id=bid, family=fam, controller_ip=0, first_seen=lo, last_seen=hi
                )
                pos = self._botnet_pos.get(bid)
                if pos is None:
                    cache.append(rec)
                    new_ids = True
                else:
                    cache[pos] = rec
            if new_ids:
                cache.sort(key=lambda rec: rec.botnet_id)
                self._botnet_pos = {rec.botnet_id: i for i, rec in enumerate(cache)}
            self._botnets_cache = cache
            self._botnets_dirty.clear()
        return self._botnets_cache

    def _materialize(self) -> AttackDataset:
        n = self.n_attacks
        families = list(self._families)
        victims = VictimRegistry(
            ip=self._v_ip.view(),
            lat=self._v_lat.view(),
            lon=self._v_lon.view(),
            country_idx=self._v_cc.view(),
            city_idx=self._v_city.view(),
            org_idx=self._v_org.view(),
            asn=self._v_asn.view(),
            owner_family_idx=np.full(len(self._v_ip), -1, dtype=np.int16),
        )
        empty = np.zeros(0)
        bots = BotRegistry(
            ip=np.zeros(0, dtype=np.uint64),
            lat=empty,
            lon=empty,
            country_idx=np.zeros(0, dtype=np.int16),
            city_idx=np.zeros(0, dtype=np.int32),
            org_idx=np.zeros(0, dtype=np.int32),
            asn=np.zeros(0, dtype=np.int32),
            family_idx=np.zeros(0, dtype=np.int16),
            botnet_id=np.zeros(0, dtype=np.int32),
            recruit_ts=empty,
        )
        return AttackDataset(
            window=self._window(),
            world=self._world,
            families=families,
            active_families=list(families),
            bots=bots,
            victims=victims,
            botnets=self._botnets(),
            start=self._start.view(),
            end=self._end.view(),
            family_idx=self._family_idx.view(),
            botnet_id=self._botnet_id.view(),
            protocol=self._protocol.view(),
            target_idx=self._target_idx.view(),
            magnitude=self._magnitude.view(),
            part_offsets=np.zeros(n + 1, dtype=np.int64),
            participants=np.zeros(0, dtype=np.int64),
            truth_collab_group=np.full(n, -1, dtype=np.int32),
            truth_collab_kind=np.zeros(n, dtype=np.int8),
            truth_chain_id=np.full(n, -1, dtype=np.int32),
            truth_symmetric=np.zeros(n, dtype=bool),
            truth_residual_km=np.zeros(n, dtype=np.float64),
        )

    def context(self, *, prewarm_jobs: int | None = None) -> AnalysisContext:
        """The current snapshot's shared analysis context.

        Cached per epoch: repeated calls between appends return the same
        context (and the same dataset instance).  After an append, a new
        snapshot is materialised and the previous snapshot's cheap views
        are carried forward incrementally; expensive views (collaboration
        scans, chains, forecasts) are left to rebuild lazily under the
        new epoch tag.

        ``prewarm_jobs`` rebuilds those invalidated views eagerly via
        :meth:`AnalysisContext.prewarm` when a *new* snapshot is
        materialised: the prewarm seeds via ``seed_view``, so carried
        views are untouched and only the dropped keys are recomputed
        (pass 1 for serial, N for the worker-pool fan-out).  A cached
        snapshot is returned as-is — its views are already warm.

        A carry counts the views it seeded into ``stream.views_carried``
        and the ones it had to drop into ``stream.views_invalidated``,
        and observes its latency into ``stream.carry_seconds``.
        """
        if self._snapshot_ctx is not None and self._snapshot_epoch == self._epoch:
            return self._snapshot_ctx
        from .incremental import carry_views  # late: keeps module import light

        ctx = AnalysisContext.attach(self._materialize(), epoch=self._epoch)
        if self._snapshot_ctx is not None and self._carry_ok:
            t0 = time.perf_counter()
            n_old = self._snapshot_ctx.n_views
            seeded = carry_views(self._snapshot_ctx, ctx)
            reg = _obs_registry()
            reg.counter("stream.views_carried").inc(seeded)
            reg.counter("stream.views_invalidated").inc(n_old - seeded)
            reg.histogram("stream.carry_seconds").observe(time.perf_counter() - t0)
        self._snapshot_ctx = ctx
        self._snapshot_epoch = self._epoch
        self._carry_ok = True
        if prewarm_jobs is not None:
            ctx.prewarm(jobs=prewarm_jobs)
        return ctx

    def dataset(self) -> AttackDataset:
        """The current snapshot dataset (see :meth:`context`)."""
        return self.context().dataset

    # -- sketches ----------------------------------------------------------

    @property
    def sketch(self):
        """The live fixed-memory summary, or ``None`` in exact-only mode.

        Only present when the stream was built with ``sketches=True``;
        it is the *mutable* summary the append path feeds — readers that
        need immutable state should take :meth:`sketch_snapshot`.
        """
        return self._summary

    def sketch_snapshot(self):
        """An immutable copy of the summary at the current epoch.

        Cached per epoch, like :meth:`context`: repeated calls between
        appends return the same object, so concurrent readers share one
        frozen copy while the live summary keeps absorbing batches.
        Raises ``ValueError`` when the stream was built without
        ``sketches=True``.
        """
        if self._summary is None:
            raise ValueError(
                "this stream has no sketches; build it with "
                "StreamingDataset(sketches=True)"
            )
        if self._sketch_cache is None or self._sketch_cache[0] != self._epoch:
            self._sketch_cache = (self._epoch, self._summary.copy())
        return self._sketch_cache[1]

    def resident_bytes(self) -> int:
        """Resident bytes of the stream's own buffers.

        Counts the attack-column and victim-column backing buffers (at
        capacity, i.e. what is actually allocated) plus the sketch
        summary when enabled.  Interning dicts and snapshot contexts are
        not included — this is the number the serve layer's per-tenant
        memory ceiling compares against.
        """
        columns = (
            self._start, self._end, self._family_idx, self._botnet_id,
            self._protocol, self._target_idx, self._magnitude,
            self._v_ip, self._v_lat, self._v_lon, self._v_cc,
            self._v_city, self._v_org, self._v_asn,
        )
        total = sum(col.nbytes for col in columns)
        if self._summary is not None:
            total += self._summary.memory_bytes()
        return int(total)

    # -- spilling ----------------------------------------------------------

    def spill_shards(self, path, *, context=None) -> int:
        """Spill the closed prefix of the stream into the sharded store.

        Every row whose start is *strictly before* the stream's current
        maximum start is closed — no in-order batch can ever land among
        those rows again — so the not-yet-spilled closed rows are
        appended as the store's next time shard
        (:func:`repro.io.colstore.append_shard`; the store is created on
        the first spill).  Rows tied at the maximum stay in memory until
        a later batch moves the frontier past them.  Returns the number
        of rows spilled (0 when the frontier has not advanced), counted
        into ``stream.spilled_rows``.

        Spilling never frees memory — the stream keeps serving full
        snapshots — it bounds what a *restart* would lose and feeds the
        map-reduce path (:class:`~repro.io.colstore.ShardedDatasetStore`).
        Pass the store's live
        :class:`~repro.core.context.ShardedAnalysisContext` as
        ``context`` and it is refreshed after the append, so its next
        ``merged()`` re-merges incrementally instead of from scratch.

        Raises ``ValueError`` if a batch arrived at or before the spilled
        frontier since the last spill: those rows were merged into a
        prefix that is already on disk, so the store no longer partitions
        the stream and further spills would corrupt it.
        """
        from ..io import colstore

        if self._spill_dirty:
            raise ValueError(
                "spill is dirty: a batch arrived at or before the spilled "
                "frontier; the store no longer partitions this stream"
            )
        if self.n_attacks == 0:
            return 0
        start_col = self._start.view()
        cut = int(np.searchsorted(start_col, start_col[-1], side="left"))
        if cut <= self._spilled_rows:
            return 0
        chunk = colstore._slice_dataset(self.context().dataset, self._spilled_rows, cut)
        colstore.append_shard(path, chunk)
        spilled = cut - self._spilled_rows
        self._spilled_rows = cut
        self._spill_max_start = float(start_col[cut - 1])
        _obs_registry().counter("stream.spilled_rows").inc(spilled)
        if context is not None:
            context.refresh()
        return spilled
