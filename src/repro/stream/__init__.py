"""Streaming ingestion: the append path of the reproduction pipeline.

* :class:`~repro.stream.builder.StreamingDataset` — append-oriented
  dataset builder with amortized sorted columns and epoch-tagged
  snapshots;
* :mod:`repro.stream.incremental` — O(batch) maintenance of the cheap
  :class:`~repro.core.context.AnalysisContext` views across appends;
* :class:`~repro.stream.watch.WatchSession` /
  :class:`~repro.stream.watch.JsonlTail` — tail a JSONL attack log and
  keep the rendered report live (the ``ddos-repro watch`` command).
"""

from .builder import IngestError, StreamingDataset
from .watch import JsonlTail, WatchSession

__all__ = ["IngestError", "StreamingDataset", "JsonlTail", "WatchSession"]
