"""Append-oriented numpy columns for the streaming builder.

A :class:`GrowableColumn` is a capacity-doubling buffer whose committed
prefix is handed out as a read-only view.  Snapshots taken at epoch *e*
alias the buffer's first ``n_e`` elements; later appends only ever write
*past* that prefix, so old snapshots stay valid without copying.  The
one operation that rewrites committed rows — an out-of-order merge —
goes through :meth:`replace`, which allocates a fresh buffer and leaves
every previously handed-out view untouched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableColumn"]

_MIN_CAPACITY = 64


class GrowableColumn:
    """An append-only numpy column with amortized O(1) appends."""

    def __init__(self, dtype, capacity: int = _MIN_CAPACITY) -> None:
        self._buf = np.empty(max(int(capacity), _MIN_CAPACITY), dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def dtype(self):
        return self._buf.dtype

    @property
    def nbytes(self) -> int:
        """Resident bytes of the backing buffer (capacity, not length)."""
        return int(self._buf.nbytes)

    def append(self, values) -> None:
        """Append a batch of values (list or array) to the column."""
        values = np.asarray(values, dtype=self._buf.dtype)
        need = self._n + values.size
        if need > self._buf.size:
            capacity = self._buf.size
            while capacity < need:
                capacity *= 2
            # Old snapshots alias the old buffer; they keep it alive.
            grown = np.empty(capacity, dtype=self._buf.dtype)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : need] = values
        self._n = need

    def replace(self, values: np.ndarray) -> None:
        """Swap in a rewritten column (out-of-order merge, remap).

        Always allocates a new buffer so views handed out earlier keep
        their old contents.
        """
        values = np.asarray(values, dtype=self._buf.dtype)
        capacity = self._buf.size
        while capacity < values.size:
            capacity *= 2
        self._buf = np.empty(capacity, dtype=self._buf.dtype)
        self._buf[: values.size] = values
        self._n = values.size

    def view(self) -> np.ndarray:
        """Read-only view of the committed prefix (zero copy)."""
        out = self._buf[: self._n]
        out.flags.writeable = False
        return out
