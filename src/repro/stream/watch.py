"""Tail a growing JSONL attack log and keep the analysis live.

:class:`JsonlTail` is the transport: it remembers a byte offset into the
file and, on each poll, parses only the *complete* lines written since
the last poll (a partially-written trailing line is left for the next
round, so a concurrent writer never produces a torn read).  Records are
therefore processed exactly once.

:class:`WatchSession` is the policy: tail + :class:`StreamingDataset` +
report rendering.  Each poll that finds new records appends them (an
O(batch) incremental update for in-order logs) and re-renders the
headline report from the snapshot context; polls that find nothing
return ``None`` without touching the stream.

Sessions come in two memory models (``docs/STREAMING.md``):

* **exact** (default) — every record is materialised into a
  :class:`StreamingDataset`; memory grows with the log.
* **sketch** (``sketch=True``, the CLI's ``--sketch``) — records fold
  into an :class:`~repro.sketch.AttackStreamSummary` and only the most
  recent ``exact_window`` records are retained verbatim; memory is
  fixed no matter how long the log grows, and the rendered report is
  the approximate one with its error budget in the footer.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from ..monitor.schemas import DDoSAttackRecord
from ..obs import registry as _obs_registry
from ..simulation.clock import ObservationWindow
from .builder import StreamingDataset

__all__ = ["JsonlTail", "WatchSession"]


class JsonlTail:
    """Incremental reader of a growing JSONL attack log."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._offset = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Byte offset of the first unconsumed byte."""
        return self._offset

    def poll(self) -> list[DDoSAttackRecord]:
        """Parse the complete lines appended since the last poll.

        A missing file yields no records (the log may not exist yet);
        a truncated file (size below the consumed offset, e.g. log
        rotation) restarts from the beginning.
        """
        from ..io.jsonlio import record_from_json  # late: avoids an import cycle

        try:
            with self._path.open("rb") as fh:
                fh.seek(0, 2)
                size = fh.tell()
                if size < self._offset:
                    self._offset = 0  # rotated/truncated: start over
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return []
        cut = data.rfind(b"\n")
        if cut < 0:
            return []
        consumed = data[: cut + 1]
        records: list[DDoSAttackRecord] = []
        for lineno, line in enumerate(consumed.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self._path}: invalid JSON on appended line {lineno}: {exc}"
                ) from exc
            records.append(record_from_json(row))
        self._offset += len(consumed)
        return records


class WatchSession:
    """A long-running view over a JSONL attack log.

    Poll in a loop (the CLI's ``watch`` subcommand sleeps between
    polls); each poll returns the re-rendered report or ``None``:

    >>> from repro.stream import WatchSession
    >>> session = WatchSession("attacks.jsonl")
    >>> session.poll() is None          # nothing appended yet
    True
    >>> (session.n_attacks, session.epoch)
    (0, 0)

    With ``sketch=True`` the session never materialises exact columns
    beyond the trailing ``exact_window`` records; ``render`` produces
    the approximate report instead (``repro.sketch.render_sketch_report``).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        window: ObservationWindow | None = None,
        renderer=None,
        sketch: bool = False,
        exact_window: int = 50_000,
    ) -> None:
        self._tail = JsonlTail(path)
        self._renderer = renderer
        self._stream: StreamingDataset | None = None
        self._summary = None
        self._recent: deque | None = None
        self._epoch_count = 0
        if sketch:
            from ..sketch import AttackStreamSummary

            if exact_window < 0:
                raise ValueError(f"exact_window must be >= 0, got {exact_window}")
            self._summary = AttackStreamSummary()
            self._recent = deque(maxlen=exact_window)
        else:
            self._stream = StreamingDataset(window=window)

    @property
    def stream(self) -> StreamingDataset | None:
        """The exact-mode dataset, or ``None`` in sketch mode."""
        return self._stream

    @property
    def sketch(self):
        """The sketch-mode summary, or ``None`` in exact mode."""
        return self._summary

    @property
    def recent(self) -> list:
        """Sketch mode's trailing exact-record window (newest last).

        Empty in exact mode — there the full record history lives in
        :attr:`stream`.
        """
        return list(self._recent) if self._recent is not None else []

    @property
    def n_attacks(self) -> int:
        if self._summary is not None:
            return self._summary.n_records
        return self._stream.n_attacks

    @property
    def epoch(self) -> int:
        if self._summary is not None:
            return self._epoch_count
        return self._stream.epoch

    @property
    def lag_seconds(self) -> float:
        """Seconds between now and the log file's last modification.

        A proxy for how far the session trails the writer: near zero
        while the log is being appended to, growing while it is quiet.
        Missing file reads as 0.0 (nothing to lag behind).  The latest
        value observed by :meth:`poll` is exported as the
        ``watch.lag_seconds`` gauge.
        """
        try:
            mtime = self._tail.path.stat().st_mtime
        except OSError:
            return 0.0
        return max(0.0, time.time() - mtime)

    def poll(self) -> str | None:
        """Ingest newly-landed records; render iff something changed.

        Each poll refreshes the ``watch.lag_seconds`` gauge; a poll that
        appends counts its records into ``watch.lines_ingested`` and
        observes the re-render latency into ``watch.render_seconds``.
        """
        reg = _obs_registry()
        reg.gauge("watch.lag_seconds").set(self.lag_seconds)
        records = self._tail.poll()
        if not records:
            return None
        appended = self.fold(records)
        if not appended:
            return None
        reg.counter("watch.lines_ingested").inc(appended)
        t0 = time.perf_counter()
        rendered = self.render()
        reg.histogram("watch.render_seconds").observe(time.perf_counter() - t0)
        return rendered

    def fold(self, records) -> int:
        """Ingest records directly, bypassing the JSONL transport.

        The same path :meth:`poll` uses once it has parsed new lines —
        exposed so drivers that already hold record objects (benchmarks,
        tests, embedding applications) can feed a session without
        round-tripping through a log file.  Returns the number folded.
        """
        if self._summary is not None:
            batch = sorted(records, key=lambda r: r.timestamp)
            folded = self._summary.update(batch)
            if folded:
                self._recent.extend(batch)
                self._epoch_count += 1
            return folded
        return self._stream.append_batch(records)

    def render(self) -> str:
        """The report for the current state.

        Exact mode renders the headline + protocol mix from the snapshot
        context; sketch mode renders the approximate summary report
        (with its error budget in the footer).  A custom ``renderer``
        callable receives the context (exact) or summary (sketch).
        """
        if self.n_attacks == 0:
            return "(no attacks ingested yet)"
        if self._summary is not None:
            if self._renderer is not None:
                return self._renderer(self._summary)
            from ..sketch import render_sketch_report

            return render_sketch_report(self._summary)
        ctx = self._stream.context()
        if self._renderer is not None:
            return self._renderer(ctx)
        from ..core import report

        return "\n\n".join(
            [report.render_headline(ctx), report.render_protocol_table(ctx)]
        )
