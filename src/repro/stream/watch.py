"""Tail a growing JSONL attack log and keep the analysis live.

:class:`JsonlTail` is the transport: it remembers a byte offset into the
file and, on each poll, parses only the *complete* lines written since
the last poll (a partially-written trailing line is left for the next
round, so a concurrent writer never produces a torn read).  Records are
therefore processed exactly once.

:class:`WatchSession` is the policy: tail + :class:`StreamingDataset` +
report rendering.  Each poll that finds new records appends them (an
O(batch) incremental update for in-order logs) and re-renders the
headline report from the snapshot context; polls that find nothing
return ``None`` without touching the stream.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..monitor.schemas import DDoSAttackRecord
from ..simulation.clock import ObservationWindow
from .builder import StreamingDataset

__all__ = ["JsonlTail", "WatchSession"]


class JsonlTail:
    """Incremental reader of a growing JSONL attack log."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._offset = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Byte offset of the first unconsumed byte."""
        return self._offset

    def poll(self) -> list[DDoSAttackRecord]:
        """Parse the complete lines appended since the last poll.

        A missing file yields no records (the log may not exist yet);
        a truncated file (size below the consumed offset, e.g. log
        rotation) restarts from the beginning.
        """
        from ..io.jsonlio import record_from_json  # late: avoids an import cycle

        try:
            with self._path.open("rb") as fh:
                fh.seek(0, 2)
                size = fh.tell()
                if size < self._offset:
                    self._offset = 0  # rotated/truncated: start over
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return []
        cut = data.rfind(b"\n")
        if cut < 0:
            return []
        consumed = data[: cut + 1]
        records: list[DDoSAttackRecord] = []
        for lineno, line in enumerate(consumed.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self._path}: invalid JSON on appended line {lineno}: {exc}"
                ) from exc
            records.append(record_from_json(row))
        self._offset += len(consumed)
        return records


class WatchSession:
    """A long-running view over a JSONL attack log.

    >>> session = WatchSession("attacks.jsonl")
    >>> while True:
    ...     update = session.poll()
    ...     if update is not None:
    ...         print(update)
    ...     time.sleep(2)
    """

    def __init__(
        self,
        path: str | Path,
        *,
        window: ObservationWindow | None = None,
        renderer=None,
    ) -> None:
        self._tail = JsonlTail(path)
        self._stream = StreamingDataset(window=window)
        self._renderer = renderer

    @property
    def stream(self) -> StreamingDataset:
        return self._stream

    @property
    def n_attacks(self) -> int:
        return self._stream.n_attacks

    @property
    def epoch(self) -> int:
        return self._stream.epoch

    def poll(self) -> str | None:
        """Ingest newly-landed records; render iff something changed."""
        records = self._tail.poll()
        if not records:
            return None
        appended = self._stream.append_batch(records)
        if not appended:
            return None
        return self.render()

    def render(self) -> str:
        """The report for the current snapshot (headline + protocol mix)."""
        if self._stream.n_attacks == 0:
            return "(no attacks ingested yet)"
        ctx = self._stream.context()
        if self._renderer is not None:
            return self._renderer(ctx)
        from ..core import report

        return "\n\n".join(
            [report.render_headline(ctx), report.render_protocol_table(ctx)]
        )
