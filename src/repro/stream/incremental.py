"""Incremental maintenance of AnalysisContext views across appends.

When :class:`~repro.stream.builder.StreamingDataset` materialises a new
snapshot after an in-order append, the previous snapshot's context holds
views computed for the first ``base_n`` attacks.  Because an in-order
append only ever adds rows at the end of the sorted columns, most cheap
views extend in O(batch):

* grouped attack indices (family / botnet / target) — new indices are
  appended to each touched group;
* interval and duration arrays — one ``diff`` over the appended starts,
  stitched at the boundary;
* victim marginals (country / organization counts) — per-batch counts
  merged into the running ones;
* daily aggregates — per-batch day bincount added to the running series;
* protocol popularity / breakdown — per-batch cell counts merged.

Views whose update is not O(batch) — the collaboration scan, the
consecutive-chain scan, ARIMA dispersion forecasts, weekly shifts — are
deliberately *not* carried: the new context simply does not have them,
so they rebuild lazily on next access under the new epoch tag, while
consumers still holding the previous epoch's context keep their cache.

Every updater must produce exactly what the cold builder would — the
streaming parity tests compare each carried view against a scratch
batch build, array for array.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..core.context import AnalysisContext

__all__ = ["carry_views", "CARRIED_VERBATIM", "INCREMENTAL_HEADS"]

#: Keys whose value cannot change across appends (the bot registry is
#: immutable in a streaming dataset) — carried as-is.
CARRIED_VERBATIM = {("bot_coords_radians",)}

#: First elements of view keys that have an incremental updater.
INCREMENTAL_HEADS = {
    "family_attack_index",
    "botnet_attack_index",
    "target_attack_index",
    "attack_intervals",
    "durations",
    "family_starts",
    "family_intervals",
    "target_country_idx",
    "target_org_idx",
    "target_country_counts",
    "family_target_country_counts",
    "daily_distribution",
    "protocol_popularity",
    "protocol_breakdown",
}


def _extend_groups(
    groups: dict[int, np.ndarray],
    column: np.ndarray,
    base_n: int,
    keymap: np.ndarray | None = None,
) -> dict[int, np.ndarray]:
    """Append the new rows' indices to a grouped-index dict.

    Mirrors ``AnalysisContext._groups_by``: one stable grouping pass over
    the appended slice only.  ``keymap`` translates old group keys into
    the new index space (family indices shift when a new family lands
    mid-alphabet); group membership arrays are positional and unaffected.
    """
    out: dict[int, np.ndarray] = (
        {int(keymap[k]): v for k, v in groups.items()} if keymap is not None else dict(groups)
    )
    vals = column[base_n:]
    if vals.size == 0:
        return out
    order = np.argsort(vals, kind="stable")
    boundaries = np.flatnonzero(np.diff(vals[order]) != 0) + 1
    for grp in np.split(order, boundaries):
        key = int(vals[grp[0]])
        members = base_n + grp
        out[key] = np.concatenate([out[key], members]) if key in out else members
    return out


def _merge_counts(
    old: tuple[np.ndarray, np.ndarray], batch_vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge a ``(values, counts)`` marginal with a batch of raw values."""
    b_vals, b_counts = np.unique(batch_vals, return_counts=True)
    keys = np.concatenate([old[0], b_vals])
    counts = np.concatenate([old[1].astype(np.intp), b_counts])
    out_vals, inverse = np.unique(keys, return_inverse=True)
    out_counts = np.zeros(out_vals.size, dtype=np.intp)
    np.add.at(out_counts, inverse, counts)
    return out_vals, out_counts


def _family_members(ds, base_n: int, family: str) -> np.ndarray:
    """Indices of the appended rows belonging to one family."""
    fam = ds.family_id(family)
    return base_n + np.flatnonzero(ds.family_idx[base_n:] == fam)


def _extend_intervals(old: np.ndarray, starts: np.ndarray, prev_last: float | None) -> np.ndarray:
    """Gaps over appended starts, stitched to the last pre-append start."""
    if prev_last is not None:
        gaps = np.diff(starts, prepend=prev_last)
    else:
        gaps = np.diff(starts)
    return np.concatenate([old, gaps]) if old.size else gaps.astype(float)


def _merge_daily(
    new_ctx: AnalysisContext, family: str | None, old, base_n: int, shared: dict
) -> Any:
    """Extend a DailyDistribution with the appended rows' day counts.

    The counts merge is O(batch + days).  The peak day's top family is
    re-derived without a column scan where possible: a family-filtered
    view's top family is that family itself, and the global view keeps
    the old answer whenever the peak day is unchanged and untouched by
    the batch (in-order appends never alter past rows).  Only a moved or
    batch-touched global peak pays one O(n) pass, whose day column is
    memoized in ``shared`` across the views of a single carry.
    """
    from ..core.overview import DailyDistribution

    ds = new_ctx.dataset
    base_counts = old.counts
    if family is None:
        new_idx = np.arange(base_n, ds.n_attacks)
    else:
        new_idx = _family_members(ds, base_n, family)
    rel_days = ((ds.start[new_idx] - ds.window.start) // 86400).astype(np.int64)
    n_days = max(
        ds.window.n_days,
        base_counts.size,
        int(rel_days.max()) + 1 if rel_days.size else 1,
    )
    counts = np.zeros(n_days, dtype=base_counts.dtype)
    counts[: base_counts.size] = base_counts
    if rel_days.size:
        counts += np.bincount(rel_days, minlength=n_days)
    max_day = int(np.argmax(counts))
    if counts[max_day] == 0:
        top_family = ""
    elif family is not None:
        top_family = family
    elif max_day == old.max_day_index and not bool(np.any(rel_days == max_day)):
        top_family = old.max_day_top_family
    else:
        if "days_full" not in shared:
            shared["days_full"] = (
                (ds.start - ds.window.start) // 86400
            ).astype(np.int64)
        on_max = shared["days_full"] == max_day
        fams, fam_counts = np.unique(ds.family_idx[on_max], return_counts=True)
        top_family = ds.family_name(int(fams[np.argmax(fam_counts)]))
    return DailyDistribution(
        counts=counts,
        mean_per_day=float(counts[: ds.window.n_days].mean()),
        max_per_day=int(counts[max_day]),
        max_day_index=max_day,
        max_day_label=ds.window.day_label(max_day),
        max_day_top_family=top_family,
    )


def _merge_protocol_breakdown(new_ctx: AnalysisContext, base_n: int, old) -> list:
    """Merge appended (protocol, family) cells into the Table II rows."""
    from ..monitor.schemas import Protocol

    ds = new_ctx.dataset
    cells: dict[tuple[int, str], int] = {
        (int(proto), fam): count for proto, fam, count in old
    }
    new_protocol = ds.protocol[base_n:]
    new_family = ds.family_idx[base_n:]
    for p, f in zip(new_protocol.tolist(), new_family.tolist()):
        key = (int(p), ds.family_name(int(f)))
        cells[key] = cells.get(key, 0) + 1
    rows = []
    for proto in Protocol:
        fams = sorted(
            (fam, count) for (p, fam), count in cells.items() if p == int(proto)
        )
        rows.extend((proto, fam, count) for fam, count in fams)
    return rows


def carry_views(old_ctx: AnalysisContext, new_ctx: AnalysisContext) -> int:
    """Seed the new snapshot's context from the previous one.

    ``old_ctx`` covered the first ``base_n`` attacks of ``new_ctx``'s
    dataset (the appended rows sit at ``[base_n:]`` — callers only carry
    across in-order appends).  Returns the number of views seeded.
    """
    ds = new_ctx.dataset
    old_ds = old_ctx.dataset
    base_n = old_ds.n_attacks
    new_start = ds.start[base_n:]
    prev_last = float(ds.start[base_n - 1]) if base_n else None

    keymap = None
    if old_ds.families != ds.families:
        keymap = np.asarray([ds.family_id(name) for name in old_ds.families], dtype=np.int64)

    seeded = 0
    shared: dict = {}  # per-carry memo (e.g. the full day column)
    for key, value in old_ctx.materialized().items():
        new_value = _updated(key, value, new_ctx, base_n, new_start, prev_last, keymap, shared)
        if new_value is not _DROP:
            seeded += int(new_ctx.seed_view(key, new_value))
    return seeded


_DROP = object()


def _updated(
    key: Hashable,
    value: Any,
    new_ctx: AnalysisContext,
    base_n: int,
    new_start: np.ndarray,
    prev_last: float | None,
    keymap: np.ndarray | None,
    shared: dict,
) -> Any:
    """The view's value over the extended dataset, or ``_DROP``."""
    ds = new_ctx.dataset
    if key in CARRIED_VERBATIM:
        return value
    if not isinstance(key, tuple) or not key or key[0] not in INCREMENTAL_HEADS:
        return _DROP
    head = key[0]

    if head == "family_attack_index":
        return _extend_groups(value, ds.family_idx, base_n, keymap)
    if head == "botnet_attack_index":
        return _extend_groups(value, ds.botnet_id, base_n)
    if head == "target_attack_index":
        return _extend_groups(value, ds.target_idx, base_n)

    if head == "attack_intervals":
        return _extend_intervals(value, new_start, prev_last)

    if head == "durations":
        if len(key) == 1:
            return np.concatenate([value, ds.end[base_n:] - new_start])
        members = _family_members(ds, base_n, key[1])
        if members.size == 0:
            return value
        return np.concatenate([value, ds.end[members] - ds.start[members]])

    if head == "family_starts":
        members = _family_members(ds, base_n, key[1])
        if members.size == 0:
            return value
        return np.concatenate([value, ds.start[members]])

    if head == "family_intervals":
        family, include_simultaneous = key[1], key[2]
        members = _family_members(ds, base_n, family)
        if members.size == 0:
            return value
        fam = ds.family_id(family)
        old_members = np.flatnonzero(ds.family_idx[:base_n] == fam)
        fam_prev = float(ds.start[old_members[-1]]) if old_members.size else None
        gaps = _extend_intervals(np.zeros(0), ds.start[members], fam_prev)
        if not include_simultaneous:
            gaps = gaps[gaps > 0]
        return np.concatenate([value, gaps]) if value.size else gaps

    if head == "target_country_idx":
        return np.concatenate([value, ds.victims.country_idx[ds.target_idx[base_n:]]])
    if head == "target_org_idx":
        return np.concatenate([value, ds.victims.org_idx[ds.target_idx[base_n:]]])

    if head == "target_country_counts":
        return _merge_counts(value, ds.victims.country_idx[ds.target_idx[base_n:]])
    if head == "family_target_country_counts":
        members = _family_members(ds, base_n, key[1])
        if members.size == 0:
            return value
        return _merge_counts(value, ds.victims.country_idx[ds.target_idx[members]])

    if head == "daily_distribution":
        return _merge_daily(new_ctx, key[1], value, base_n, shared)

    if head == "protocol_popularity":
        counts = np.bincount(ds.protocol[base_n:], minlength=len(value))
        return {proto: count + int(counts[int(proto)]) for proto, count in value.items()}

    if head == "protocol_breakdown":
        return _merge_protocol_breakdown(new_ctx, base_n, value)

    return _DROP
