"""Great-circle geometry used by the geolocation analyses (§IV-A).

The paper measures how dispersed the bots participating in an attack are:
it finds the geographic centre of the bot locations, computes the
Haversine distance from every bot to that centre, attaches a *sign* to
each distance (positive for bots east/north of the centre, negative for
west/south) and sums them.  A sum of zero means the bots are
geographically symmetric around their centre.  This module implements the
primitives; :mod:`repro.core.geolocation` builds the per-family analyses
on top of them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "haversine_km",
    "geographic_center",
    "direction_sign",
    "signed_distances_km",
    "dispersion_km",
]

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1, lon1, lat2, lon2):
    """Great-circle distance in km between points given in degrees.

    Accepts scalars or numpy arrays (broadcasting applies).  Always
    returns non-negative values bounded by half the Earth circumference.
    """
    lat1 = np.radians(np.asarray(lat1, dtype=float))
    lon1 = np.radians(np.asarray(lon1, dtype=float))
    lat2 = np.radians(np.asarray(lat2, dtype=float))
    lon2 = np.radians(np.asarray(lon2, dtype=float))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    # Clip to guard against floating error pushing sqrt argument past 1.
    c = 2.0 * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    result = EARTH_RADIUS_KM * c
    if np.ndim(result) == 0:
        return float(result)
    return result


def geographic_center(lats, lons) -> tuple[float, float]:
    """Geographic centre (centroid on the sphere) of a set of points.

    Points are converted to 3-D unit vectors, averaged, and the mean
    vector is converted back to latitude/longitude.  This avoids the
    antimeridian pitfalls of naive coordinate averaging.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.size == 0:
        raise ValueError("geographic_center of an empty point set")
    lat_r = np.radians(lats)
    lon_r = np.radians(lons)
    x = np.mean(np.cos(lat_r) * np.cos(lon_r))
    y = np.mean(np.cos(lat_r) * np.sin(lon_r))
    z = np.mean(np.sin(lat_r))
    norm = np.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Perfectly antipodal/symmetric configuration: centre is ambiguous;
        # fall back to the coordinate mean, which is deterministic.
        return float(np.mean(lats)), float(np.mean(lons))
    lat_c = np.degrees(np.arcsin(z / norm))
    lon_c = np.degrees(np.arctan2(y, x))
    return float(lat_c), float(lon_c)


def direction_sign(lats, lons, center_lat: float, center_lon: float):
    """Sign of each point relative to a centre (paper's convention, §IV-A).

    Positive means east (or, for points on the centre meridian, north);
    negative means west (or south).  Longitude differences are wrapped to
    (-180, 180] so a point just across the antimeridian is still "east".
    Points exactly at the centre get sign 0 so they contribute nothing
    to the signed sum.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    dlon = (lons - center_lon + 180.0) % 360.0 - 180.0
    dlat = lats - center_lat
    sign = np.sign(dlon)
    on_meridian = sign == 0
    sign = np.where(on_meridian, np.sign(dlat), sign)
    return sign


def signed_distances_km(lats, lons, center_lat: float, center_lon: float):
    """Signed Haversine distance of each point from the centre."""
    d = haversine_km(lats, lons, center_lat, center_lon)
    return direction_sign(lats, lons, center_lat, center_lon) * d


def dispersion_km(lats, lons, absolute: bool = True) -> float:
    """The paper's geolocation-distribution value for one bot snapshot.

    Finds the geographic centre of the given bot locations, sums the
    signed distances from the centre, and (by default, as in the paper)
    returns the absolute value of that sum.  Zero indicates a
    geographically symmetric source distribution.

    ``absolute=False`` returns the raw signed sum, which the ablation
    benchmark uses to study the sign convention.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    if lats.size == 0:
        raise ValueError("dispersion of an empty bot set")
    if lats.size == 1:
        return 0.0
    center_lat, center_lon = geographic_center(lats, lons)
    total = float(np.sum(signed_distances_km(lats, lons, center_lat, center_lon)))
    return abs(total) if absolute else total
