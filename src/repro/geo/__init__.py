"""Geolocation substrate: world model, IP allocation, GeoIP service, geometry."""

from .haversine import (
    EARTH_RADIUS_KM,
    direction_sign,
    dispersion_km,
    geographic_center,
    haversine_km,
    signed_distances_km,
)
from .ipam import Block, IPAllocator, SequentialAssigner, ip_to_str, str_to_ip
from .mapping import GeoIPService, GeoRecord, ip_jitter_many
from .world import COUNTRY_TABLE, City, Country, Organization, World

__all__ = [
    "EARTH_RADIUS_KM",
    "direction_sign",
    "dispersion_km",
    "geographic_center",
    "haversine_km",
    "signed_distances_km",
    "Block",
    "IPAllocator",
    "SequentialAssigner",
    "ip_to_str",
    "str_to_ip",
    "GeoIPService",
    "GeoRecord",
    "ip_jitter_many",
    "COUNTRY_TABLE",
    "City",
    "Country",
    "Organization",
    "World",
]
