"""Synthetic GeoIP service (the Digital Envoy substitute).

The paper resolves every IP address — bot and victim — to country, city,
organization, ASN, latitude and longitude through Digital Envoy's
NetAcuity service (§II-C).  :class:`GeoIPService` offers the same query
surface against the synthetic world: the organization comes from the
address plan, the city from the organization, and the precise coordinates
are a deterministic per-IP jitter around the city centre so that distinct
hosts in one city do not collapse onto a single point.

The jitter is a pure function of the IP (a splitmix64 bit-mix fed through
Box-Muller), so the same address always resolves to the same coordinates
— from any service instance, scalar or vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ipam import IPAllocator, ip_to_str
from .world import World

__all__ = ["GeoRecord", "GeoIPService", "ip_jitter_many"]

#: Standard deviation (degrees) of the per-IP jitter around the city centre.
_JITTER_DEG = 0.35

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
    return x ^ (x >> np.uint64(31))


def ip_jitter_many(ips) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic per-IP coordinate jitter, vectorised.

    Returns ``(dlat, dlon)`` arrays in degrees.  Two independent uniforms
    are derived from the IP by splitmix64 mixing and pushed through the
    Box-Muller transform, giving isotropic Gaussian jitter.
    """
    ips = np.asarray(ips, dtype=np.uint64)
    with np.errstate(over="ignore"):
        h1 = _splitmix64(ips)
        h2 = _splitmix64(ips ^ np.uint64(0xD6E8FEB86659FD93))
    u1 = (h1 >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    u2 = (h2 >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    r = np.sqrt(-2.0 * np.log(np.maximum(u1, 1e-15)))
    dlat = r * np.cos(2.0 * np.pi * u2) * _JITTER_DEG
    dlon = r * np.sin(2.0 * np.pi * u2) * _JITTER_DEG
    return dlat, dlon


@dataclass(frozen=True)
class GeoRecord:
    """Everything the monitoring pipeline records about one IP (Table I)."""

    ip: int
    country_code: str
    country_index: int
    city: str
    city_index: int
    organization: str
    org_index: int
    asn: int
    lat: float
    lon: float

    @property
    def ip_str(self) -> str:
        return ip_to_str(self.ip)


class GeoIPService:
    """Resolve IPs against the synthetic world.

    >>> record = service.lookup(ip)
    >>> record.country_code, record.asn, (record.lat, record.lon)
    """

    def __init__(self, world: World, allocator: IPAllocator):
        self._world = world
        self._allocator = allocator

    @property
    def world(self) -> World:
        return self._world

    @property
    def allocator(self) -> IPAllocator:
        return self._allocator

    def lookup(self, ip: int) -> GeoRecord:
        """Full geolocation record for one IP.

        Raises ``KeyError`` for addresses outside the allocation plan —
        the synthetic monitoring service never emits such addresses, so a
        miss indicates a bug rather than a data condition.
        """
        org_index = self._allocator.org_of_ip(int(ip))
        if org_index is None:
            raise KeyError(f"IP {ip_to_str(int(ip))} is not in the allocation plan")
        org = self._world.organizations[org_index]
        city = self._world.cities[org.city_index]
        country = self._world.countries[org.country_index]
        dlat, dlon = ip_jitter_many(np.array([ip], dtype=np.uint64))
        lat = float(np.clip(city.lat + dlat[0], -85.0, 85.0))
        lon = ((city.lon + dlon[0] + 180.0) % 360.0) - 180.0
        return GeoRecord(
            ip=int(ip),
            country_code=country.code,
            country_index=country.index,
            city=city.name,
            city_index=city.index,
            organization=org.name,
            org_index=org.index,
            asn=org.asn,
            lat=lat,
            lon=lon,
        )

    def lookup_many(self, ips) -> list[GeoRecord]:
        """Resolve a sequence of IPs (order preserved)."""
        return [self.lookup(int(ip)) for ip in ips]

    def coords_for_city(self, city_index: int, ips) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised coordinates for many IPs known to live in one city.

        The dataset generator places hosts org-by-org, so it already knows
        each batch's city; this avoids a per-IP block lookup.
        """
        city = self._world.cities[city_index]
        ips = np.asarray(ips, dtype=np.uint64)
        dlat, dlon = ip_jitter_many(ips)
        lats = np.clip(city.lat + dlat, -85.0, 85.0)
        lons = ((city.lon + dlon + 180.0) % 360.0) - 180.0
        return lats, lons
