"""Synthetic world model: countries, cities, organizations, ASNs.

The paper geolocates every IP address with a commercial service (Digital
Envoy NetAcuity): each IP maps to a country, city, organization, ASN and a
latitude/longitude pair.  This module provides the static world that our
synthetic GeoIP service (:mod:`repro.geo.mapping`) resolves against.

Countries are real (ISO 3166-1 alpha-2 codes with approximate centroid
coordinates and an internet-population weight).  Cities, organizations and
ASNs are generated deterministically per country: the analyses only need a
consistent many-to-one structure with realistic spatial layout, not real
names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.rng import SeededStreams

__all__ = ["Country", "City", "Organization", "World", "COUNTRY_TABLE"]

# (iso2, name, centroid_lat, centroid_lon, internet_weight)
# Centroids are approximate country centroids; weights are a coarse proxy
# for internet-host population used when spreading synthetic bots and
# victims over the globe.
COUNTRY_TABLE: list[tuple[str, str, float, float, float]] = [
    ("US", "United States", 39.8, -98.6, 100.0),
    ("CN", "China", 35.9, 104.2, 95.0),
    ("RU", "Russia", 61.5, 105.3, 45.0),
    ("DE", "Germany", 51.2, 10.4, 40.0),
    ("JP", "Japan", 36.2, 138.3, 40.0),
    ("GB", "United Kingdom", 54.0, -2.0, 35.0),
    ("FR", "France", 46.2, 2.2, 32.0),
    ("BR", "Brazil", -14.2, -51.9, 30.0),
    ("IN", "India", 20.6, 79.0, 30.0),
    ("IT", "Italy", 41.9, 12.6, 25.0),
    ("KR", "South Korea", 35.9, 127.8, 25.0),
    ("CA", "Canada", 56.1, -106.3, 22.0),
    ("ES", "Spain", 40.5, -3.7, 20.0),
    ("MX", "Mexico", 23.6, -102.6, 18.0),
    ("ID", "Indonesia", -0.8, 113.9, 18.0),
    ("NL", "Netherlands", 52.1, 5.3, 17.0),
    ("TR", "Turkey", 39.0, 35.2, 16.0),
    ("AU", "Australia", -25.3, 133.8, 15.0),
    ("PL", "Poland", 51.9, 19.1, 14.0),
    ("UA", "Ukraine", 48.4, 31.2, 14.0),
    ("AR", "Argentina", -38.4, -63.6, 12.0),
    ("TW", "Taiwan", 23.7, 121.0, 12.0),
    ("SE", "Sweden", 60.1, 18.6, 11.0),
    ("VN", "Vietnam", 14.1, 108.3, 11.0),
    ("CO", "Colombia", 4.6, -74.3, 10.0),
    ("EG", "Egypt", 26.8, 30.8, 10.0),
    ("TH", "Thailand", 15.9, 101.0, 10.0),
    ("ZA", "South Africa", -30.6, 22.9, 9.0),
    ("IR", "Iran", 32.4, 53.7, 9.0),
    ("MY", "Malaysia", 4.2, 101.9, 9.0),
    ("PH", "Philippines", 12.9, 121.8, 9.0),
    ("RO", "Romania", 45.9, 25.0, 8.5),
    ("BE", "Belgium", 50.5, 4.5, 8.0),
    ("CH", "Switzerland", 46.8, 8.2, 8.0),
    ("AT", "Austria", 47.5, 14.6, 7.0),
    ("CZ", "Czechia", 49.8, 15.5, 7.0),
    ("PT", "Portugal", 39.4, -8.2, 6.5),
    ("GR", "Greece", 39.1, 21.8, 6.0),
    ("IL", "Israel", 31.0, 34.9, 6.0),
    ("HK", "Hong Kong", 22.4, 114.1, 6.0),
    ("SG", "Singapore", 1.35, 103.8, 6.0),
    ("DK", "Denmark", 56.3, 9.5, 5.5),
    ("NO", "Norway", 60.5, 8.5, 5.5),
    ("FI", "Finland", 61.9, 25.7, 5.5),
    ("HU", "Hungary", 47.2, 19.5, 5.5),
    ("CL", "Chile", -35.7, -71.5, 5.5),
    ("PK", "Pakistan", 30.4, 69.3, 5.5),
    ("SA", "Saudi Arabia", 23.9, 45.1, 5.0),
    ("AE", "United Arab Emirates", 23.4, 53.8, 5.0),
    ("VE", "Venezuela", 6.4, -66.6, 5.0),
    ("PE", "Peru", -9.2, -75.0, 5.0),
    ("NG", "Nigeria", 9.1, 8.7, 5.0),
    ("BG", "Bulgaria", 42.7, 25.5, 4.5),
    ("SK", "Slovakia", 48.7, 19.7, 4.0),
    ("IE", "Ireland", 53.4, -8.2, 4.0),
    ("NZ", "New Zealand", -40.9, 174.9, 4.0),
    ("BY", "Belarus", 53.7, 28.0, 4.0),
    ("KZ", "Kazakhstan", 48.0, 66.9, 4.0),
    ("RS", "Serbia", 44.0, 21.0, 3.5),
    ("HR", "Croatia", 45.1, 15.2, 3.5),
    ("LT", "Lithuania", 55.2, 23.9, 3.0),
    ("LV", "Latvia", 56.9, 24.6, 3.0),
    ("EE", "Estonia", 58.6, 25.0, 3.0),
    ("SI", "Slovenia", 46.2, 14.8, 3.0),
    ("MA", "Morocco", 31.8, -7.1, 3.0),
    ("DZ", "Algeria", 28.0, 1.7, 3.0),
    ("TN", "Tunisia", 33.9, 9.5, 3.0),
    ("KE", "Kenya", -0.0, 37.9, 3.0),
    ("EC", "Ecuador", -1.8, -78.2, 3.0),
    ("UY", "Uruguay", -32.5, -55.8, 3.0),
    ("BO", "Bolivia", -16.3, -63.6, 2.5),
    ("PY", "Paraguay", -23.4, -58.4, 2.5),
    ("CR", "Costa Rica", 9.7, -83.8, 2.5),
    ("PA", "Panama", 8.5, -80.8, 2.5),
    ("DO", "Dominican Republic", 18.7, -70.2, 2.5),
    ("GT", "Guatemala", 15.8, -90.2, 2.5),
    ("SV", "El Salvador", 13.8, -88.9, 2.0),
    ("HN", "Honduras", 15.2, -86.2, 2.0),
    ("NI", "Nicaragua", 12.9, -85.2, 2.0),
    ("CU", "Cuba", 21.5, -77.8, 2.0),
    ("JM", "Jamaica", 18.1, -77.3, 2.0),
    ("TT", "Trinidad and Tobago", 10.7, -61.2, 2.0),
    ("IS", "Iceland", 64.9, -19.0, 2.0),
    ("LU", "Luxembourg", 49.8, 6.1, 2.0),
    ("MT", "Malta", 35.9, 14.4, 2.0),
    ("CY", "Cyprus", 35.1, 33.4, 2.0),
    ("AL", "Albania", 41.2, 20.2, 2.0),
    ("MK", "North Macedonia", 41.6, 21.7, 2.0),
    ("BA", "Bosnia and Herzegovina", 43.9, 17.7, 2.0),
    ("ME", "Montenegro", 42.7, 19.4, 1.5),
    ("MD", "Moldova", 47.4, 28.4, 2.0),
    ("GE", "Georgia", 42.3, 43.4, 2.0),
    ("AM", "Armenia", 40.1, 45.0, 2.0),
    ("AZ", "Azerbaijan", 40.1, 47.6, 2.0),
    ("UZ", "Uzbekistan", 41.4, 64.6, 2.0),
    ("KG", "Kyrgyzstan", 41.2, 74.8, 1.5),
    ("TJ", "Tajikistan", 38.9, 71.3, 1.5),
    ("TM", "Turkmenistan", 38.97, 59.6, 1.5),
    ("MN", "Mongolia", 46.9, 103.8, 1.5),
    ("NP", "Nepal", 28.4, 84.1, 1.5),
    ("BD", "Bangladesh", 23.7, 90.4, 3.0),
    ("LK", "Sri Lanka", 7.9, 80.8, 2.0),
    ("MM", "Myanmar", 21.9, 95.9, 1.5),
    ("KH", "Cambodia", 12.6, 105.0, 1.5),
    ("LA", "Laos", 19.9, 102.5, 1.2),
    ("BN", "Brunei", 4.5, 114.7, 1.2),
    ("MO", "Macao", 22.2, 113.5, 1.2),
    ("JO", "Jordan", 30.6, 36.2, 2.0),
    ("LB", "Lebanon", 33.9, 35.9, 2.0),
    ("SY", "Syria", 34.8, 39.0, 1.5),
    ("IQ", "Iraq", 33.2, 43.7, 2.0),
    ("KW", "Kuwait", 29.3, 47.5, 2.0),
    ("QA", "Qatar", 25.4, 51.2, 2.0),
    ("BH", "Bahrain", 26.0, 50.6, 1.5),
    ("OM", "Oman", 21.5, 55.9, 1.5),
    ("YE", "Yemen", 15.6, 48.5, 1.2),
    ("AF", "Afghanistan", 33.9, 67.7, 1.2),
    ("ET", "Ethiopia", 9.1, 40.5, 1.5),
    ("GH", "Ghana", 7.9, -1.0, 2.0),
    ("CI", "Ivory Coast", 7.5, -5.5, 1.5),
    ("SN", "Senegal", 14.5, -14.5, 1.5),
    ("CM", "Cameroon", 7.4, 12.3, 1.5),
    ("UG", "Uganda", 1.4, 32.3, 1.5),
    ("TZ", "Tanzania", -6.4, 34.9, 1.5),
    ("ZM", "Zambia", -13.1, 27.8, 1.2),
    ("ZW", "Zimbabwe", -19.0, 29.2, 1.2),
    ("BW", "Botswana", -22.3, 24.7, 1.2),
    ("NA", "Namibia", -22.9, 18.5, 1.2),
    ("MZ", "Mozambique", -18.7, 35.5, 1.2),
    ("AO", "Angola", -11.2, 17.9, 1.2),
    ("MU", "Mauritius", -20.3, 57.6, 1.2),
    ("MG", "Madagascar", -18.8, 47.0, 1.2),
    ("LY", "Libya", 26.3, 17.2, 1.2),
    ("SD", "Sudan", 12.9, 30.2, 1.2),
    ("RW", "Rwanda", -1.9, 29.9, 1.0),
    ("MW", "Malawi", -13.3, 34.3, 1.0),
    ("BJ", "Benin", 9.3, 2.3, 1.0),
    ("BF", "Burkina Faso", 12.2, -1.6, 1.0),
    ("ML", "Mali", 17.6, -4.0, 1.0),
    ("NE", "Niger", 17.6, 8.1, 1.0),
    ("TD", "Chad", 15.5, 18.7, 1.0),
    ("GA", "Gabon", -0.8, 11.6, 1.0),
    ("CG", "Congo", -0.2, 15.8, 1.0),
    ("CD", "DR Congo", -4.0, 21.8, 1.0),
    ("GN", "Guinea", 9.9, -9.7, 1.0),
    ("SL", "Sierra Leone", 8.5, -11.8, 1.0),
    ("LR", "Liberia", 6.4, -9.4, 1.0),
    ("TG", "Togo", 8.6, 0.8, 1.0),
    ("MR", "Mauritania", 21.0, -10.9, 1.0),
    ("SO", "Somalia", 5.2, 46.2, 1.0),
    ("DJ", "Djibouti", 11.8, 42.6, 1.0),
    ("ER", "Eritrea", 15.2, 39.8, 1.0),
    ("SS", "South Sudan", 7.3, 30.3, 1.0),
    ("GM", "Gambia", 13.4, -15.3, 1.0),
    ("GW", "Guinea-Bissau", 11.8, -15.2, 1.0),
    ("SZ", "Eswatini", -26.5, 31.5, 1.0),
    ("LS", "Lesotho", -29.6, 28.2, 1.0),
    ("BI", "Burundi", -3.4, 29.9, 1.0),
    ("CF", "Central African Republic", 6.6, 20.9, 1.0),
    ("CV", "Cape Verde", 16.0, -24.0, 1.0),
    ("ST", "Sao Tome and Principe", 0.2, 6.6, 0.8),
    ("KM", "Comoros", -11.9, 43.9, 0.8),
    ("SC", "Seychelles", -4.7, 55.5, 0.8),
    ("BS", "Bahamas", 25.0, -77.4, 1.0),
    ("BB", "Barbados", 13.2, -59.5, 1.0),
    ("BZ", "Belize", 17.2, -88.5, 1.0),
    ("GY", "Guyana", 4.9, -58.9, 1.0),
    ("SR", "Suriname", 3.9, -56.0, 1.0),
    ("HT", "Haiti", 18.97, -72.3, 1.0),
    ("AG", "Antigua and Barbuda", 17.1, -61.8, 0.8),
    ("DM", "Dominica", 15.4, -61.4, 0.8),
    ("GD", "Grenada", 12.1, -61.7, 0.8),
    ("KN", "Saint Kitts and Nevis", 17.3, -62.7, 0.8),
    ("LC", "Saint Lucia", 13.9, -61.0, 0.8),
    ("VC", "Saint Vincent", 13.3, -61.2, 0.8),
    ("FJ", "Fiji", -17.7, 178.1, 1.0),
    ("PG", "Papua New Guinea", -6.3, 143.9, 1.0),
    ("SB", "Solomon Islands", -9.6, 160.2, 0.8),
    ("VU", "Vanuatu", -15.4, 166.9, 0.8),
    ("WS", "Samoa", -13.8, -172.1, 0.8),
    ("TO", "Tonga", -21.2, -175.2, 0.8),
    ("MV", "Maldives", 3.2, 73.2, 1.0),
    ("BT", "Bhutan", 27.5, 90.4, 0.8),
    ("TL", "Timor-Leste", -8.9, 125.7, 0.8),
    ("PS", "Palestine", 31.9, 35.2, 1.0),
    ("AD", "Andorra", 42.5, 1.6, 0.8),
    ("MC", "Monaco", 43.7, 7.4, 0.8),
    ("SM", "San Marino", 43.9, 12.5, 0.8),
    ("LI", "Liechtenstein", 47.2, 9.6, 0.8),
    ("GL", "Greenland", 71.7, -42.6, 0.8),
    ("FO", "Faroe Islands", 62.0, -6.9, 0.8),
    ("GI", "Gibraltar", 36.1, -5.3, 0.8),
    ("PR", "Puerto Rico", 18.2, -66.4, 1.5),
    ("RE", "Reunion", -21.1, 55.5, 0.8),
    ("GP", "Guadeloupe", 16.3, -61.6, 0.8),
    ("MQ", "Martinique", 14.6, -61.0, 0.8),
    ("NC", "New Caledonia", -21.3, 165.6, 0.8),
    ("PF", "French Polynesia", -17.7, -149.4, 0.8),
    ("AW", "Aruba", 12.5, -70.0, 0.8),
    ("CW", "Curacao", 12.2, -69.0, 0.8),
]

#: Organization archetypes and their relative frequency among victims.
#: The paper (§IV-B2) finds most attacks aim at web hosting services,
#: cloud providers/data centers, domain registrars and backbone ASes.
ORG_TYPES: list[tuple[str, float]] = [
    ("hosting", 0.30),
    ("cloud", 0.18),
    ("datacenter", 0.12),
    ("registrar", 0.06),
    ("backbone", 0.08),
    ("isp", 0.16),
    ("enterprise", 0.10),
]


@dataclass(frozen=True)
class Country:
    """A country in the synthetic world."""

    index: int
    code: str
    name: str
    lat: float
    lon: float
    weight: float


@dataclass(frozen=True)
class City:
    """A synthetic city: a population centre inside one country."""

    index: int
    name: str
    country_index: int
    lat: float
    lon: float
    weight: float


@dataclass(frozen=True)
class Organization:
    """A synthetic organization (hosting provider, ISP, ...) with one ASN."""

    index: int
    name: str
    org_type: str
    country_index: int
    city_index: int
    asn: int
    weight: float


@dataclass
class World:
    """The full static world: countries, cities, organizations, ASNs.

    Construction is deterministic given the seed streams.  City counts per
    country scale with the country's internet weight; every organization
    lives in one city and owns one ASN (a simplification — the analyses
    only count distinct ASNs/organizations, they never inspect BGP).
    """

    countries: list[Country] = field(default_factory=list)
    cities: list[City] = field(default_factory=list)
    organizations: list[Organization] = field(default_factory=list)
    _cities_by_country: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _orgs_by_country: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _country_by_code: dict[str, int] = field(default_factory=dict, repr=False)

    @classmethod
    def build(
        cls,
        streams: SeededStreams,
        mean_cities_per_country: float = 16.0,
        mean_orgs_per_country: float = 20.0,
        city_spread_deg: float = 4.0,
    ) -> "World":
        """Construct the world deterministically from seed streams.

        ``mean_cities_per_country`` / ``mean_orgs_per_country`` set the
        *average*; the per-country number scales with internet weight so
        large countries get proportionally more of both.
        """
        rng = streams.stream("geo.world")
        world = cls()
        total_weight = sum(w for *_rest, w in COUNTRY_TABLE)
        n_countries = len(COUNTRY_TABLE)

        for idx, (code, name, lat, lon, weight) in enumerate(COUNTRY_TABLE):
            world.countries.append(Country(idx, code, name, lat, lon, weight))
            world._country_by_code[code] = idx

        asn_counter = 100
        for country in world.countries:
            share = country.weight / total_weight * n_countries
            n_cities = max(2, int(round(mean_cities_per_country * share)))
            n_orgs = max(2, int(round(mean_orgs_per_country * share)))

            city_indices: list[int] = []
            # City weights follow a Zipf-like decay: the capital region
            # dominates, which concentrates bots/victims realistically.
            for c in range(n_cities):
                jitter_lat = float(rng.normal(0.0, city_spread_deg))
                jitter_lon = float(rng.normal(0.0, city_spread_deg))
                lat = float(np.clip(country.lat + jitter_lat, -85.0, 85.0))
                lon = ((country.lon + jitter_lon + 180.0) % 360.0) - 180.0
                city = City(
                    index=len(world.cities),
                    name=f"{country.code}-city-{c:03d}",
                    country_index=country.index,
                    lat=lat,
                    lon=lon,
                    weight=1.0 / (c + 1),
                )
                world.cities.append(city)
                city_indices.append(city.index)
            world._cities_by_country[country.index] = city_indices

            org_indices: list[int] = []
            type_names = [t for t, _w in ORG_TYPES]
            type_probs = np.array([w for _t, w in ORG_TYPES])
            type_probs = type_probs / type_probs.sum()
            for o in range(n_orgs):
                org_type = type_names[int(rng.choice(len(type_names), p=type_probs))]
                city_idx = city_indices[int(rng.integers(0, len(city_indices)))]
                asn_counter += int(rng.integers(1, 40))
                org = Organization(
                    index=len(world.organizations),
                    name=f"{org_type}-{country.code.lower()}-{o:03d}",
                    org_type=org_type,
                    country_index=country.index,
                    city_index=city_idx,
                    asn=asn_counter,
                    weight=1.0 / (o + 1),
                )
                world.organizations.append(org)
                org_indices.append(org.index)
            world._orgs_by_country[country.index] = org_indices

        return world

    # -- lookups -------------------------------------------------------

    def country_by_code(self, code: str) -> Country:
        """Country for an ISO2 ``code`` (raises ``KeyError``)."""
        try:
            return self.countries[self._country_by_code[code]]
        except KeyError:
            raise KeyError(f"unknown country code: {code!r}") from None

    def has_country(self, code: str) -> bool:
        """True when ``code`` exists in this world."""
        return code in self._country_by_code

    def cities_of(self, country_index: int) -> list[City]:
        """All cities of one country."""
        return [self.cities[i] for i in self._cities_by_country.get(country_index, [])]

    def organizations_of(self, country_index: int) -> list[Organization]:
        """All organizations of one country."""
        return [self.organizations[i] for i in self._orgs_by_country.get(country_index, [])]

    def city_weights_of(self, country_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(city indices, normalised weights) for sampling within a country."""
        idx = np.array(self._cities_by_country.get(country_index, []), dtype=np.int64)
        w = np.array([self.cities[i].weight for i in idx], dtype=float)
        return idx, w / w.sum()

    def org_weights_of(self, country_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(org indices, normalised weights) for sampling within a country."""
        idx = np.array(self._orgs_by_country.get(country_index, []), dtype=np.int64)
        w = np.array([self.organizations[i].weight for i in idx], dtype=float)
        return idx, w / w.sum()

    @property
    def n_countries(self) -> int:
        return len(self.countries)

    @property
    def n_cities(self) -> int:
        return len(self.cities)

    @property
    def n_organizations(self) -> int:
        return len(self.organizations)
