"""IPv4 address-space allocation for the synthetic world.

The real dataset resolves bot and victim IPs through a commercial GeoIP
service.  Our substitute needs the inverse capability too: *place* a bot
or victim inside a chosen country/organization and hand out an IP address
that the GeoIP service will resolve back consistently.  This module
manages that address plan: every organization owns one contiguous block,
blocks never overlap, and lookup is O(log n) by binary search.

Reserved ranges (0/8, 10/8, 127/8, 169.254/16, 172.16/12, 192.168/16,
224/3) are skipped so no synthetic host ever carries a bogon address.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..simulation.rng import SeededStreams
from .world import World

__all__ = ["IPAllocator", "ip_to_str", "str_to_ip", "Block"]

_MAX_IP = (1 << 32) - 1

# (start, end) pairs of reserved space, half-open, sorted by start.
_RESERVED: list[tuple[int, int]] = [
    (0x00000000, 0x01000000),  # 0.0.0.0/8
    (0x0A000000, 0x0B000000),  # 10.0.0.0/8
    (0x7F000000, 0x80000000),  # 127.0.0.0/8
    (0xA9FE0000, 0xA9FF0000),  # 169.254.0.0/16
    (0xAC100000, 0xAC200000),  # 172.16.0.0/12
    (0xC0A80000, 0xC0A90000),  # 192.168.0.0/16
    (0xE0000000, 0x100000000),  # 224.0.0.0/3 (multicast + reserved)
]


def ip_to_str(ip: int) -> str:
    """Render a 32-bit integer as dotted-quad notation."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"not a 32-bit IPv4 address: {ip}")
    return f"{(ip >> 24) & 0xFF}.{(ip >> 16) & 0xFF}.{(ip >> 8) & 0xFF}.{ip & 0xFF}"


def str_to_ip(s: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = s.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {s!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {s!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class Block:
    """A half-open address block ``[start, start + size)`` owned by one org."""

    start: int
    size: int
    org_index: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, ip: int) -> bool:
        """True when ``ip`` falls inside this block."""
        return self.start <= ip < self.end


class IPAllocator:
    """Deterministic IPv4 address plan over a :class:`World`.

    Each organization receives one contiguous block whose size scales with
    the organization's type (hosting/cloud/datacenter orgs are larger) and
    weight.  Allocation walks the address space from low to high, skipping
    reserved ranges, so the plan is a pure function of the world and the
    seed.
    """

    # Relative block-size multiplier per organization type.
    _TYPE_SIZE = {
        "hosting": 16,
        "cloud": 24,
        "datacenter": 12,
        "registrar": 4,
        "backbone": 32,
        "isp": 48,
        "enterprise": 4,
    }

    def __init__(self, world: World, streams: SeededStreams, base_block_size: int = 256):
        self._world = world
        rng = streams.stream("geo.ipam")
        self._blocks: list[Block] = []
        self._block_starts: list[int] = []
        self._block_by_org: dict[int, Block] = {}

        cursor = 0x01000000  # first non-reserved /8
        reserved_iter = iter(_RESERVED)
        next_reserved = next(reserved_iter, None)
        # Skip reserved ranges that end before the cursor.
        while next_reserved is not None and next_reserved[1] <= cursor:
            next_reserved = next(reserved_iter, None)

        for org in world.organizations:
            multiplier = self._TYPE_SIZE.get(org.org_type, 8)
            # Small random factor so identically typed orgs differ.
            factor = 1 + int(rng.integers(0, 4))
            size = base_block_size * multiplier * factor
            # Hop over any reserved range the block would touch.
            while next_reserved is not None and cursor + size > next_reserved[0]:
                cursor = next_reserved[1]
                next_reserved = next(reserved_iter, None)
            if cursor + size > _MAX_IP:
                raise RuntimeError("IPv4 space exhausted by allocation plan")
            block = Block(start=cursor, size=size, org_index=org.index)
            self._blocks.append(block)
            self._block_starts.append(cursor)
            self._block_by_org[org.index] = block
            cursor += size

    # -- queries -------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def blocks(self) -> list[Block]:
        """All allocated blocks, ascending by start address."""
        return list(self._blocks)

    def block_of_org(self, org_index: int) -> Block:
        """The block owned by ``org_index`` (raises ``KeyError``)."""
        try:
            return self._block_by_org[org_index]
        except KeyError:
            raise KeyError(f"organization {org_index} has no allocation") from None

    def lookup(self, ip: int) -> Block | None:
        """Return the block containing ``ip``, or ``None`` if unallocated."""
        pos = bisect.bisect_right(self._block_starts, ip) - 1
        if pos < 0:
            return None
        block = self._blocks[pos]
        return block if block.contains(ip) else None

    def org_of_ip(self, ip: int) -> int | None:
        """Organization index owning ``ip``, or ``None``."""
        block = self.lookup(ip)
        return None if block is None else block.org_index

    # -- sampling ------------------------------------------------------

    def sample_ips(self, rng: np.random.Generator, org_index: int, n: int) -> np.ndarray:
        """Draw ``n`` distinct IPs (uint64 array) from an org's block.

        Raises ``ValueError`` if the block is smaller than ``n``.
        """
        block = self.block_of_org(org_index)
        if n > block.size:
            raise ValueError(
                f"org {org_index} block holds {block.size} addresses, asked for {n}"
            )
        offsets = rng.choice(block.size, size=n, replace=False)
        return (block.start + offsets).astype(np.uint64)

    def sample_ip(self, rng: np.random.Generator, org_index: int) -> int:
        """Draw one IP from an org's block (may repeat across calls)."""
        block = self.block_of_org(org_index)
        return int(block.start + rng.integers(0, block.size))


class SequentialAssigner:
    """Hands out globally unique IPs from org blocks, first-fit sequential.

    The dataset generator places hundreds of thousands of hosts; drawing
    randomly per host risks collisions across consumers, so unique
    addresses are taken sequentially per organization.  ``take`` raises
    ``ValueError`` when an org's block is exhausted — callers spill over
    to another organization in the same country.
    """

    def __init__(self, allocator: IPAllocator):
        self._allocator = allocator
        self._cursors: dict[int, int] = {}

    def remaining(self, org_index: int) -> int:
        block = self._allocator.block_of_org(org_index)
        return block.size - self._cursors.get(org_index, 0)

    def take(self, org_index: int, n: int) -> np.ndarray:
        """Take ``n`` unique IPs from the org's block (uint64 array)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        block = self._allocator.block_of_org(org_index)
        cursor = self._cursors.get(org_index, 0)
        if cursor + n > block.size:
            raise ValueError(
                f"org {org_index} block exhausted: {block.size - cursor} "
                f"addresses left, asked for {n}"
            )
        ips = (block.start + cursor + np.arange(n, dtype=np.uint64)).astype(np.uint64)
        self._cursors[org_index] = cursor + n
        return ips
