"""AttackStreamSummary: the paper's questions at fixed memory.

One object bundling every sketch the streaming layer maintains, keyed
to the quantities the DSN 2015 characterization actually reports:

* **per-key frequencies** (Count-Min): attacks per family, per victim
  IP, per target country;
* **distinct cardinalities** (HyperLogLog): botnets, victim IPs, and
  target countries seen;
* **distributions** (KLL + reservoir): attack duration and inter-attack
  interval seconds — the paper's Fig. 4/5 axes.

Family and country *name sets* are kept exactly — those domains are
tiny (23 families, ~200 ISO codes) and bounded by the world, not the
stream — which lets :meth:`AttackStreamSummary.estimate` enumerate
per-family and per-country counts without a heavy-hitters structure.
Everything keyed by stream-sized domains (victim IPs, botnet ids) stays
strictly approximate.

The summary is itself a mergeable value: :meth:`AttackStreamSummary.merge`
folds a peer built with the same parameters, so per-shard summaries
reduce exactly like the shard layer's exact views
(:func:`repro.core.merge.sketch_summaries`).  The one approximation a
merge introduces beyond the member sketches' own contracts: the single
inter-attack interval spanning the boundary between the two summaries
is not observed (each side only knows its own arrivals).
"""

from __future__ import annotations

import numpy as np

from ..obs import registry as _obs_registry
from .cms import CountMinSketch
from .hll import HyperLogLog
from .quantiles import KLLSketch, ReservoirSample

__all__ = ["AttackStreamSummary", "summarize_dataset"]

_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


class AttackStreamSummary:
    """Every streaming sketch over an attack stream, in one mergeable value.

    >>> from repro import api
    >>> from repro.sketch import AttackStreamSummary
    >>> ds = api.generate(scale=0.005)
    >>> summary = AttackStreamSummary(seed=7)
    >>> summary.update(ds.iter_attacks()) == ds.n_attacks
    True
    >>> est = summary.estimate()
    >>> est["n_records"] == ds.n_attacks
    True
    >>> sorted(est["families"]) == sorted(ds.active_families)
    True
    """

    __slots__ = (
        "_params",
        "cms_family",
        "cms_victim",
        "cms_country",
        "hll_botnets",
        "hll_victims",
        "hll_countries",
        "kll_duration",
        "kll_interval",
        "reservoir_duration",
        "_families",
        "_countries",
        "_n_records",
        "_last_start",
    )

    def __init__(
        self,
        *,
        epsilon: float = 0.001,
        delta: float = 0.01,
        precision: int = 12,
        k: int = 200,
        reservoir_size: int = 4096,
        seed: int = 7,
    ) -> None:
        self._params = {
            "epsilon": float(epsilon),
            "delta": float(delta),
            "precision": int(precision),
            "k": int(k),
            "reservoir_size": int(reservoir_size),
            "seed": int(seed),
        }
        self.cms_family = CountMinSketch(epsilon=epsilon, delta=delta, seed=seed)
        self.cms_victim = CountMinSketch(epsilon=epsilon, delta=delta, seed=seed + 1)
        self.cms_country = CountMinSketch(epsilon=epsilon, delta=delta, seed=seed + 2)
        self.hll_botnets = HyperLogLog(precision=precision, seed=seed)
        self.hll_victims = HyperLogLog(precision=precision, seed=seed + 1)
        self.hll_countries = HyperLogLog(precision=precision, seed=seed + 2)
        self.kll_duration = KLLSketch(k=k, seed=seed)
        self.kll_interval = KLLSketch(k=k, seed=seed + 1)
        self.reservoir_duration = ReservoirSample(size=reservoir_size, seed=seed)
        self._families: set[str] = set()
        self._countries: set[str] = set()
        self._n_records = 0
        self._last_start = -np.inf
        reg = _obs_registry()
        reg.gauge("sketch.error_budget", structure="cms").set(self.cms_family.epsilon)
        reg.gauge("sketch.error_budget", structure="hll").set(
            self.hll_botnets.relative_error
        )
        reg.gauge("sketch.error_budget", structure="kll").set(
            self.kll_duration.rank_error
        )

    # -- shape -------------------------------------------------------------

    @property
    def params(self) -> dict:
        """The construction parameters (merges require equal params)."""
        return dict(self._params)

    @property
    def n_records(self) -> int:
        """Records folded in so far (exact)."""
        return self._n_records

    @property
    def families(self) -> list:
        """Family names seen so far (exact — the domain is tiny), sorted."""
        return sorted(self._families)

    @property
    def countries(self) -> list:
        """Country codes seen so far (exact — the domain is tiny), sorted."""
        return sorted(self._countries)

    def memory_bytes(self) -> int:
        """Total resident bytes across all member sketches."""
        return int(
            self.cms_family.memory_bytes
            + self.cms_victim.memory_bytes
            + self.cms_country.memory_bytes
            + self.hll_botnets.memory_bytes
            + self.hll_victims.memory_bytes
            + self.hll_countries.memory_bytes
            + self.kll_duration.memory_bytes
            + self.kll_interval.memory_bytes
            + self.reservoir_duration.memory_bytes
        )

    # -- updates -----------------------------------------------------------

    def update(self, records) -> int:
        """Fold an iterable of :class:`~repro.monitor.schemas.DDoSAttackRecord`.

        Records are sorted by timestamp before the interval sketch sees
        them (matching the stream layer's per-batch sort); returns the
        number folded.
        """
        batch = sorted(records, key=lambda r: r.timestamp)
        if not batch:
            return 0
        return self.update_arrays(
            start=np.asarray([r.timestamp for r in batch], dtype=np.float64),
            end=np.asarray([r.end_time for r in batch], dtype=np.float64),
            family=np.asarray([r.family for r in batch], dtype=object),
            country=np.asarray([r.country_code for r in batch], dtype=object),
            victim=np.asarray([r.target_ip for r in batch], dtype=np.uint64),
            botnet=np.asarray([r.botnet_id for r in batch], dtype=np.int64),
        )

    def update_arrays(self, *, start, end, family, country, victim, botnet) -> int:
        """Vectorised fold of one batch given as parallel per-attack arrays.

        ``start``/``end`` are epoch seconds (``start`` must be
        non-decreasing within the batch — the stream layer's sort
        guarantees it); ``family``/``country`` are per-attack string
        arrays; ``victim``/``botnet`` integer arrays.  The inter-arrival
        sketch observes consecutive ``start`` differences, plus the
        boundary gap to the previous batch when the stream is in order
        (a regression is dropped, not folded as a negative interval).
        Counts into ``sketch.updates`` and refreshes the
        ``sketch.memory_bytes`` gauge; returns the batch size.
        """
        start = np.asarray(start, dtype=np.float64)
        n = int(start.size)
        if n == 0:
            return 0
        end = np.asarray(end, dtype=np.float64)

        fam_labels, fam_counts = np.unique(np.asarray(family, dtype=object),
                                           return_counts=True)
        self.cms_family.update(fam_labels.tolist(), fam_counts)
        self._families.update(fam_labels.tolist())

        cc_labels, cc_counts = np.unique(np.asarray(country, dtype=object),
                                         return_counts=True)
        self.cms_country.update(cc_labels.tolist(), cc_counts)
        self.hll_countries.update(cc_labels.tolist())
        self._countries.update(cc_labels.tolist())

        victim = np.asarray(victim).astype(np.uint64, copy=False)
        self.cms_victim.update(victim)
        self.hll_victims.update(victim)
        self.hll_botnets.update(np.asarray(botnet).astype(np.int64, copy=False))

        durations = end - start
        self.kll_duration.update(durations)
        self.reservoir_duration.update(durations)

        intervals = np.diff(start)
        if np.isfinite(self._last_start):
            boundary = start[0] - self._last_start
            if boundary >= 0.0:
                intervals = np.concatenate([[boundary], intervals])
        self.kll_interval.update(intervals)
        self._last_start = max(self._last_start, float(start[-1]))

        self._n_records += n
        reg = _obs_registry()
        reg.counter("sketch.updates").inc(n)
        reg.gauge("sketch.memory_bytes").set(self.memory_bytes())
        return n

    # -- queries -----------------------------------------------------------

    def estimate(self, *, top_countries: int = 10) -> dict:
        """The paper-shaped approximate answers, as one JSON-able dict.

        Keys: exact ``n_records``; per-family attack counts (every
        family — the set is exact, the counts are Count-Min estimates);
        the ``top_countries`` most-attacked target countries; distinct
        botnet/victim/country cardinalities (HLL); duration and
        inter-attack-interval quantiles (KLL).
        """
        families = {
            fam: int(est)
            for fam, est in zip(
                self.families, self.cms_family.estimate_many(self.families)
            )
        }
        cc = self.countries
        cc_est = self.cms_country.estimate_many(cc)
        order = np.argsort(cc_est, kind="stable")[::-1][:top_countries]
        countries = {cc[i]: int(cc_est[i]) for i in order}
        return {
            "n_records": self._n_records,
            "families": families,
            "top_countries": countries,
            "distinct": {
                "botnets": round(self.hll_botnets.estimate()),
                "victims": round(self.hll_victims.estimate()),
                "countries": round(self.hll_countries.estimate()),
            },
            "duration_seconds": {
                f"p{int(q * 100)}": self.kll_duration.quantile(q)
                for q in _QUANTILES
            },
            "interval_seconds": {
                f"p{int(q * 100)}": self.kll_interval.quantile(q)
                for q in _QUANTILES
            },
        }

    def contract(self) -> dict:
        """The accuracy contract of every member structure, as data.

        Mirrors the table in ``docs/STREAMING.md`` (the docs test keeps
        the two in sync): Count-Min over-counts by at most
        ``epsilon * total`` w.p. ``>= 1 - delta``; HLL is within
        ``3 * rse`` relative w.p. ~99.7 %; KLL quantile *ranks* are off
        by at most ``rank_error`` (additive) w.p. ~99 %.
        """
        return {
            "cms": {
                "epsilon": self.cms_family.epsilon,
                "delta": self.cms_family.delta,
                "bound": "true <= estimate <= true + epsilon * total, "
                         "w.p. >= 1 - delta",
            },
            "hll": {
                "relative_standard_error": self.hll_botnets.relative_error,
                "bound": "|estimate - true| <= 3 * rse * true, w.p. ~99.7%",
            },
            "kll": {
                "rank_error": self.kll_duration.rank_error,
                "bound": "|rank(estimate) - q| <= rank_error, w.p. ~99%",
            },
        }

    # -- algebra -----------------------------------------------------------

    def merge(self, other: "AttackStreamSummary") -> "AttackStreamSummary":
        """Fold another summary in; returns ``self``.

        Requires equal construction params.  All member sketches merge
        under their own algebra; the exact family/country sets union;
        the one interval spanning the boundary between the two summaries
        is dropped (neither side observed it).  Counts into
        ``sketch.merges``.
        """
        if not isinstance(other, AttackStreamSummary):
            raise TypeError(
                f"cannot merge AttackStreamSummary with {type(other).__name__}"
            )
        if self._params != other._params:
            raise ValueError(
                "cannot merge summaries with different params: "
                f"{self._params} vs {other._params}"
            )
        self.cms_family.merge(other.cms_family)
        self.cms_victim.merge(other.cms_victim)
        self.cms_country.merge(other.cms_country)
        self.hll_botnets.merge(other.hll_botnets)
        self.hll_victims.merge(other.hll_victims)
        self.hll_countries.merge(other.hll_countries)
        self.kll_duration.merge(other.kll_duration)
        self.kll_interval.merge(other.kll_interval)
        self.reservoir_duration.merge(other.reservoir_duration)
        self._families |= other._families
        self._countries |= other._countries
        self._n_records += other._n_records
        self._last_start = max(self._last_start, other._last_start)
        reg = _obs_registry()
        reg.counter("sketch.merges").inc()
        reg.gauge("sketch.memory_bytes").set(self.memory_bytes())
        return self

    def copy(self) -> "AttackStreamSummary":
        """An independent deep copy (same params and state)."""
        dup = AttackStreamSummary(**self._params)
        dup.cms_family = self.cms_family.copy()
        dup.cms_victim = self.cms_victim.copy()
        dup.cms_country = self.cms_country.copy()
        dup.hll_botnets = self.hll_botnets.copy()
        dup.hll_victims = self.hll_victims.copy()
        dup.hll_countries = self.hll_countries.copy()
        dup.kll_duration = self.kll_duration.copy()
        dup.kll_interval = self.kll_interval.copy()
        dup.reservoir_duration = self.reservoir_duration.copy()
        dup._families = set(self._families)
        dup._countries = set(self._countries)
        dup._n_records = self._n_records
        dup._last_start = self._last_start
        return dup

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state: params + every member sketch's own state."""
        return {
            "kind": "attack_stream_summary",
            "params": dict(self._params),
            "n_records": self._n_records,
            "last_start": None if not np.isfinite(self._last_start)
            else float(self._last_start),
            "families": self.families,
            "countries": self.countries,
            "cms_family": self.cms_family.to_dict(),
            "cms_victim": self.cms_victim.to_dict(),
            "cms_country": self.cms_country.to_dict(),
            "hll_botnets": self.hll_botnets.to_dict(),
            "hll_victims": self.hll_victims.to_dict(),
            "hll_countries": self.hll_countries.to_dict(),
            "kll_duration": self.kll_duration.to_dict(),
            "kll_interval": self.kll_interval.to_dict(),
            "reservoir_duration": self.reservoir_duration.to_dict(),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "AttackStreamSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        summary = cls(**state["params"])
        summary.cms_family = CountMinSketch.from_dict(state["cms_family"])
        summary.cms_victim = CountMinSketch.from_dict(state["cms_victim"])
        summary.cms_country = CountMinSketch.from_dict(state["cms_country"])
        summary.hll_botnets = HyperLogLog.from_dict(state["hll_botnets"])
        summary.hll_victims = HyperLogLog.from_dict(state["hll_victims"])
        summary.hll_countries = HyperLogLog.from_dict(state["hll_countries"])
        summary.kll_duration = KLLSketch.from_dict(state["kll_duration"])
        summary.kll_interval = KLLSketch.from_dict(state["kll_interval"])
        summary.reservoir_duration = ReservoirSample.from_dict(
            state["reservoir_duration"]
        )
        summary._families = set(state["families"])
        summary._countries = set(state["countries"])
        summary._n_records = int(state["n_records"])
        summary._last_start = (
            -np.inf if state["last_start"] is None else float(state["last_start"])
        )
        return summary


def summarize_dataset(ds, **params) -> AttackStreamSummary:
    """Sketch an existing :class:`~repro.core.dataset.AttackDataset`.

    Column-vectorised: per-attack family and country strings are gathered
    through the dataset's index columns, so a full-scale dataset sketches
    in one pass without materialising record objects.  ``params`` are
    forwarded to :class:`AttackStreamSummary`.
    """
    summary = AttackStreamSummary(**params)
    if ds.n_attacks == 0:
        return summary
    family = np.asarray(ds.families, dtype=object)[ds.family_idx]
    codes = np.asarray([c.code for c in ds.world.countries], dtype=object)
    country = codes[np.asarray(ds.victims.country_idx)[ds.target_idx]]
    order = np.argsort(ds.start, kind="stable")
    summary.update_arrays(
        start=np.asarray(ds.start)[order],
        end=np.asarray(ds.end)[order],
        family=family[order],
        country=country[order],
        victim=np.asarray(ds.victims.ip)[ds.target_idx][order],
        botnet=np.asarray(ds.botnet_id)[order],
    )
    return summary
