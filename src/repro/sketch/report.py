"""Plain-text rendering of an :class:`~repro.sketch.AttackStreamSummary`.

The sketch-mode counterpart of :mod:`repro.core.report`: where the exact
reports render from an :class:`~repro.core.context.AnalysisContext`,
this renders straight from a summary's :meth:`estimate` dict — the
``stream.watch --sketch`` screen and the ``/v1/sketch`` endpoint's
human-readable sibling.  Every number shown is approximate except the
record count; the footer restates the error budget so a screenshot of
the report carries its own caveats.
"""

from __future__ import annotations

__all__ = ["render_sketch_report"]


def _fmt_seconds(value: float) -> str:
    """Render a duration compactly: seconds below 2 min, else minutes/hours."""
    if value != value:  # NaN: empty sketch
        return "-"
    if value < 120:
        return f"{value:.0f}s"
    if value < 7200:
        return f"{value / 60:.1f}m"
    return f"{value / 3600:.1f}h"


def render_sketch_report(summary) -> str:
    """A compact terminal report of a summary's approximate answers.

    >>> from repro.sketch import AttackStreamSummary
    >>> from repro.sketch.report import render_sketch_report
    >>> text = render_sketch_report(AttackStreamSummary())
    >>> text.splitlines()[0]
    'Sketch summary over 0 attacks (approximate)'
    """
    est = summary.estimate()
    contract = summary.contract()
    lines = [
        f"Sketch summary over {est['n_records']} attacks (approximate)",
        "",
        f"distinct botnets ~{est['distinct']['botnets']}  "
        f"victims ~{est['distinct']['victims']}  "
        f"countries ~{est['distinct']['countries']}",
        "",
        "attacks per family (Count-Min):",
    ]
    families = sorted(est["families"].items(), key=lambda kv: (-kv[1], kv[0]))
    for fam, count in families[:12]:
        lines.append(f"  {fam:<16} ~{count}")
    if len(families) > 12:
        lines.append(f"  ... and {len(families) - 12} more families")
    lines.append("")
    lines.append("top target countries (Count-Min):")
    for code, count in est["top_countries"].items():
        lines.append(f"  {code:<4} ~{count}")
    dur = est["duration_seconds"]
    gap = est["interval_seconds"]
    lines += [
        "",
        "duration   p50 {}  p90 {}  p99 {}".format(
            _fmt_seconds(dur["p50"]), _fmt_seconds(dur["p90"]),
            _fmt_seconds(dur["p99"]),
        ),
        "interarrival p50 {}  p90 {}  p99 {}".format(
            _fmt_seconds(gap["p50"]), _fmt_seconds(gap["p90"]),
            _fmt_seconds(gap["p99"]),
        ),
        "",
        "error budget: cms +{:.2%} of stream (delta {:.0%}); "
        "hll +-{:.2%} rse; kll rank +-{:.2%}".format(
            contract["cms"]["epsilon"], contract["cms"]["delta"],
            contract["hll"]["relative_standard_error"],
            contract["kll"]["rank_error"],
        ),
        f"resident sketch memory: {summary.memory_bytes() / 1024:.0f} KiB",
    ]
    return "\n".join(lines)
