"""Deterministic 64-bit hashing shared by every sketch structure.

All sketches in :mod:`repro.sketch` hash through one primitive so their
estimates are reproducible across processes and machines: a SplitMix64
finalizer over unsigned 64-bit numpy arrays (vectorised, overflow-
wrapping by construction) seeded per use site.  Python's builtin
``hash`` is deliberately avoided — it is salted per process
(``PYTHONHASHSEED``), which would make two runs of the same stream
disagree about which counter a key lands in.

Keys come in two shapes:

* **integer keys** (victim IPs, botnet ids) pass through as their own
  64-bit code and are hashed in bulk by :func:`hash_codes`;
* **string keys** (family names, country codes) are folded to a 64-bit
  code once via BLAKE2b (:func:`code_of`) and memoised — the string
  domains here (23 families, ~200 countries) are tiny, so the memo is
  bounded by the domain, not the stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["code_of", "codes_of", "hash_codes"]

_U64 = np.uint64

#: SplitMix64 increment (odd), used to derive per-row seeds.
_GOLDEN = _U64(0x9E3779B97F4A7C15)

#: Memo of string-key codes; bounded by the key domains (families,
#: country codes), never by stream length.
_STR_CODES: dict[str, int] = {}


def _mix(z: np.ndarray) -> np.ndarray:
    """The SplitMix64 finalizer over a uint64 array (wrapping)."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        return z ^ (z >> _U64(31))


def hash_codes(codes: np.ndarray, seed: int) -> np.ndarray:
    """Hash a uint64 code array under one seed (uint64 out, vectorised).

    Different seeds give (empirically) independent hash functions, which
    is what the Count-Min rows and the HyperLogLog index/rank split rely
    on.

    >>> import numpy as np
    >>> from repro.sketch.hashing import hash_codes
    >>> a = hash_codes(np.arange(4, dtype=np.uint64), seed=0)
    >>> b = hash_codes(np.arange(4, dtype=np.uint64), seed=1)
    >>> a.dtype == np.uint64 and not np.array_equal(a, b)
    True
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = codes + _GOLDEN * _U64(2 * seed + 1)
    return _mix(z)


def code_of(key) -> int:
    """The stable 64-bit code of one scalar key (int or str).

    Integers pass through (masked to 64 bits); strings are digested with
    BLAKE2b and memoised, so repeated lookups of the same family or
    country name cost a dict hit.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, str):
        code = _STR_CODES.get(key)
        if code is None:
            code = int.from_bytes(
                hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
            )
            _STR_CODES[key] = code
        return code
    raise TypeError(f"sketch keys must be int or str, got {type(key).__name__}")


def codes_of(keys) -> np.ndarray:
    """Vectorised :func:`code_of`: a uint64 code array for a key batch.

    Integer arrays are reinterpreted in bulk; anything else goes through
    the scalar path (amortised to a memo hit per distinct string).
    """
    arr = np.asarray(keys)
    if arr.dtype.kind in ("i", "u"):
        return arr.astype(np.uint64, copy=False)
    return np.fromiter(
        (code_of(k) for k in arr.tolist()), dtype=np.uint64, count=arr.size
    )
