"""Quantile and sample sketches for duration / inter-arrival streams.

Two bounded-memory summaries of a numeric stream:

* :class:`KLLSketch` — a KLL-style compactor hierarchy (Karnin, Lang,
  Liberty 2016).  Level ``l`` holds items of weight ``2**l``; when a
  level overflows its capacity ``k * (2/3) ** (H - 1 - l)`` it sorts,
  keeps every other item (even or odd positions, chosen by a seeded
  RNG), and promotes the survivors one level up.  Rank queries are
  answered from the weighted union of all levels.  At the default
  ``k=200`` the additive *rank* error is about ``2.3 / k**0.9`` ≈ 2 %
  at 99 % confidence — the contract documented in
  ``docs/STREAMING.md`` and asserted by the full-scale parity tests.
* :class:`ReservoirSample` — a fixed-size uniform sample, useful when a
  raw subsample of values (not just quantiles) is wanted, e.g. to
  re-fit a distribution.  Merging two reservoirs draws each slot from
  the union in proportion to the populations seen, so a merged
  reservoir is again (approximately) a uniform sample of the union.

Both use ``numpy.random.default_rng`` seeded at construction, so a
given stream order reproduces bit-identical state; both merge with
same-parameter peers, composing with the shard layer's map-reduce.
"""

from __future__ import annotations

import base64

import numpy as np

__all__ = ["KLLSketch", "ReservoirSample"]


def _level_capacity(k: int, depth: int, level: int) -> int:
    """Capacity of ``level`` in a hierarchy currently ``depth`` levels tall."""
    return max(8, int(np.ceil(k * (2.0 / 3.0) ** (depth - 1 - level))))


class KLLSketch:
    """Approximate quantiles of an unbounded numeric stream.

    >>> from repro.sketch import KLLSketch
    >>> kll = KLLSketch(k=200, seed=7)
    >>> kll.update(range(10000))
    >>> abs(kll.quantile(0.5) - 5000) <= kll.rank_error * 10000
    True
    """

    __slots__ = ("_k", "_seed", "_rng", "_levels", "_n", "_min", "_max")

    def __init__(self, *, k: int = 200, seed: int = 7) -> None:
        if k < 8:
            raise ValueError(f"k must be >= 8, got {k}")
        self._k = int(k)
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._levels: list[np.ndarray] = [np.zeros(0, dtype=np.float64)]
        self._n = 0
        self._min = np.inf
        self._max = -np.inf

    # -- shape -------------------------------------------------------------

    @property
    def k(self) -> float:
        """The accuracy knob: bigger k, smaller rank error, more memory."""
        return self._k

    @property
    def seed(self) -> int:
        """The compaction-RNG seed; merges require equal seeds."""
        return self._seed

    @property
    def n(self) -> int:
        """Stream length folded in so far (exact)."""
        return self._n

    @property
    def rank_error(self) -> float:
        """Additive rank-error bound at ~99 % confidence: ``2.3 / k**0.9``."""
        return 2.3 / self._k ** 0.9

    @property
    def memory_bytes(self) -> int:
        """Resident size of the retained items across all levels."""
        return int(sum(level.nbytes for level in self._levels))

    # -- updates -----------------------------------------------------------

    def update(self, values) -> None:
        """Fold a batch of numeric values into the sketch."""
        batch = np.asarray(list(values) if not hasattr(values, "__len__") else values,
                           dtype=np.float64).ravel()
        if batch.size == 0:
            return
        self._n += int(batch.size)
        self._min = min(self._min, float(batch.min()))
        self._max = max(self._max, float(batch.max()))
        self._levels[0] = np.concatenate([self._levels[0], batch])
        self._compress()

    def _compress(self) -> None:
        """Compact any over-capacity level upward until all levels fit."""
        level = 0
        while level < len(self._levels):
            depth = len(self._levels)
            cap = _level_capacity(self._k, depth, level)
            items = self._levels[level]
            if items.size <= cap:
                level += 1
                continue
            items = np.sort(items)
            if items.size % 2:
                # Keep one item behind so pairs line up; it stays at
                # this level with its original weight.
                keep, items = items[:1], items[1:]
            else:
                keep = items[:0]
            offset = int(self._rng.integers(0, 2))
            promoted = items[offset::2]
            self._levels[level] = keep
            if level + 1 == len(self._levels):
                self._levels.append(np.zeros(0, dtype=np.float64))
            self._levels[level + 1] = np.concatenate(
                [self._levels[level + 1], promoted]
            )
            level += 1

    # -- queries -----------------------------------------------------------

    def quantile(self, q: float):
        """The estimated value at quantile ``q`` (0 ≤ q ≤ 1).

        Returns ``nan`` on an empty sketch.  ``q=0`` / ``q=1`` return
        the exact tracked min / max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._n == 0:
            return float("nan")
        if q == 0.0:
            return float(self._min)
        if q == 1.0:
            return float(self._max)
        items, weights = self._weighted_items()
        order = np.argsort(items, kind="stable")
        items, weights = items[order], weights[order]
        ranks = np.cumsum(weights) - 0.5 * weights
        target = q * float(np.sum(weights))
        pos = int(np.searchsorted(ranks, target))
        return float(items[min(pos, items.size - 1)])

    def quantiles(self, qs) -> list:
        """Vectorised :meth:`quantile` over a sequence of fractions."""
        return [self.quantile(float(q)) for q in qs]

    def rank(self, value: float) -> float:
        """The estimated fraction of the stream that is ``<= value``."""
        if self._n == 0:
            return float("nan")
        items, weights = self._weighted_items()
        total = float(np.sum(weights))
        return float(np.sum(weights[items <= value]) / total)

    def _weighted_items(self) -> tuple:
        items = np.concatenate(self._levels)
        weights = np.concatenate(
            [np.full(lvl.size, float(2 ** i)) for i, lvl in enumerate(self._levels)]
        )
        return items, weights

    # -- algebra -----------------------------------------------------------

    def _check_compatible(self, other: "KLLSketch") -> None:
        if not isinstance(other, KLLSketch):
            raise TypeError(f"cannot merge KLLSketch with {type(other).__name__}")
        if (self._k, self._seed) != (other._k, other._seed):
            raise ValueError(
                "cannot merge KLL sketches with different (k, seed): "
                f"{(self._k, self._seed)} vs {(other._k, other._seed)}"
            )

    def merge(self, other: "KLLSketch") -> "KLLSketch":
        """Fold another sketch in (level-wise concat + compaction).

        Returns ``self``.  The merged sketch keeps the same rank-error
        contract as its inputs.
        """
        self._check_compatible(other)
        while len(self._levels) < len(other._levels):
            self._levels.append(np.zeros(0, dtype=np.float64))
        for i, level in enumerate(other._levels):
            if level.size:
                self._levels[i] = np.concatenate([self._levels[i], level])
        self._n += other._n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    def copy(self) -> "KLLSketch":
        """An independent deep copy (same parameters, levels, RNG state)."""
        dup = KLLSketch(k=self._k, seed=self._seed)
        dup._rng = np.random.default_rng()
        dup._rng.bit_generator.state = self._rng.bit_generator.state
        dup._levels = [level.copy() for level in self._levels]
        dup._n = self._n
        dup._min = self._min
        dup._max = self._max
        return dup

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state (levels base64-encoded little-endian float64).

        The compaction-RNG state is *not* carried: a revived sketch
        restarts its RNG from the seed, which preserves the error
        contract (any unbiased coin works) but not bit-identity of
        *future* compactions.
        """
        return {
            "kind": "kll",
            "k": self._k,
            "seed": self._seed,
            "n": self._n,
            "min": None if self._n == 0 else float(self._min),
            "max": None if self._n == 0 else float(self._max),
            "levels": [
                base64.b64encode(
                    np.ascontiguousarray(level, dtype="<f8").tobytes()
                ).decode("ascii")
                for level in self._levels
            ],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "KLLSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        kll = cls(k=state["k"], seed=state["seed"])
        kll._levels = [
            np.frombuffer(base64.b64decode(blob), dtype="<f8").astype(np.float64)
            for blob in state["levels"]
        ] or [np.zeros(0, dtype=np.float64)]
        kll._n = int(state["n"])
        kll._min = np.inf if state["min"] is None else float(state["min"])
        kll._max = -np.inf if state["max"] is None else float(state["max"])
        return kll


class ReservoirSample:
    """A fixed-size uniform random sample of an unbounded stream.

    >>> from repro.sketch import ReservoirSample
    >>> res = ReservoirSample(size=64, seed=7)
    >>> res.update(range(10000))
    >>> len(res.values()) == 64 and res.n == 10000
    True
    """

    __slots__ = ("_size", "_seed", "_rng", "_sample", "_n")

    def __init__(self, *, size: int = 4096, seed: int = 7) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._size = int(size)
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._sample = np.zeros(0, dtype=np.float64)
        self._n = 0

    # -- shape -------------------------------------------------------------

    @property
    def size(self) -> int:
        """The reservoir capacity (sample size once the stream exceeds it)."""
        return self._size

    @property
    def seed(self) -> int:
        """The sampling-RNG seed; merges require equal seeds."""
        return self._seed

    @property
    def n(self) -> int:
        """Stream length seen so far (exact)."""
        return self._n

    @property
    def memory_bytes(self) -> int:
        """Resident size of the retained sample."""
        return int(self._sample.nbytes)

    # -- updates -----------------------------------------------------------

    def update(self, values) -> None:
        """Fold a batch of numeric values into the reservoir (algorithm R,
        batched: each incoming item replaces a random slot with
        probability ``size / seen_so_far``)."""
        batch = np.asarray(list(values) if not hasattr(values, "__len__") else values,
                           dtype=np.float64).ravel()
        if batch.size == 0:
            return
        i = 0
        if self._sample.size < self._size:
            take = min(self._size - self._sample.size, batch.size)
            self._sample = np.concatenate([self._sample, batch[:take]])
            self._n += take
            i = take
        if i < batch.size:
            rest = batch[i:]
            positions = np.arange(self._n + 1, self._n + rest.size + 1)
            draws = self._rng.integers(0, positions, size=rest.size)
            hits = draws < self._size
            # Later stream items overwrite earlier within the batch,
            # matching sequential algorithm R exactly.
            for value, slot in zip(rest[hits], draws[hits]):
                self._sample[slot] = value
            self._n += int(rest.size)

    # -- queries -----------------------------------------------------------

    def values(self) -> np.ndarray:
        """A copy of the current sample (length ``min(size, n)``)."""
        return self._sample.copy()

    # -- algebra -----------------------------------------------------------

    def _check_compatible(self, other: "ReservoirSample") -> None:
        if not isinstance(other, ReservoirSample):
            raise TypeError(
                f"cannot merge ReservoirSample with {type(other).__name__}"
            )
        if (self._size, self._seed) != (other._size, other._seed):
            raise ValueError(
                "cannot merge reservoirs with different (size, seed): "
                f"{(self._size, self._seed)} vs {(other._size, other._seed)}"
            )

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Fold another reservoir in; returns ``self``.

        Each slot of the merged sample is drawn from the two inputs in
        proportion to their populations, so the result approximates a
        uniform sample of the combined stream.
        """
        self._check_compatible(other)
        if other._n == 0:
            return self
        if self._n == 0:
            self._sample = other._sample.copy()
            self._n = other._n
            return self
        total = self._n + other._n
        merged_len = min(self._size, self._sample.size + other._sample.size)
        from_other = self._rng.random(merged_len) < (other._n / total)
        merged = np.empty(merged_len, dtype=np.float64)
        n_other = int(from_other.sum())
        if n_other:
            merged[from_other] = self._rng.choice(
                other._sample, size=n_other, replace=n_other > other._sample.size
            )
        n_self = merged_len - n_other
        if n_self:
            merged[~from_other] = self._rng.choice(
                self._sample, size=n_self, replace=n_self > self._sample.size
            )
        self._sample = merged
        self._n = total
        return self

    def copy(self) -> "ReservoirSample":
        """An independent deep copy (same parameters, sample, RNG state)."""
        dup = ReservoirSample(size=self._size, seed=self._seed)
        dup._rng = np.random.default_rng()
        dup._rng.bit_generator.state = self._rng.bit_generator.state
        dup._sample = self._sample.copy()
        dup._n = self._n
        return dup

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state (sample base64-encoded little-endian float64).

        Like :meth:`KLLSketch.to_dict`, the RNG state restarts from the
        seed on revival.
        """
        return {
            "kind": "reservoir",
            "size": self._size,
            "seed": self._seed,
            "n": self._n,
            "sample": base64.b64encode(
                np.ascontiguousarray(self._sample, dtype="<f8").tobytes()
            ).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "ReservoirSample":
        """Rebuild a reservoir from :meth:`to_dict` output."""
        res = cls(size=state["size"], seed=state["seed"])
        res._sample = np.frombuffer(
            base64.b64decode(state["sample"]), dtype="<f8"
        ).astype(np.float64)
        res._n = int(state["n"])
        return res
