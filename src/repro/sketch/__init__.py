"""Bounded-memory streaming summaries with documented error bounds.

The streaming layer's exact path (:class:`~repro.stream.StreamingDataset`)
materialises every attack forever; this package is the fixed-memory
alternative for indefinitely-running ingestion (ROADMAP item 2):

* :class:`~repro.sketch.cms.CountMinSketch` — per-key frequencies
  (attacks per family / victim / country);
* :class:`~repro.sketch.hll.HyperLogLog` — distinct cardinalities
  (botnets, victims, countries);
* :class:`~repro.sketch.quantiles.KLLSketch` /
  :class:`~repro.sketch.quantiles.ReservoirSample` — duration and
  inter-attack-interval distributions;
* :class:`~repro.sketch.summary.AttackStreamSummary` — all of the above
  bundled into one mergeable, serialisable value, consumed by
  ``stream.watch --sketch``, ``StreamingDataset(sketches=True)``, and
  the service's ``/v1/sketch`` endpoint.

Every structure exposes the same algebra — ``update(batch)``,
``merge(other)``, ``estimate``-style queries, ``to_dict``/``from_dict``
— and every merge is associative and commutative, so sketches compose
with the shard layer's map-reduce exactly like the exact merge
combinators in :mod:`repro.core.merge`.  The accuracy contract of each
structure (epsilon/delta, RSE, rank error) is documented in
``docs/STREAMING.md`` and pinned by full-scale exact-vs-sketch parity
tests.
"""

from .cms import CountMinSketch
from .hll import HyperLogLog
from .quantiles import KLLSketch, ReservoirSample
from .report import render_sketch_report
from .summary import AttackStreamSummary, summarize_dataset

__all__ = [
    "AttackStreamSummary",
    "CountMinSketch",
    "HyperLogLog",
    "KLLSketch",
    "ReservoirSample",
    "render_sketch_report",
    "summarize_dataset",
]
