"""HyperLogLog: bounded-memory distinct-count estimates.

Flajolet's estimator over ``m = 2**precision`` one-byte registers: each
key's 64-bit hash is split into a register index (top ``precision``
bits) and a rank (leading zeros of the remainder, plus one); a register
keeps the maximum rank it has seen.  The harmonic-mean estimate has a
relative standard error of ``1.04 / sqrt(m)`` — ~1.6 % at the default
``precision=12`` (4 KiB of registers) — and the small-range regime is
handled by linear counting, which is where a stream with only hundreds
of distinct victims or botnets will sit (and where the error is far
*below* the asymptotic RSE).

The accuracy contract documented in ``docs/STREAMING.md`` is the
three-sigma band: the estimate is within ``3 * 1.04 / sqrt(m)`` of the
truth with ~99.7 % probability over the hash choice.

Merging two HLLs with the same ``(precision, seed)`` is element-wise
register max — associative, commutative, idempotent — so distinct
counts compose across shards and tenants without double counting.
"""

from __future__ import annotations

import base64
import math

import numpy as np

from .hashing import codes_of, hash_codes

__all__ = ["HyperLogLog"]

_U64 = np.uint64


def _alpha(m: int) -> float:
    """The bias-correction constant of the raw harmonic estimator."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def _clz64(values: np.ndarray) -> np.ndarray:
    """Exact leading-zero count of each uint64 (vectorised binary search).

    Callers guarantee a set bit (a sentinel is OR-ed in before the
    call), so the result is always in ``[0, 63]``.
    """
    clz = np.zeros(values.shape, dtype=np.uint8)
    cur = values.copy()
    for step in (32, 16, 8, 4, 2, 1):
        empty = (cur >> _U64(64 - step)) == 0
        clz += np.where(empty, np.uint8(step), np.uint8(0))
        cur = np.where(empty, cur << _U64(step), cur)
    return clz


class HyperLogLog:
    """Approximate distinct counts in ``2**precision`` bytes.

    >>> from repro.sketch import HyperLogLog
    >>> hll = HyperLogLog(precision=12, seed=7)
    >>> hll.update(range(1000))
    >>> hll.update(range(500))            # re-adding changes nothing
    >>> abs(hll.estimate() - 1000) <= 3 * hll.relative_error * 1000
    True
    """

    __slots__ = ("_precision", "_seed", "_registers")

    def __init__(self, *, precision: int = 12, seed: int = 7) -> None:
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in [4, 18], got {precision}")
        self._precision = int(precision)
        self._seed = int(seed)
        self._registers = np.zeros(1 << precision, dtype=np.uint8)

    # -- shape -------------------------------------------------------------

    @property
    def precision(self) -> int:
        """Register-index bits; ``m = 2**precision`` registers."""
        return self._precision

    @property
    def seed(self) -> int:
        """The hash seed; merges require equal seeds."""
        return self._seed

    @property
    def m(self) -> int:
        """The register count."""
        return self._registers.size

    @property
    def relative_error(self) -> float:
        """The one-sigma relative standard error, ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    @property
    def memory_bytes(self) -> int:
        """Resident size of the register array (one byte per register)."""
        return int(self._registers.nbytes)

    # -- updates -----------------------------------------------------------

    def update(self, keys) -> None:
        """Fold a batch of keys (ints or strings) into the registers."""
        codes = codes_of(keys)
        if codes.size == 0:
            return
        hashed = hash_codes(codes, seed=self._seed)
        p = _U64(self._precision)
        idx = (hashed >> _U64(64 - self._precision)).astype(np.intp)
        # Sentinel bit below the usable suffix: guarantees _clz64 sees a
        # set bit and caps the rank at 64 - precision + 1.
        rest = (hashed << p) | (_U64(1) << _U64(self._precision - 1))
        rank = _clz64(rest) + np.uint8(1)
        np.maximum.at(self._registers, idx, rank)

    # -- queries -----------------------------------------------------------

    def estimate(self) -> float:
        """The estimated number of distinct keys folded in so far.

        Raw harmonic-mean estimate with linear counting below
        ``2.5 * m`` (the standard small-range correction); 64-bit hashes
        make the large-range collision correction unnecessary at any
        realistic cardinality.
        """
        registers = self._registers
        m = registers.size
        raw = _alpha(m) * m * m / np.sum(np.ldexp(1.0, -registers.astype(np.int32)))
        zeros = int(np.count_nonzero(registers == 0))
        if raw <= 2.5 * m and zeros:
            return float(m * math.log(m / zeros))
        return float(raw)

    # -- algebra -----------------------------------------------------------

    def _check_compatible(self, other: "HyperLogLog") -> None:
        if not isinstance(other, HyperLogLog):
            raise TypeError(f"cannot merge HyperLogLog with {type(other).__name__}")
        if (self._precision, self._seed) != (other._precision, other._seed):
            raise ValueError(
                "cannot merge HyperLogLogs with different (precision, seed): "
                f"{(self._precision, self._seed)} vs "
                f"{(other._precision, other._seed)}"
            )

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Fold another HLL in (register-wise max); returns ``self``."""
        self._check_compatible(other)
        np.maximum(self._registers, other._registers, out=self._registers)
        return self

    def copy(self) -> "HyperLogLog":
        """An independent deep copy (same parameters and registers)."""
        dup = HyperLogLog(precision=self._precision, seed=self._seed)
        dup._registers = self._registers.copy()
        return dup

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state (registers base64-encoded)."""
        return {
            "kind": "hll",
            "precision": self._precision,
            "seed": self._seed,
            "registers": base64.b64encode(self._registers.tobytes()).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "HyperLogLog":
        """Rebuild an HLL from :meth:`to_dict` output."""
        hll = cls(precision=state["precision"], seed=state["seed"])
        hll._registers = np.frombuffer(
            base64.b64decode(state["registers"]), dtype=np.uint8
        ).copy()
        return hll
