"""Count-Min Sketch: bounded-memory per-key frequency estimates.

The classic Cormode–Muthukrishnan structure: a ``depth x width`` table
of counters, one pairwise-independent hash row per depth, point queries
answered by the minimum over rows.  With ``width = ceil(e / epsilon)``
and ``depth = ceil(ln(1 / delta))`` the estimate for any key obeys the
standard contract

    true <= estimate <= true + epsilon * total

with probability at least ``1 - delta`` (over the hash choice; the
lower bound always holds — Count-Min never under-counts).  ``total`` is
the number of updates folded in, so the *absolute* slack grows with the
stream while the memory stays fixed: ``depth * width`` int64 counters,
~109 KiB at the defaults.

Merging two sketches built with the same ``(epsilon, delta, seed)`` is
element-wise addition — exactly the semantics the shard layer's
map-reduce needs (associative, commutative, identity = empty sketch).
"""

from __future__ import annotations

import base64
import math

import numpy as np

from .hashing import code_of, codes_of, hash_codes

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Approximate per-key counts in fixed memory.

    >>> from repro.sketch import CountMinSketch
    >>> cms = CountMinSketch(epsilon=0.01, delta=0.01, seed=7)
    >>> cms.update(["pandora"] * 40 + ["dirtjumper"] * 2)
    >>> true_slack = cms.epsilon * cms.total
    >>> 40 <= cms.estimate("pandora") <= 40 + true_slack
    True
    """

    __slots__ = ("_epsilon", "_delta", "_seed", "_table", "_total")

    def __init__(
        self, *, epsilon: float = 0.001, delta: float = 0.01, seed: int = 7
    ) -> None:
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise ValueError(
                f"epsilon and delta must be in (0, 1), got {epsilon}, {delta}"
            )
        self._epsilon = float(epsilon)
        self._delta = float(delta)
        self._seed = int(seed)
        width = math.ceil(math.e / epsilon)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    # -- shape -------------------------------------------------------------

    @property
    def epsilon(self) -> float:
        """The relative error bound: estimate - true <= epsilon * total."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """The failure probability of the epsilon bound (per query)."""
        return self._delta

    @property
    def seed(self) -> int:
        """The hash seed; merges require equal seeds."""
        return self._seed

    @property
    def width(self) -> int:
        """Counters per hash row (``ceil(e / epsilon)``)."""
        return self._table.shape[1]

    @property
    def depth(self) -> int:
        """Hash rows (``ceil(ln(1 / delta))``)."""
        return self._table.shape[0]

    @property
    def total(self) -> int:
        """Updates folded in so far (the L1 mass of the sketch)."""
        return self._total

    @property
    def memory_bytes(self) -> int:
        """Resident size of the counter table."""
        return int(self._table.nbytes)

    # -- updates -----------------------------------------------------------

    def update(self, keys, counts=None) -> None:
        """Fold a batch of keys (ints or strings) into the sketch.

        ``counts`` (optional, same length) adds that many per key
        instead of 1.  Vectorised: one hash pass and one scatter-add per
        depth row.
        """
        codes = codes_of(keys)
        if codes.size == 0:
            return
        if counts is None:
            weights = None
            added = int(codes.size)
        else:
            weights = np.asarray(counts, dtype=np.int64)
            if weights.shape != codes.shape:
                raise ValueError("counts must match keys in length")
            added = int(weights.sum())
        width = np.uint64(self.width)
        for row in range(self.depth):
            slots = hash_codes(codes, seed=self._seed * 31 + row) % width
            if weights is None:
                np.add.at(self._table[row], slots.astype(np.intp), 1)
            else:
                np.add.at(self._table[row], slots.astype(np.intp), weights)
        self._total += added

    # -- queries -----------------------------------------------------------

    def estimate(self, key) -> int:
        """The key's estimated count (never below the true count)."""
        return int(self.estimate_many([code_of(key)])[0])

    def estimate_many(self, keys) -> np.ndarray:
        """Vectorised :meth:`estimate` over a batch of keys."""
        codes = codes_of(keys)
        if codes.size == 0:
            return np.zeros(0, dtype=np.int64)
        width = np.uint64(self.width)
        out = np.full(codes.size, np.iinfo(np.int64).max, dtype=np.int64)
        for row in range(self.depth):
            slots = hash_codes(codes, seed=self._seed * 31 + row) % width
            np.minimum(out, self._table[row][slots.astype(np.intp)], out=out)
        return out

    # -- algebra -----------------------------------------------------------

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if not isinstance(other, CountMinSketch):
            raise TypeError(f"cannot merge CountMinSketch with {type(other).__name__}")
        if (self._epsilon, self._delta, self._seed) != (
            other._epsilon, other._delta, other._seed,
        ):
            raise ValueError(
                "cannot merge Count-Min sketches with different "
                f"(epsilon, delta, seed): {(self._epsilon, self._delta, self._seed)} "
                f"vs {(other._epsilon, other._delta, other._seed)}"
            )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Fold another sketch in (element-wise add); returns ``self``.

        Requires identical ``(epsilon, delta, seed)``.  Associative and
        commutative: any merge tree over the same batches yields the
        same table.
        """
        self._check_compatible(other)
        self._table += other._table
        self._total += other._total
        return self

    def copy(self) -> "CountMinSketch":
        """An independent deep copy (same parameters and counters)."""
        dup = CountMinSketch(epsilon=self._epsilon, delta=self._delta, seed=self._seed)
        dup._table = self._table.copy()
        dup._total = self._total
        return dup

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able state (counters base64-encoded little-endian int64)."""
        return {
            "kind": "cms",
            "epsilon": self._epsilon,
            "delta": self._delta,
            "seed": self._seed,
            "total": self._total,
            "table": base64.b64encode(
                np.ascontiguousarray(self._table, dtype="<i8").tobytes()
            ).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "CountMinSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(
            epsilon=state["epsilon"], delta=state["delta"], seed=state["seed"]
        )
        table = np.frombuffer(
            base64.b64decode(state["table"]), dtype="<i8"
        ).reshape(sketch._table.shape)
        sketch._table = table.astype(np.int64)
        sketch._total = int(state["total"])
        return sketch
