"""Botnet ecosystem substrate: families, pools, generations, attack plans."""

from .bots import BotPool
from .cnc import BotnetRoster
from .family import DispersionModel, DurationModel, FamilyProfile, GapMixture
from .profiles import (
    ACTIVE_FAMILY_NAMES,
    ALL_FAMILY_NAMES,
    INTER_FAMILY_COLLABS,
    MEGA_DAY,
    MINOR_FAMILY_NAMES,
    N_ATTACKER_COUNTRIES,
    N_VICTIM_COUNTRIES,
    default_profiles,
    profile_by_name,
)
from .scheduler import CollabKind, FamilyPlan, FamilyScheduler, PlannedAttack

__all__ = [
    "BotPool",
    "BotnetRoster",
    "DispersionModel",
    "DurationModel",
    "FamilyProfile",
    "GapMixture",
    "ACTIVE_FAMILY_NAMES",
    "ALL_FAMILY_NAMES",
    "INTER_FAMILY_COLLABS",
    "MEGA_DAY",
    "MINOR_FAMILY_NAMES",
    "N_ATTACKER_COUNTRIES",
    "N_VICTIM_COUNTRIES",
    "default_profiles",
    "profile_by_name",
    "CollabKind",
    "FamilyPlan",
    "FamilyScheduler",
    "PlannedAttack",
]
