"""Attack planning: waves, sessions, collaborations, chains, the mega-day.

The scheduler turns a :class:`FamilyProfile` into a list of
:class:`PlannedAttack` objects with start times, durations, targets,
botnet assignments, magnitudes and dispersion flags.  The temporal
texture the paper reports is produced here:

* attacks arrive in *waves* — a wave of size k contributes k simultaneous
  starts, which generates the zero-interval mass of Figs 3/5;
* waves group into *sessions*; intra-session gaps come from the family's
  mode mixture (6-7 min / 20-40 min / 2-3 h, Fig 4), while the sporadic
  placement of sessions creates the long interval tail;
* a fraction of wave times snaps to a shared 5-minute grid, producing the
  cross-family simultaneous starts of §III-B;
* staged structures — intra-family collaborations (Table VI, Fig 15),
  multistage chains (Figs 17-18) and the 2012-08-30 Dirtjumper surge
  (Fig 2) — are carved out of the family's exact attack budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..monitor.schemas import Protocol
from ..simulation.clock import SECONDS_PER_DAY, ObservationWindow
from .cnc import BotnetRoster
from .family import FamilyProfile

__all__ = ["PlannedAttack", "FamilyScheduler", "CollabKind"]


class CollabKind:
    """Ground-truth collaboration labels carried by planned attacks."""

    NONE = 0
    INTRA = 1
    INTER = 2


@dataclass
class PlannedAttack:
    """One attack-to-be, before protocol/target/participant assignment."""

    start: float
    duration: float
    family: str
    botnet_id: int = -1
    protocol: Protocol = Protocol.HTTP
    target_index: int = -1
    magnitude: int = 0
    symmetric: bool = True
    residual_km: float = 0.0
    collab_group: int = -1
    collab_kind: int = CollabKind.NONE
    chain_id: int = -1

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class FamilyPlan:
    """Scheduler output for one family."""

    family: str
    attacks: list[PlannedAttack] = field(default_factory=list)
    #: Attack budget still unassigned (reserved for inter-family collabs).
    reserved: int = 0


class FamilyScheduler:
    """Plans all attacks of one family (except inter-family collabs)."""

    def __init__(
        self,
        profile: FamilyProfile,
        window: ObservationWindow,
        roster: BotnetRoster,
        rng: np.random.Generator,
        reserve_for_inter: int = 0,
        mega_extra: int = 0,
    ):
        self.profile = profile
        self.window = window
        self.roster = roster
        self.rng = rng
        self.reserve_for_inter = reserve_for_inter
        self.mega_extra = mega_extra
        # AR(1) state (log space) of the asymmetric dispersion residuals:
        # the paper's distance series vary persistently around a
        # family-specific mean (§IV-A), which is what makes them
        # ARIMA-predictable.  The state advances once per asymmetric
        # attack, so the *asymmetric-only* series carries the
        # autocorrelation regardless of how symmetric attacks interleave.
        self._residual_state = 0.0
        self._residual_phi = 0.9
        lo, hi = profile.active_window
        self.act_start = window.start + lo * window.duration
        self.act_end = window.start + hi * window.duration
        self.act_span = self.act_end - self.act_start
        self._collab_counter = 0
        self._chain_counter = 0

    # -- random helpers --------------------------------------------------

    def _durations(self, n: int) -> np.ndarray:
        model = self.profile.duration
        d = self.rng.lognormal(model.mu, model.sigma, size=n)
        return np.clip(d, model.min_seconds, model.max_seconds)

    def _magnitudes(self, n: int) -> np.ndarray:
        p = self.profile
        m = self.rng.lognormal(np.log(p.magnitude_median), p.magnitude_sigma, size=n)
        return np.maximum(4, np.round(m)).astype(np.int64)

    def _gaps(self, n: int) -> np.ndarray:
        mix = self.profile.gap_mixture
        modes = np.asarray(mix.mode_seconds)
        weights = np.asarray(mix.mode_weights)
        which = self.rng.choice(modes.size, size=n, p=weights)
        gaps = self.rng.lognormal(np.log(modes[which]), mix.sigma)
        if mix.min_gap > 0:
            gaps = np.maximum(gaps, mix.min_gap)
        return gaps

    def _symmetry(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Symmetric flags and asymmetric residual targets for ``n`` attacks.

        Residuals follow a lognormal AR(1): the marginal distribution is
        ``Lognormal(ln(median), sigma)`` while consecutive asymmetric
        attacks stay correlated (phi = 0.9), giving the stationary,
        predictable series of Figs 10-13.
        """
        disp = self.profile.dispersion
        symmetric = self.rng.random(n) < disp.p_symmetric
        residual = np.zeros(n)
        phi = self._residual_phi
        innov_sd = disp.asym_sigma * np.sqrt(1.0 - phi * phi)
        mu_log = np.log(max(disp.asym_median_km, 1.0))
        state = self._residual_state
        for i in np.flatnonzero(~symmetric):
            state = phi * state + float(self.rng.normal(0.0, innov_sd))
            residual[i] = float(np.exp(mu_log + state))
        self._residual_state = state
        return symmetric, residual

    # -- wave placement ---------------------------------------------------

    def _wave_times(self, n_waves: int) -> np.ndarray:
        """Session-structured wave start times within the active window."""
        if n_waves == 0:
            return np.zeros(0)
        p = self.profile
        n_sessions = max(1, int(round(n_waves / p.waves_per_session)))
        session_starts = np.sort(self.rng.random(n_sessions)) * self.act_span + self.act_start
        base = n_waves // n_sessions
        extra = n_waves - base * n_sessions
        times: list[float] = []
        for s, start in enumerate(session_starts):
            count = base + (1 if s < extra else 0)
            if count == 0:
                continue
            gaps = self._gaps(count)
            offsets = np.concatenate(([0.0], np.cumsum(gaps[:-1])))
            times.extend(start + offsets)
        t = np.asarray(times)
        # Sessions that run past the active window wrap around, keeping
        # the attack count exact without distorting the gap modes.
        t = self.act_start + np.mod(t - self.act_start, self.act_span)
        if p.sync_fraction > 0:
            snap = self.rng.random(t.size) < p.sync_fraction
            t[snap] = np.round(t[snap] / 300.0) * 300.0
        t = np.sort(t)
        min_gap = p.gap_mixture.min_gap
        if min_gap > 0 and t.size > 1:
            # Families like Aldibot/Optima never strike twice within a
            # minute (§III-B) — the floor must hold across sessions, not
            # just within one.  s_i = min_gap*i + running max(t_j - min_gap*j)
            # pushes each wave just far enough without reordering.
            steps = min_gap * np.arange(t.size)
            t = steps + np.maximum.accumulate(t - steps)
        return t

    def _wave_sizes(self, n_attacks: int) -> list[int]:
        """Wave sizes summing exactly to ``n_attacks``."""
        p = self.profile
        sizes: list[int] = []
        remaining = n_attacks
        while remaining > 0:
            size = 1
            if p.p_multi_wave > 0 and self.rng.random() < p.p_multi_wave:
                size += int(self.rng.geometric(1.0 / max(p.wave_extra_mean, 1.0)))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    # -- staged structures -------------------------------------------------

    def _plan_collabs(self, next_group: int) -> tuple[list[PlannedAttack], int]:
        """Intra-family concurrent collaborations (§V-A)."""
        p = self.profile
        attacks: list[PlannedAttack] = []
        group = next_group
        if self.roster.n_botnets < 2:
            # A single-generation family cannot stage intra-family
            # collaborations (they require distinct botnet ids).
            return [], next_group
        for _ in range(p.intra_collabs):
            size = 2
            if p.collab_size_mean > 2.0:
                size += int(self.rng.poisson(p.collab_size_mean - 2.0))
            size = min(size, self.roster.n_botnets)
            base = self.act_start + self.rng.random() * self.act_span
            botnets = self.roster.pick(self.rng, base, k=size)
            duration = float(self._durations(1)[0])
            magnitude = int(self._magnitudes(1)[0])
            symmetric, residual = self._symmetry(1)
            for j in range(size):
                attacks.append(
                    PlannedAttack(
                        start=base + float(self.rng.random() * 50.0),
                        # Duration differences stay inside the half-hour
                        # window of the paper's collaboration definition.
                        duration=duration + float(self.rng.random() * 1500.0),
                        family=p.name,
                        botnet_id=int(botnets[j]),
                        magnitude=magnitude,
                        symmetric=bool(symmetric[0]),
                        residual_km=float(residual[0]),
                        collab_group=group,
                        collab_kind=CollabKind.INTRA,
                    )
                )
            group += 1
        return attacks, group

    def _chain_lengths(self) -> list[int]:
        n_chains, mean_len = self.profile.chains
        if n_chains == 0:
            return []
        lengths = []
        for i in range(n_chains):
            if self.profile.name == "ddoser" and i == 0:
                # The longest observed chain: 22 consecutive attacks
                # lasting over 18 minutes on 2012-08-30 (§V-B).
                lengths.append(22)
                continue
            lengths.append(max(2, int(self.rng.poisson(max(mean_len - 1.0, 1.0))) + 1))
        return lengths

    def _plan_chains(self) -> list[PlannedAttack]:
        """Multistage consecutive-attack chains (§V-B, Figs 17-18)."""
        attacks: list[PlannedAttack] = []
        if self.roster.n_botnets < 2:
            # With a single botnet id, consecutive short attacks on one
            # target would be re-merged by the 60 s segmentation rule.
            return attacks
        for i, length in enumerate(self._chain_lengths()):
            chain_id = self._chain_counter
            self._chain_counter += 1
            if self.profile.name == "ddoser" and i == 0:
                start = self.window.start + 1 * SECONDS_PER_DAY + 3600.0 * 10
            else:
                start = self.act_start + self.rng.random() * self.act_span
            botnets = self.roster.pick(self.rng, start, k=min(3, self.roster.n_botnets))
            magnitude = int(self._magnitudes(1)[0])
            symmetric, residual = self._symmetry(1)
            t = start
            for j in range(length):
                # Chain members are short; the next one starts right at
                # (or within 60 s of) the previous end.  The 35 s floor
                # keeps two same-botnet members of a round-robin chain
                # more than 60 s apart, so segmentation never re-merges
                # them.
                duration = float(self.rng.uniform(35.0, 80.0))
                attacks.append(
                    PlannedAttack(
                        start=t,
                        duration=duration,
                        family=self.profile.name,
                        botnet_id=int(botnets[j % botnets.size]),
                        magnitude=magnitude,
                        symmetric=bool(symmetric[0]),
                        residual_km=float(residual[0]),
                        chain_id=chain_id,
                    )
                )
                u = self.rng.random()
                if u < 0.65:
                    gap = self.rng.uniform(0.0, 10.0)
                elif u < 0.80:
                    gap = self.rng.uniform(10.0, 30.0)
                else:
                    gap = self.rng.uniform(30.0, 60.0)
                t += duration + gap
        return attacks

    def _plan_mega_day(self) -> list[PlannedAttack]:
        """The 2012-08-30 Dirtjumper surge against one Russian subnet."""
        if self.mega_extra == 0:
            return []
        day_start = self.window.start + 1 * SECONDS_PER_DAY
        times = day_start + np.sort(self.rng.random(self.mega_extra)) * SECONDS_PER_DAY
        durations = self._durations(self.mega_extra)
        magnitudes = self._magnitudes(self.mega_extra)
        symmetric, residual = self._symmetry(self.mega_extra)
        attacks = []
        for i in range(self.mega_extra):
            attacks.append(
                PlannedAttack(
                    start=float(times[i]),
                    duration=float(durations[i]),
                    family=self.profile.name,
                    botnet_id=int(self.roster.pick(self.rng, float(times[i]), k=1)[0]),
                    magnitude=int(magnitudes[i]),
                    symmetric=bool(symmetric[i]),
                    residual_km=float(residual[i]),
                    collab_group=-1,
                    chain_id=-2,  # marker: mega-day attack (targets assigned specially)
                )
            )
        return attacks

    # -- main entry ---------------------------------------------------------

    def plan(self, next_collab_group: int = 0) -> tuple[FamilyPlan, int]:
        """Produce the family's full plan (minus inter-family collabs).

        Returns the plan and the next free collaboration-group id.
        """
        p = self.profile
        total = p.total_attacks
        collab_attacks, next_group = self._plan_collabs(next_collab_group)
        chain_attacks = self._plan_chains()
        mega_attacks = self._plan_mega_day()
        if self.reserve_for_inter > total:
            raise ValueError(
                f"{p.name}: inter-family reserve ({self.reserve_for_inter}) "
                f"exceeds the attack budget ({total})"
            )
        # Heavily scaled-down profiles can end up with staged structures
        # that do not fit the attack budget; trim chains first, then
        # collaborations (whole events at a time) until the plan fits.
        budget = total - self.reserve_for_inter
        while len(collab_attacks) + len(chain_attacks) + len(mega_attacks) > budget:
            if mega_attacks:
                mega_attacks.pop()
            elif chain_attacks:
                last_chain = chain_attacks[-1].chain_id
                chain_attacks = [a for a in chain_attacks if a.chain_id != last_chain]
            elif collab_attacks:
                last_group = collab_attacks[-1].collab_group
                collab_attacks = [a for a in collab_attacks if a.collab_group != last_group]
            else:  # pragma: no cover - defensive
                break
        special = len(collab_attacks) + len(chain_attacks) + len(mega_attacks)
        regular = budget - special

        attacks: list[PlannedAttack] = []
        if regular:
            sizes = self._wave_sizes(regular)
            times = self._wave_times(len(sizes))
            durations = self._durations(regular)
            magnitudes = self._magnitudes(regular)
            symmetric, residual = self._symmetry(regular)
            k = 0
            for wave_time, size in zip(times, sizes):
                for _ in range(size):
                    attacks.append(
                        PlannedAttack(
                            start=float(wave_time),
                            duration=float(durations[k]),
                            family=p.name,
                            botnet_id=int(self.roster.pick(self.rng, float(wave_time), k=1)[0]),
                            magnitude=int(magnitudes[k]),
                            symmetric=bool(symmetric[k]),
                            residual_km=float(residual[k]),
                        )
                    )
                    k += 1

        attacks.extend(collab_attacks)
        attacks.extend(chain_attacks)
        attacks.extend(mega_attacks)
        plan = FamilyPlan(family=p.name, attacks=attacks, reserved=self.reserve_for_inter)
        return plan, next_group
