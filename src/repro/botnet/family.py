"""Botnet family behaviour profiles.

A :class:`FamilyProfile` captures everything the simulator needs to make
one malware family behave the way the paper observed it: attack volume
and protocol mix (Table II), timing behaviour (Figs 3-5), durations
(Figs 6-7), target preferences (Table V), source-geography footprint and
dispersion character (Figs 8-11, Table IV), and collaboration habits
(Table VI, Figs 15-18).

The calibrated per-family instances live in :mod:`repro.botnet.profiles`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..monitor.schemas import Protocol

__all__ = ["GapMixture", "DurationModel", "DispersionModel", "FamilyProfile"]


@dataclass(frozen=True)
class GapMixture:
    """Distribution of the time gap between consecutive attack waves.

    The paper (Fig 4) finds three recurring gap modes shared across
    families — 6-7 minutes, 20-40 minutes and 2-3 hours — on top of a
    long sporadic tail.  We model intra-session gaps as a mixture of
    lognormals centred on those modes; the tail comes from the gaps
    *between* sessions, whose placement is uniform over the family's
    active window.

    ``mode_seconds`` and ``mode_weights`` must have equal length and the
    weights must sum to 1.
    """

    mode_seconds: tuple[float, ...] = (390.0, 1800.0, 9000.0)
    mode_weights: tuple[float, ...] = (0.35, 0.35, 0.30)
    sigma: float = 0.35
    min_gap: float = 0.0  # families like Aldibot/Optima never attack <60 s apart

    def __post_init__(self) -> None:
        if len(self.mode_seconds) != len(self.mode_weights):
            raise ValueError("mode_seconds and mode_weights length mismatch")
        total = sum(self.mode_weights)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mode_weights must sum to 1, got {total}")
        if any(m <= 0 for m in self.mode_seconds):
            raise ValueError("gap modes must be positive")


@dataclass(frozen=True)
class DurationModel:
    """Lognormal attack-duration model.

    Global calibration (Fig 6-7): median 1,766 s pins ``mu = ln(1766) ≈
    7.48``; ``sigma`` and the cap are tuned jointly so the truncated
    distribution lands near the paper's mean (10,308 s), std (18,475 s)
    and sub-minute share (< 10 % of attacks under 60 s).  Families
    deviate modestly around that.
    """

    mu: float = 7.477
    sigma: float = 2.05
    min_seconds: float = 5.0
    max_seconds: float = 110_000.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0 < self.min_seconds < self.max_seconds:
            raise ValueError("need 0 < min_seconds < max_seconds")


@dataclass(frozen=True)
class DispersionModel:
    """Source-geography dispersion character of a family (§IV-A).

    ``p_symmetric`` is the fraction of attacks whose participating bots
    are sampled as mirrored pairs (signed-distance sum ≈ 0); the rest get
    an extra directional contingent whose signed sum is drawn lognormally
    around ``asym_median_km``.
    """

    p_symmetric: float = 0.6
    asym_median_km: float = 1000.0
    asym_sigma: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_symmetric <= 1.0:
            raise ValueError(f"p_symmetric out of [0,1]: {self.p_symmetric}")
        if self.asym_median_km < 0:
            raise ValueError("asym_median_km must be non-negative")


@dataclass(frozen=True)
class FamilyProfile:
    """Full behavioural profile of one botnet family."""

    name: str
    active: bool
    #: Exact number of verified attacks per protocol (Table II).
    protocol_counts: dict[Protocol, int] = field(default_factory=dict)
    #: Number of distinct botnet generations (botnet_ids).
    n_botnets: int = 1
    #: Size of the bot pool enumerated by the monitoring service.
    n_bots: int = 100
    #: Number of distinct victim IPs this family owns in the victim registry.
    n_targets: int = 10
    #: Victim countries: (ISO2 code, weight); top entries mirror Table V.
    target_countries: tuple[tuple[str, float], ...] = ()
    #: Total number of victim countries (Table V column 2); the list above
    #: is padded from the global victim-country pool up to this count.
    n_target_countries: int = 1
    #: Source countries: (ISO2 code, weight) — the family's home footprint.
    home_countries: tuple[tuple[str, float], ...] = ()
    #: Expansion countries recruited mid-window (drives Fig 8 "new country" shifts).
    expansion_countries: tuple[str, ...] = ()
    #: Fraction of the observation window the family is active in.
    active_window: tuple[float, float] = (0.0, 1.0)
    #: Probability that a wave carries more than one simultaneous attack
    #: (drives the zero-interval mass in Figs 3/5).
    p_multi_wave: float = 0.35
    #: Mean extra attacks per multi-attack wave (geometric).
    wave_extra_mean: float = 1.0
    #: Mean number of waves per attack session.
    waves_per_session: float = 8.0
    gap_mixture: GapMixture = field(default_factory=GapMixture)
    duration: DurationModel = field(default_factory=DurationModel)
    #: Lognormal magnitude (bots per attack): median and sigma.
    magnitude_median: float = 40.0
    magnitude_sigma: float = 0.6
    dispersion: DispersionModel = field(default_factory=DispersionModel)
    #: Number of intra-family concurrent collaborations to stage (Table VI).
    intra_collabs: int = 0
    #: Mean botnets per collaboration (paper: 2.19 for Dirtjumper).
    collab_size_mean: float = 2.19
    #: Multistage chains to stage: (number of chains, mean chain length).
    chains: tuple[int, float] = (0, 0.0)
    #: Fraction of wave times snapped to the global coordination grid
    #: (produces the cross-family simultaneous starts of §III-B).
    sync_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.active and self.total_attacks == 0:
            raise ValueError(f"active family {self.name} must have attacks")
        if not self.active and self.total_attacks > 0:
            raise ValueError(f"inactive family {self.name} must not have attacks")
        if self.n_botnets < 1:
            raise ValueError(f"{self.name}: need at least one botnet")
        if self.n_bots < 2:
            raise ValueError(f"{self.name}: need at least two bots")
        if self.active:
            if self.n_targets < 1:
                raise ValueError(f"{self.name}: active family needs targets")
            if self.total_attacks < self.n_targets:
                raise ValueError(
                    f"{self.name}: {self.total_attacks} attacks cannot cover "
                    f"{self.n_targets} distinct targets"
                )
            if not self.home_countries:
                raise ValueError(f"{self.name}: active family needs home countries")
            if not self.target_countries:
                raise ValueError(f"{self.name}: active family needs target countries")
        lo, hi = self.active_window
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"{self.name}: bad active window {self.active_window}")
        if not 0.0 <= self.p_multi_wave < 1.0:
            raise ValueError(f"{self.name}: p_multi_wave out of range")
        if not 0.0 <= self.sync_fraction <= 1.0:
            raise ValueError(f"{self.name}: sync_fraction out of range")

    @property
    def total_attacks(self) -> int:
        """Total verified attacks across all protocols (Table II row sum)."""
        return sum(self.protocol_counts.values())

    def scaled(self, fraction: float) -> "FamilyProfile":
        """A proportionally smaller profile for tests and examples.

        Attack counts, bots, botnets, targets and collaboration counts all
        scale by ``fraction`` (at least 1 where the original was nonzero);
        distributional parameters are untouched.  Scaling keeps the
        invariant that attacks can still cover the scaled target pool.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")

        def scale(n: int, minimum: int = 0) -> int:
            if n == 0:
                return 0
            return max(minimum, int(round(n * fraction)))

        protocols = {
            proto: scale(count, minimum=1)
            for proto, count in self.protocol_counts.items()
        }
        total = sum(protocols.values())
        n_targets = min(scale(self.n_targets, minimum=1), max(1, total)) if self.active else 0
        return FamilyProfile(
            name=self.name,
            active=self.active,
            protocol_counts=protocols,
            n_botnets=scale(self.n_botnets, minimum=1),
            n_bots=scale(self.n_bots, minimum=10),
            n_targets=n_targets,
            target_countries=self.target_countries,
            n_target_countries=self.n_target_countries,
            home_countries=self.home_countries,
            expansion_countries=self.expansion_countries,
            active_window=self.active_window,
            p_multi_wave=self.p_multi_wave,
            wave_extra_mean=self.wave_extra_mean,
            waves_per_session=self.waves_per_session,
            gap_mixture=self.gap_mixture,
            duration=self.duration,
            magnitude_median=self.magnitude_median,
            magnitude_sigma=self.magnitude_sigma,
            dispersion=self.dispersion,
            intra_collabs=scale(self.intra_collabs, minimum=1),
            collab_size_mean=self.collab_size_mean,
            chains=(scale(self.chains[0], minimum=1), self.chains[1]),
            sync_fraction=self.sync_fraction,
        )
