"""Calibrated behaviour profiles for the 23 botnet families.

Every number here that the paper prints is pinned exactly:

* per-family × per-protocol attack counts (Table II) sum to 50,704;
* 674 botnet ids across the 23 families;
* 310,950 bot IPs across all family pools (Table III);
* 9,026 victim IPs partitioned across the 10 active families (Table III);
* Table V top-5 victim countries are used as target-country weights and
  the per-family victim-country counts match Table V column 2;
* Blackenergy is active for about one third of the window (§III-A).

Numbers the paper reports only distributionally (interval modes,
duration quantiles, dispersion means, collaboration sizes) are encoded as
distribution parameters; the reproduction contract in DESIGN.md §4 states
which *shapes* must hold.

One deliberate deviation: Table VI credits Ddoser with 134 intra-family
collaborations, but Table II gives Ddoser only 126 verified attacks, so
134 two-attack collaborations cannot be realised from verified attacks
alone.  We stage 20 Ddoser collaborations (and note the discrepancy in
EXPERIMENTS.md).
"""

from __future__ import annotations

from ..monitor.schemas import Protocol
from .family import DispersionModel, DurationModel, FamilyProfile, GapMixture

__all__ = [
    "ACTIVE_FAMILY_NAMES",
    "MINOR_FAMILY_NAMES",
    "ALL_FAMILY_NAMES",
    "INTER_FAMILY_COLLABS",
    "MEGA_DAY",
    "N_ATTACKER_COUNTRIES",
    "N_VICTIM_COUNTRIES",
    "default_profiles",
    "profile_by_name",
]

#: The 10 families the paper analyses in depth (§III).
ACTIVE_FAMILY_NAMES = (
    "aldibot",
    "blackenergy",
    "colddeath",
    "darkshell",
    "ddoser",
    "dirtjumper",
    "nitol",
    "optima",
    "pandora",
    "yzf",
)

#: The remaining 13 tracked-but-quiet families (names of real minor DDoS
#: families of the 2012 era; they contribute bots and botnets, no attacks).
MINOR_FAMILY_NAMES = (
    "armageddon",
    "athena",
    "blackrev",
    "madness",
    "nbot",
    "russkill",
    "tornado",
    "warbot",
    "yoyoddos",
    "zemra",
    "drive",
    "solarbot",
    "infy",
)

ALL_FAMILY_NAMES = ACTIVE_FAMILY_NAMES + MINOR_FAMILY_NAMES

#: Attacker-side country coverage (Table III: bots come from 186 countries).
N_ATTACKER_COUNTRIES = 186

#: Victim-side country coverage (Table III: targets in 84 countries).
N_VICTIM_COUNTRIES = 84

#: Staged inter-family concurrent collaborations (§V-A, Table VI):
#: every inter-family collaboration involves Dirtjumper; the dominant
#: partner is Pandora (118), with single events for three other families.
INTER_FAMILY_COLLABS: tuple[tuple[str, str, int], ...] = (
    ("dirtjumper", "pandora", 118),
    ("dirtjumper", "blackenergy", 1),
    ("dirtjumper", "colddeath", 1),
    ("dirtjumper", "optima", 1),
)

#: The 2012-08-30 surge (§III-A): the busiest day had 983 attacks, all by
#: Dirtjumper against targets in the same Russian subnet.  ``day`` is the
#: 0-based day index within the observation window (08-29 is day 0).
MEGA_DAY = {"family": "dirtjumper", "day": 1, "extra_attacks": 1100, "country": "RU"}

# Gap mixtures -----------------------------------------------------------

_DEFAULT_GAPS = GapMixture(
    mode_seconds=(390.0, 1800.0, 9000.0), mode_weights=(0.35, 0.35, 0.30)
)
#: Families that evade detection by never striking twice within a minute
#: (§III-B: Aldibot and Optima have no sub-60 s intervals) still show a
#: short-gap mode just above the threshold.
_SPACED_GAPS = GapMixture(
    mode_seconds=(100.0, 390.0, 1800.0, 9000.0),
    mode_weights=(0.30, 0.25, 0.25, 0.20),
    min_gap=60.0,
)

# Duration models --------------------------------------------------------

_GLOBAL_DURATION = DurationModel()
# Pandora's collaborative attacks average ~107 minutes and Dirtjumper's
# ~88 (§V-A); their baseline durations sit close to the global model.
_SHORT_DURATION = DurationModel(mu=7.1, sigma=1.7, max_seconds=60_000.0)


def default_profiles() -> dict[str, FamilyProfile]:
    """The calibrated profile set; a fresh dict on every call."""
    profiles: dict[str, FamilyProfile] = {}

    profiles["dirtjumper"] = FamilyProfile(
        name="dirtjumper",
        active=True,
        protocol_counts={Protocol.HTTP: 34620},
        n_botnets=280,
        n_bots=128000,
        n_targets=4706,
        target_countries=(
            ("US", 9674.0), ("RU", 8391.0), ("DE", 3750.0), ("UA", 3412.0), ("NL", 1626.0),
        ),
        n_target_countries=71,
        home_countries=(
            ("RU", 0.26), ("UA", 0.16), ("US", 0.10), ("DE", 0.08), ("RO", 0.08),
            ("PL", 0.07), ("TR", 0.07), ("BR", 0.06), ("IN", 0.06), ("VN", 0.06),
        ),
        expansion_countries=("ID", "EG", "TH", "AR", "MA"),
        p_multi_wave=0.55,
        wave_extra_mean=2.0,
        waves_per_session=10.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=50.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.55, asym_median_km=1100.0, asym_sigma=0.55),
        intra_collabs=756,
        collab_size_mean=2.19,
        chains=(60, 4.0),
        sync_fraction=0.25,
    )

    profiles["pandora"] = FamilyProfile(
        name="pandora",
        active=True,
        protocol_counts={Protocol.HTTP: 6906},
        n_botnets=89,
        n_bots=44000,
        n_targets=1500,
        target_countries=(
            ("RU", 2115.0), ("DE", 155.0), ("US", 123.0), ("UA", 9.0), ("KG", 7.0),
        ),
        n_target_countries=43,
        home_countries=(
            ("RU", 0.34), ("UA", 0.20), ("BY", 0.11), ("KZ", 0.10), ("RO", 0.08),
            ("PL", 0.07), ("MD", 0.05), ("LT", 0.05),
        ),
        expansion_countries=("LV", "EE", "GE"),
        p_multi_wave=0.55,
        wave_extra_mean=2.0,
        waves_per_session=8.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=45.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.767, asym_median_km=440.0, asym_sigma=0.7),
        intra_collabs=10,
        collab_size_mean=2.0,
        chains=(0, 0.0),
        sync_fraction=0.30,
    )

    profiles["blackenergy"] = FamilyProfile(
        name="blackenergy",
        active=True,
        protocol_counts={
            Protocol.HTTP: 3048,
            Protocol.TCP: 199,
            Protocol.ICMP: 147,
            Protocol.UDP: 71,
            Protocol.SYN: 31,
        },
        n_botnets=65,
        n_bots=36000,
        n_targets=800,
        target_countries=(
            ("NL", 949.0), ("US", 820.0), ("SG", 729.0), ("RU", 262.0), ("DE", 219.0),
        ),
        n_target_countries=20,
        home_countries=(
            ("US", 0.15), ("BR", 0.12), ("IN", 0.12), ("CN", 0.11), ("RU", 0.11),
            ("DE", 0.10), ("ID", 0.10), ("VN", 0.07), ("TR", 0.06), ("MX", 0.06),
        ),
        expansion_countries=("NG", "PH", "EG", "PK"),
        # Active for roughly one third of the window (§III-A).
        active_window=(0.05, 0.38),
        p_multi_wave=0.50,
        wave_extra_mean=1.8,
        waves_per_session=8.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=40.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.895, asym_median_km=3970.0, asym_sigma=0.4),
        intra_collabs=0,
        chains=(0, 0.0),
        sync_fraction=0.30,
    )

    profiles["darkshell"] = FamilyProfile(
        name="darkshell",
        active=True,
        protocol_counts={Protocol.HTTP: 999, Protocol.UNDETERMINED: 1530},
        n_botnets=48,
        n_bots=26000,
        n_targets=700,
        target_countries=(
            ("CN", 1880.0), ("KR", 1004.0), ("US", 694.0), ("HK", 385.0), ("JP", 86.0),
        ),
        n_target_countries=13,
        home_countries=(
            ("CN", 0.40), ("TW", 0.15), ("KR", 0.15), ("HK", 0.10), ("VN", 0.10), ("TH", 0.10),
        ),
        expansion_countries=("MY", "PH"),
        p_multi_wave=0.45,
        wave_extra_mean=1.8,
        waves_per_session=7.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_SHORT_DURATION,
        magnitude_median=35.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.60, asym_median_km=900.0, asym_sigma=0.6),
        intra_collabs=253,
        collab_size_mean=2.2,
        chains=(30, 4.0),
        sync_fraction=0.10,
    )

    profiles["colddeath"] = FamilyProfile(
        name="colddeath",
        active=True,
        protocol_counts={Protocol.HTTP: 826},
        n_botnets=25,
        n_bots=12000,
        n_targets=360,
        target_countries=(
            ("IN", 801.0), ("PK", 345.0), ("BW", 125.0), ("TH", 117.0), ("ID", 112.0),
        ),
        n_target_countries=16,
        home_countries=(
            ("IN", 0.30), ("PK", 0.20), ("BD", 0.15), ("ID", 0.15), ("TH", 0.10), ("LK", 0.10),
        ),
        expansion_countries=("MY", "NP"),
        p_multi_wave=0.35,
        wave_extra_mean=1.55,
        waves_per_session=6.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=30.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.65, asym_median_km=250.0, asym_sigma=0.8),
        intra_collabs=0,
        chains=(0, 0.0),
        sync_fraction=0.10,
    )

    profiles["nitol"] = FamilyProfile(
        name="nitol",
        active=True,
        protocol_counts={Protocol.HTTP: 591, Protocol.TCP: 345},
        n_botnets=30,
        n_bots=14000,
        n_targets=330,
        target_countries=(
            ("CN", 778.0), ("US", 176.0), ("CA", 15.0), ("GB", 10.0), ("NL", 6.0),
        ),
        n_target_countries=12,
        home_countries=(
            ("CN", 0.45), ("RU", 0.15), ("IN", 0.10), ("US", 0.10), ("BR", 0.10), ("TR", 0.10),
        ),
        expansion_countries=("KR", "VN"),
        active_window=(0.10, 0.95),
        p_multi_wave=0.35,
        wave_extra_mean=1.25,
        waves_per_session=5.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_SHORT_DURATION,
        magnitude_median=30.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.60, asym_median_km=1500.0, asym_sigma=0.6),
        intra_collabs=17,
        collab_size_mean=2.0,
        chains=(5, 3.0),
        sync_fraction=0.10,
    )

    profiles["optima"] = FamilyProfile(
        name="optima",
        active=True,
        protocol_counts={Protocol.HTTP: 567, Protocol.UNKNOWN: 126},
        n_botnets=22,
        n_bots=11000,
        n_targets=300,
        target_countries=(
            ("RU", 171.0), ("DE", 155.0), ("US", 123.0), ("UA", 9.0), ("KG", 7.0),
        ),
        n_target_countries=12,
        home_countries=(
            ("RU", 0.18), ("US", 0.15), ("IN", 0.13), ("BR", 0.12), ("CN", 0.12),
            ("UA", 0.10), ("DE", 0.10), ("TR", 0.10),
        ),
        expansion_countries=("KZ", "PL"),
        # No attacks fewer than 60 s apart (§III-B) -> single-attack waves
        # and a floored gap mixture.
        p_multi_wave=0.0,
        wave_extra_mean=0.0,
        waves_per_session=6.0,
        gap_mixture=_SPACED_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=30.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.55, asym_median_km=3400.0, asym_sigma=0.45),
        intra_collabs=1,
        collab_size_mean=2.0,
        chains=(0, 0.0),
        sync_fraction=0.10,
    )

    profiles["yzf"] = FamilyProfile(
        name="yzf",
        active=True,
        protocol_counts={Protocol.HTTP: 177, Protocol.TCP: 182, Protocol.UDP: 187},
        n_botnets=18,
        n_bots=8000,
        n_targets=250,
        target_countries=(
            ("RU", 120.0), ("UA", 105.0), ("US", 65.0), ("DE", 39.0), ("NL", 19.0),
        ),
        n_target_countries=11,
        home_countries=(
            ("RU", 0.30), ("UA", 0.25), ("KZ", 0.15), ("BY", 0.10), ("GE", 0.10), ("AM", 0.10),
        ),
        expansion_countries=("AZ",),
        p_multi_wave=0.40,
        wave_extra_mean=1.65,
        waves_per_session=5.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_SHORT_DURATION,
        magnitude_median=25.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.60, asym_median_km=700.0, asym_sigma=0.6),
        intra_collabs=66,
        collab_size_mean=2.0,
        chains=(0, 0.0),
        sync_fraction=0.10,
    )

    profiles["ddoser"] = FamilyProfile(
        name="ddoser",
        active=True,
        protocol_counts={Protocol.UDP: 126},
        n_botnets=16,
        n_bots=9500,
        n_targets=60,
        target_countries=(
            ("MX", 452.0), ("VE", 191.0), ("UY", 83.0), ("CL", 66.0), ("US", 48.0),
        ),
        n_target_countries=19,
        home_countries=(
            ("MX", 0.30), ("VE", 0.20), ("BR", 0.15), ("CO", 0.15), ("AR", 0.10), ("CL", 0.10),
        ),
        expansion_countries=("PE", "EC"),
        p_multi_wave=0.30,
        wave_extra_mean=1.1,
        waves_per_session=4.0,
        gap_mixture=_DEFAULT_GAPS,
        duration=_SHORT_DURATION,
        magnitude_median=30.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.60, asym_median_km=1200.0, asym_sigma=0.6),
        # Table VI says 134, which exceeds Ddoser's 126 verified attacks;
        # see the module docstring for the documented deviation.
        intra_collabs=20,
        collab_size_mean=2.0,
        chains=(4, 8.0),
        sync_fraction=0.10,
    )

    profiles["aldibot"] = FamilyProfile(
        name="aldibot",
        active=True,
        protocol_counts={Protocol.UDP: 26},
        n_botnets=9,
        n_bots=2450,
        n_targets=20,
        target_countries=(
            ("US", 32.0), ("FR", 11.0), ("ES", 8.0), ("VE", 8.0), ("DE", 4.0),
        ),
        n_target_countries=14,
        home_countries=(
            ("US", 0.30), ("DE", 0.20), ("FR", 0.15), ("GB", 0.15), ("NL", 0.10), ("ES", 0.10),
        ),
        expansion_countries=(),
        p_multi_wave=0.0,
        wave_extra_mean=0.0,
        waves_per_session=2.0,
        gap_mixture=_SPACED_GAPS,
        duration=_GLOBAL_DURATION,
        magnitude_median=20.0,
        magnitude_sigma=0.5,
        dispersion=DispersionModel(p_symmetric=0.55, asym_median_km=2000.0, asym_sigma=0.5),
        intra_collabs=0,
        chains=(0, 0.0),
        sync_fraction=0.0,
    )

    # -- the 13 tracked-but-quiet families ------------------------------
    minor_botnets = (10, 8, 8, 7, 6, 6, 5, 5, 5, 4, 3, 3, 2)
    minor_bots = (3000, 2500, 2200, 2000, 1800, 1600, 1500, 1400, 1200, 1000, 800, 600, 400)
    minor_homes = (
        (("UA", 0.5), ("RU", 0.5)),
        (("US", 0.5), ("CA", 0.5)),
        (("RU", 0.6), ("BY", 0.4)),
        (("RU", 0.5), ("KZ", 0.5)),
        (("CN", 0.6), ("TW", 0.4)),
        (("RU", 0.7), ("UA", 0.3)),
        (("BR", 0.6), ("AR", 0.4)),
        (("DE", 0.5), ("PL", 0.5)),
        (("CN", 0.7), ("HK", 0.3)),
        (("RS", 0.5), ("BA", 0.5)),
        (("US", 0.6), ("MX", 0.4)),
        (("TR", 0.6), ("AZ", 0.4)),
        (("IR", 0.6), ("IQ", 0.4)),
    )
    for name, n_botnets, n_bots, homes in zip(
        MINOR_FAMILY_NAMES, minor_botnets, minor_bots, minor_homes
    ):
        profiles[name] = FamilyProfile(
            name=name,
            active=False,
            protocol_counts={},
            n_botnets=n_botnets,
            n_bots=n_bots,
            n_targets=0,
            home_countries=homes,
        )

    return profiles


def profile_by_name(name: str) -> FamilyProfile:
    """Fetch one default profile by family name."""
    profiles = default_profiles()
    try:
        return profiles[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; known: {', '.join(sorted(profiles))}"
        ) from None
