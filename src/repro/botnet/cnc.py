"""Botnet generations and their command-and-control side.

Each family consists of multiple *botnets* — generations marked by a new
malware hash, each with its own controller (§II-B).  The roster assigns
every botnet a global id, a controller IP in the family's home region and
an activity span inside the family's active window; attack scheduling
asks the roster which generations are alive at a given time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo.ipam import SequentialAssigner
from ..geo.world import World
from ..simulation.clock import ObservationWindow
from .family import FamilyProfile

__all__ = ["BotnetRoster"]


@dataclass
class BotnetRoster:
    """The botnet generations of one family.

    ``first_seen``/``last_seen`` bound each generation's activity; spans
    overlap so that several generations coexist — the raw material for
    intra-family collaborations (§V-A) and multistage chains (§V-B).
    """

    family: str
    ids: np.ndarray = field(repr=False, default=None)          # global botnet ids
    first_seen: np.ndarray = field(repr=False, default=None)   # sorted ascending
    last_seen: np.ndarray = field(repr=False, default=None)
    controller_ip: np.ndarray = field(repr=False, default=None)

    @classmethod
    def build(
        cls,
        profile: FamilyProfile,
        world: World,
        assigner: SequentialAssigner,
        rng: np.random.Generator,
        window: ObservationWindow,
        first_id: int,
    ) -> "BotnetRoster":
        """Create the roster, assigning global ids ``first_id ..``."""
        n = profile.n_botnets
        lo, hi = profile.active_window
        act_start = window.start + lo * window.duration
        act_span = (hi - lo) * window.duration

        # Generation lifetimes overlap: aim for at least ~4 concurrently
        # active generations (collaborations need distinct botnet ids),
        # without every generation spanning the whole window.
        life_frac = float(np.clip(6.0 / n, 0.15, 1.0))
        life = act_span * life_frac
        starts = np.sort(rng.random(n)) * max(act_span - life, 1.0) + act_start
        ends = np.minimum(starts + life, act_start + act_span)

        # Controllers live in the family's top home country.
        home_cc = profile.home_countries[0][0]
        country = world.country_by_code(home_cc)
        org_ids, org_w = world.org_weights_of(country.index)
        controllers = np.empty(n, dtype=np.uint64)
        for i in range(n):
            org_index = int(org_ids[int(rng.integers(0, org_ids.size))])
            if assigner.remaining(org_index) == 0:
                org_index = int(org_ids[int(np.argmax([assigner.remaining(int(o)) for o in org_ids]))])
            controllers[i] = assigner.take(org_index, 1)[0]
        _ = org_w

        return cls(
            family=profile.name,
            ids=(first_id + np.arange(n)).astype(np.int32),
            first_seen=starts,
            last_seen=ends,
            controller_ip=controllers,
        )

    @property
    def n_botnets(self) -> int:
        return self.ids.size

    def active_at(self, ts: float) -> np.ndarray:
        """Positions (not ids) of generations active at ``ts``."""
        mask = (self.first_seen <= ts) & (ts < self.last_seen)
        return np.flatnonzero(mask)

    def pick(self, rng: np.random.Generator, ts: float, k: int = 1) -> np.ndarray:
        """``k`` distinct botnet ids usable at ``ts``.

        Prefers generations active at ``ts``; when fewer than ``k`` are
        active, fills with the generations whose span is closest to
        ``ts`` (their observation bounds are soft, the attack stream is
        what defines them in the data).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > self.n_botnets:
            raise ValueError(
                f"{self.family}: asked for {k} distinct botnets, roster has {self.n_botnets}"
            )
        active = self.active_at(ts)
        if active.size >= k:
            sel = rng.choice(active.size, size=k, replace=False)
            return self.ids[active[sel]]
        # Fill with nearest-by-span generations.
        mid = (self.first_seen + self.last_seen) / 2.0
        order = np.argsort(np.abs(mid - ts), kind="stable")
        chosen: list[int] = list(active)
        for pos in order:
            if pos not in chosen:
                chosen.append(int(pos))
            if len(chosen) == k:
                break
        return self.ids[np.array(chosen[:k], dtype=np.int64)]
